//! The assembled memory system: L1I + L1D over unified L2/L3 and main
//! memory, with non-blocking misses through a shared MSHR file.

use crate::cache::Cache;
use crate::config::HierarchyConfig;
use crate::mshr::{MshrFile, MshrOutcome};

/// What kind of access is being performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand data load.
    DataRead,
    /// Data store (write-allocate; never stalls the pipe, see DESIGN.md).
    DataWrite,
    /// Speculative load issued by advance/runahead execution. Times exactly
    /// like [`AccessKind::DataRead`] but is counted separately so experiments
    /// can report prefetch traffic.
    SpeculativeRead,
    /// Instruction fetch through the L1I.
    InstFetch,
}

impl AccessKind {
    fn is_ifetch(self) -> bool {
        matches!(self, AccessKind::InstFetch)
    }
}

/// Which level of the hierarchy served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// First-level cache (L1I or L1D depending on the access kind).
    L1,
    /// Unified second-level cache.
    L2,
    /// Unified third-level cache.
    L3,
    /// Main memory.
    Memory,
}

impl HitLevel {
    /// True when the access missed the first level (a "cache miss" in the
    /// paper's stall taxonomy).
    pub fn is_miss(self) -> bool {
        self != HitLevel::L1
    }

    /// True for the "relatively long" misses of Figure 1 (L3 or memory).
    pub fn is_long_miss(self) -> bool {
        matches!(self, HitLevel::L3 | HitLevel::Memory)
    }
}

/// Result of a timed memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemAccess {
    /// The access was accepted; its value is usable at `complete_at`.
    Done {
        /// Cycle at which the result is available for bypass.
        complete_at: u64,
        /// The level that served the request.
        level: HitLevel,
    },
    /// No MSHR was available; retry on a later cycle.
    Retry,
}

impl MemAccess {
    /// The completion cycle, if the access was accepted.
    pub fn complete_at(&self) -> Option<u64> {
        match self {
            MemAccess::Done { complete_at, .. } => Some(*complete_at),
            MemAccess::Retry => None,
        }
    }
}

/// Aggregate counters for one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand + speculative data accesses.
    pub data_accesses: u64,
    /// Data accesses that missed L1D.
    pub l1d_misses: u64,
    /// Data accesses served by L2.
    pub l2_hits: u64,
    /// Data accesses served by L3.
    pub l3_hits: u64,
    /// Data accesses served by main memory.
    pub mm_accesses: u64,
    /// Instruction fetches.
    pub ifetches: u64,
    /// Instruction fetches that missed L1I.
    pub l1i_misses: u64,
    /// Accesses rejected because the MSHR file was full.
    pub mshr_retries: u64,
    /// Speculative (advance/runahead) reads issued.
    pub speculative_reads: u64,
    /// MSHR entries allocated over the run.
    pub mshr_allocations: u64,
    /// MSHR entries released by expiry, including the end-of-run drain.
    pub mshr_releases: u64,
    /// MSHR entries still resident after the end-of-run drain. Nonzero
    /// means a leak: an allocation whose fill response never arrived.
    pub mshr_leaked: u64,
}

/// The full timing memory system.
///
/// All levels are tag-only (data lives in the functional memory image).
/// Misses allocate in the shared MSHR file; lines are installed into every
/// level on the refill path at request time, with the completion cycle
/// reported by the MSHR entry. Same-line requests merge. Writes allocate
/// but never consume MSHRs (the store buffer is idealized identically for
/// every model).
#[derive(Clone, Debug)]
pub struct MemorySystem {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    mshrs: MshrFile,
    stats: MemStats,
    fault_warp_latency: Option<u64>,
    data_reads_seen: u64,
}

impl MemorySystem {
    /// Creates a memory system with cold caches.
    pub fn new(config: HierarchyConfig) -> Self {
        MemorySystem {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            mshrs: MshrFile::new(config.max_outstanding as usize),
            stats: MemStats::default(),
            fault_warp_latency: None,
            data_reads_seen: 0,
        }
    }

    /// Fault-injection hook: the `n`-th data read (0-based, demand or
    /// speculative) reports a completion cycle warped far past any legal
    /// hierarchy latency. Models a corrupted fill-timing response.
    pub fn inject_warp_latency(&mut self, n: u64) {
        self.fault_warp_latency = Some(n);
    }

    /// Fault-injection hook: the `n`-th MSHR allocation is never
    /// deallocated. See [`MshrFile::inject_lost_dealloc`].
    pub fn inject_lost_mshr_dealloc(&mut self, n: u64) {
        self.mshrs.inject_lost_dealloc(n);
    }

    /// Final run counters: drains the MSHR file (releasing every miss that
    /// completes at a finite cycle) and folds the allocation/release
    /// balance into the stats so leaks are visible in [`MemStats`].
    pub fn final_stats(&mut self) -> MemStats {
        self.mshrs.drain();
        let mut s = self.stats;
        s.mshr_allocations = self.mshrs.allocations();
        s.mshr_releases = self.mshrs.releases();
        s.mshr_leaked = self.mshrs.live() as u64;
        s
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Run counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// MSHR file (occupancy / merge statistics).
    pub fn mshrs(&self) -> &MshrFile {
        &self.mshrs
    }

    /// The earliest cycle after `now` at which an outstanding miss fills
    /// (see [`MshrFile::next_fill_at`]), or `u64::MAX` when none is in
    /// flight. Event-driven models include this in every quiescent
    /// window's wake set so a fast-forward never skips past a fill.
    pub fn next_mshr_fill(&self, now: u64) -> u64 {
        self.mshrs.next_fill_at(now).unwrap_or(u64::MAX)
    }

    /// Would a data access to `addr` at cycle `now` be served by the L1D
    /// with the data already present (a true L1 hit, not a merge with an
    /// in-flight miss)? Used by the multipass WAW policy of §3.5: advance
    /// loads that miss L1 skip the speculative-register-file writeback.
    /// Does not disturb any state.
    pub fn probe_l1d(&self, addr: u64, now: u64) -> bool {
        self.l1d.probe(addr) && self.mshrs.in_flight(self.l1d.line_addr(addr), now).is_none()
    }

    /// Performs a timed access at cycle `now`.
    ///
    /// For hits, `complete_at = now + level latency`. For misses an MSHR is
    /// required: if none is free, [`MemAccess::Retry`] is returned and no
    /// state changes besides the retry counter. Misses install the line in
    /// every level on the refill path immediately and complete at
    /// `now + latency_of_serving_level`. A second access to a line already
    /// in flight merges and completes when the first does.
    pub fn access(&mut self, addr: u64, kind: AccessKind, now: u64) -> MemAccess {
        let warp = if matches!(kind, AccessKind::DataRead | AccessKind::SpeculativeRead) {
            let hit = self.fault_warp_latency == Some(self.data_reads_seen);
            self.data_reads_seen += 1;
            hit
        } else {
            false
        };
        let r = self.access_inner(addr, kind, now);
        match r {
            MemAccess::Done { complete_at, level } if warp => {
                MemAccess::Done { complete_at: complete_at + Self::WARP_DELAY, level }
            }
            _ => r,
        }
    }

    /// Extra delay injected by [`MemorySystem::inject_warp_latency`] — far
    /// beyond any legal hierarchy latency, so timing sentinels can bound
    /// legitimate completion times well below it.
    pub const WARP_DELAY: u64 = 99_000;

    fn access_inner(&mut self, addr: u64, kind: AccessKind, now: u64) -> MemAccess {
        if kind.is_ifetch() {
            self.stats.ifetches += 1;
        } else {
            self.stats.data_accesses += 1;
            if matches!(kind, AccessKind::SpeculativeRead) {
                self.stats.speculative_reads += 1;
            }
        }

        let l1 = if kind.is_ifetch() { &mut self.l1i } else { &mut self.l1d };
        let line = l1.line_addr(addr);

        // An access to a line whose miss is still in flight merges with it
        // and completes when the original miss does — even though the tags
        // were installed at request time, the data has not arrived yet.
        if let Some(done) = self.mshrs.in_flight(line, now) {
            if kind.is_ifetch() {
                self.stats.l1i_misses += 1;
            } else {
                self.stats.l1d_misses += 1;
            }
            self.mshrs.note_merge();
            self.fill_path(addr, kind);
            return MemAccess::Done { complete_at: done, level: HitLevel::L2 };
        }

        if l1.access(addr) {
            return MemAccess::Done {
                complete_at: now + l1.config().latency as u64,
                level: HitLevel::L1,
            };
        }
        if kind.is_ifetch() {
            self.stats.l1i_misses += 1;
        } else {
            self.stats.l1d_misses += 1;
        }

        // Find the serving level.
        let (level, latency) = if self.l2.access(addr) {
            (HitLevel::L2, self.config.l2.latency)
        } else if self.l3.access(addr) {
            (HitLevel::L3, self.config.l3.latency)
        } else {
            (HitLevel::Memory, self.config.mm_latency)
        };

        // Writes allocate without MSHRs and never stall.
        let complete_at = now + latency as u64;
        if matches!(kind, AccessKind::DataWrite) {
            self.fill_all(addr, kind, level);
            return MemAccess::Done { complete_at, level };
        }

        match self.mshrs.request(line, now, complete_at) {
            MshrOutcome::Allocated { complete_at } => {
                self.fill_all(addr, kind, level);
                match level {
                    HitLevel::L2 => self.stats.l2_hits += 1,
                    HitLevel::L3 => self.stats.l3_hits += 1,
                    HitLevel::Memory => self.stats.mm_accesses += 1,
                    HitLevel::L1 => unreachable!("L1 hits return early"),
                }
                MemAccess::Done { complete_at, level }
            }
            MshrOutcome::Merged { complete_at } => {
                self.fill_path(addr, kind);
                MemAccess::Done { complete_at, level }
            }
            MshrOutcome::Full => {
                self.stats.mshr_retries += 1;
                MemAccess::Retry
            }
        }
    }

    /// Installs the line into the first-level cache on the access path
    /// (used when merging with an in-flight miss).
    fn fill_path(&mut self, addr: u64, kind: AccessKind) {
        if kind.is_ifetch() {
            self.l1i.fill(addr);
        } else {
            self.l1d.fill(addr);
        }
    }

    /// Installs the line into every level between the serving level and the
    /// requesting L1.
    fn fill_all(&mut self, addr: u64, kind: AccessKind, served_by: HitLevel) {
        if served_by >= HitLevel::Memory {
            self.l3.fill(addr);
        }
        if served_by >= HitLevel::L3 {
            self.l2.fill(addr);
        }
        self.fill_path(addr, kind);
    }

    /// Per-level caches, exposed for tests and detailed statistics.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The unified L3.
    pub fn l3(&self) -> &Cache {
        &self.l3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(HierarchyConfig::itanium2_base())
    }

    #[test]
    fn cold_miss_costs_main_memory_latency() {
        let mut m = sys();
        let r = m.access(0x1_0000, AccessKind::DataRead, 10);
        assert_eq!(r, MemAccess::Done { complete_at: 10 + 145, level: HitLevel::Memory });
    }

    #[test]
    fn refill_installs_in_all_levels() {
        let mut m = sys();
        m.access(0x1_0000, AccessKind::DataRead, 0);
        assert!(m.l1d().probe(0x1_0000));
        assert!(m.l2().probe(0x1_0000));
        assert!(m.l3().probe(0x1_0000));
        let r = m.access(0x1_0000, AccessKind::DataRead, 500);
        assert_eq!(r, MemAccess::Done { complete_at: 501, level: HitLevel::L1 });
    }

    #[test]
    fn l2_hit_costs_five_cycles() {
        let mut m = sys();
        // Fill into all levels, then evict from L1D by filling conflicting
        // lines (L1D: 64 sets, 4 ways -> 5 lines mapping to the same set).
        m.access(0, AccessKind::DataRead, 0);
        let set_stride = 64 * 64; // line_bytes * num_sets
        for i in 1..=4u64 {
            m.access(i * set_stride, AccessKind::DataRead, 1000 + i * 400);
        }
        assert!(!m.l1d().probe(0), "line 0 should be evicted from L1D");
        let r = m.access(0, AccessKind::DataRead, 10_000);
        assert_eq!(r, MemAccess::Done { complete_at: 10_005, level: HitLevel::L2 });
    }

    #[test]
    fn mshr_exhaustion_forces_retry() {
        let mut m = sys();
        for i in 0..16u64 {
            let r = m.access(0x10_0000 + i * 128, AccessKind::DataRead, 0);
            assert!(matches!(r, MemAccess::Done { .. }), "miss {i} should be accepted");
        }
        let r = m.access(0x90_0000, AccessKind::DataRead, 0);
        assert_eq!(r, MemAccess::Retry);
        assert_eq!(m.stats().mshr_retries, 1);
        // After the misses complete, a new miss is accepted.
        let r = m.access(0x90_0000, AccessKind::DataRead, 200);
        assert!(matches!(r, MemAccess::Done { .. }));
    }

    #[test]
    fn same_line_miss_merges() {
        let mut m = sys();
        let a = m.access(0x2000, AccessKind::DataRead, 0);
        let b = m.access(0x2008, AccessKind::DataRead, 3);
        assert_eq!(a.complete_at(), b.complete_at());
        assert_eq!(m.mshrs().merges(), 1);
    }

    #[test]
    fn writes_never_retry_even_when_mshrs_full() {
        let mut m = sys();
        for i in 0..16u64 {
            m.access(0x10_0000 + i * 128, AccessKind::DataRead, 0);
        }
        let r = m.access(0x0dea_d000, AccessKind::DataWrite, 0);
        assert!(matches!(r, MemAccess::Done { .. }));
    }

    #[test]
    fn ifetch_uses_l1i_not_l1d() {
        let mut m = sys();
        m.access(0x3000, AccessKind::InstFetch, 0);
        assert!(m.l1i().probe(0x3000));
        assert!(!m.l1d().probe(0x3000));
        assert_eq!(m.stats().ifetches, 1);
        assert_eq!(m.stats().l1i_misses, 1);
    }

    #[test]
    fn speculative_reads_are_counted_and_fill() {
        let mut m = sys();
        m.access(0x5000, AccessKind::SpeculativeRead, 0);
        assert_eq!(m.stats().speculative_reads, 1);
        // Demand access later hits thanks to the speculative fill.
        let r = m.access(0x5000, AccessKind::DataRead, 1_000);
        assert_eq!(r, MemAccess::Done { complete_at: 1_001, level: HitLevel::L1 });
    }

    #[test]
    fn hit_level_classification() {
        assert!(!HitLevel::L1.is_miss());
        assert!(HitLevel::L2.is_miss());
        assert!(!HitLevel::L2.is_long_miss());
        assert!(HitLevel::L3.is_long_miss());
        assert!(HitLevel::Memory.is_long_miss());
    }
}
