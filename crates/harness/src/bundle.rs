//! Crash bundles: a replayable record of a failed campaign job.
//!
//! When a simulation job exhausts its attempts with a panic, timeout, or
//! invariant violation, the campaign writes a small JSON bundle under
//! `<out_dir>/bundles/` carrying the exact grid coordinates (model,
//! hierarchy, benchmark, seed, scale — enough to regenerate the workload
//! deterministically via `Workload::by_name_seeded`), the classified
//! error, any sentinel violations, and the last retirements observed
//! before the failure. `examples/compare_divergence.rs --bundle <path>`
//! consumes a bundle to replay the job against the golden interpreter and
//! print the `ff-debug` first-divergence triage report.

use std::path::{Path, PathBuf};

use ff_engine::RetireRing;

use crate::error::JobError;
use crate::job::{scale_name, JobKind, JobSpec};
use crate::json::Json;

/// Subdirectory of the campaign output directory holding crash bundles.
pub const BUNDLE_DIR: &str = "bundles";

/// How many trailing retirements a bundle retains.
pub const BUNDLE_RETIREMENTS: usize = 32;

/// A replayable record of one failed simulation job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashBundle {
    /// The job id ([`JobSpec::id`]).
    pub job_id: String,
    /// Model name ([`ff_experiments::ModelKind::name`]).
    pub model: String,
    /// Hierarchy name ([`ff_experiments::HierKind::name`]).
    pub hier: String,
    /// Benchmark name.
    pub bench: String,
    /// Workload-generator seed.
    pub seed: u64,
    /// Scale name (`test`/`paper`).
    pub scale: String,
    /// The watchdog budget the job ran under, if any.
    pub cycle_budget: Option<u64>,
    /// The classified failure.
    pub error: JobError,
    /// Sentinel violations observed during the failing attempt.
    pub violations: Vec<String>,
    /// Total dynamic instructions retired before the failure.
    pub retired_total: u64,
    /// The last retirements before the failure, oldest first (rendered
    /// [`ff_engine::RetireEvent`] lines).
    pub last_retirements: Vec<String>,
}

impl CrashBundle {
    /// Builds a bundle for a failed simulation job from the attempt's
    /// wreckage. Report jobs have nothing to replay and yield `None`.
    pub fn for_failure(
        spec: &JobSpec,
        cycle_budget: Option<u64>,
        error: &JobError,
        violations: &[String],
        ring: &RetireRing,
    ) -> Option<CrashBundle> {
        let JobKind::Sim { model, hier, bench, seed } = &spec.kind else {
            return None;
        };
        Some(CrashBundle {
            job_id: spec.id(),
            model: model.name().to_string(),
            hier: hier.name().to_string(),
            bench: (*bench).to_string(),
            seed: *seed,
            scale: scale_name(spec.scale).to_string(),
            cycle_budget,
            error: error.clone(),
            violations: violations.to_vec(),
            retired_total: ring.total(),
            last_retirements: ring.events().map(|e| e.to_string()).collect(),
        })
    }

    /// The bundle's file name inside [`BUNDLE_DIR`].
    pub fn filename(&self) -> String {
        format!(
            "bundle-{}-{}-{}-s{}-{}.json",
            self.bench, self.model, self.hier, self.seed, self.scale
        )
    }

    fn to_json(&self) -> Json {
        let strings = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
        Json::obj(vec![
            ("job_id", Json::Str(self.job_id.clone())),
            ("model", Json::Str(self.model.clone())),
            ("hier", Json::Str(self.hier.clone())),
            ("bench", Json::Str(self.bench.clone())),
            ("seed", Json::U64(self.seed)),
            ("scale", Json::Str(self.scale.clone())),
            (
                "cycle_budget",
                match self.cycle_budget {
                    Some(b) => Json::U64(b),
                    None => Json::Null,
                },
            ),
            ("error_kind", Json::Str(self.error.kind.name().into())),
            ("error", Json::Str(self.error.message.clone())),
            ("violations", strings(&self.violations)),
            ("retired_total", Json::U64(self.retired_total)),
            ("last_retirements", strings(&self.last_retirements)),
        ])
    }

    /// Writes the bundle under `out_dir/bundles/`, returning its path.
    ///
    /// # Errors
    ///
    /// On failure to create the bundle directory or write the file.
    pub fn write(&self, out_dir: &Path) -> std::io::Result<PathBuf> {
        let dir = out_dir.join(BUNDLE_DIR);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(self.filename());
        std::fs::write(&path, self.to_json().render())?;
        Ok(path)
    }

    /// Reads a bundle file.
    ///
    /// # Errors
    ///
    /// On a missing, unparsable, or structurally invalid bundle.
    pub fn read(path: &Path) -> Result<CrashBundle, String> {
        use crate::error::JobErrorKind;
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string `{key}`"))
        };
        let strings = |key: &str| -> Vec<String> {
            doc.get(key)
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_str).map(str::to_string).collect())
                .unwrap_or_default()
        };
        let kind_name = str_field("error_kind")?;
        let kind = JobErrorKind::parse(&kind_name)
            .ok_or_else(|| format!("unknown error kind `{kind_name}`"))?;
        Ok(CrashBundle {
            job_id: str_field("job_id")?,
            model: str_field("model")?,
            hier: str_field("hier")?,
            bench: str_field("bench")?,
            seed: doc.get("seed").and_then(Json::as_u64).ok_or("missing integer `seed`")?,
            scale: str_field("scale")?,
            cycle_budget: doc.get("cycle_budget").and_then(Json::as_u64),
            error: JobError { kind, message: str_field("error")? },
            violations: strings("violations"),
            retired_total: doc.get("retired_total").and_then(Json::as_u64).unwrap_or(0),
            last_retirements: strings("last_retirements"),
        })
    }
}

/// The paths of every crash bundle under `out_dir`, sorted by file name.
/// An absent bundle directory is an empty list (a clean campaign never
/// creates it).
pub fn list_bundles(out_dir: &Path) -> Vec<PathBuf> {
    let dir = out_dir.join(BUNDLE_DIR);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_experiments::{HierKind, ModelKind};
    use ff_workloads::Scale;

    fn sample() -> CrashBundle {
        let spec = JobSpec::sim(ModelKind::Multipass, HierKind::Config1, "mcf", 2, Scale::Test);
        let ring = RetireRing::new(4);
        CrashBundle::for_failure(
            &spec,
            Some(10),
            &JobError::timeout("cycle budget exceeded: 10 cycles simulated, 0 retired"),
            &["[mshr] cycle 7: leak".to_string()],
            &ring,
        )
        .expect("sim jobs produce bundles")
    }

    #[test]
    fn bundles_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("ff-bundle-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let b = sample();
        let path = b.write(&dir).unwrap();
        assert!(path.starts_with(dir.join(BUNDLE_DIR)));
        let back = CrashBundle::read(&path).unwrap();
        assert_eq!(back, b);
        assert_eq!(list_bundles(&dir), vec![path]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_jobs_yield_no_bundle() {
        let spec = JobSpec::report("unroll_effect", Scale::Test);
        let ring = RetireRing::new(4);
        assert!(CrashBundle::for_failure(&spec, None, &JobError::panic("x"), &[], &ring).is_none());
    }

    #[test]
    fn missing_bundle_dir_lists_empty() {
        let dir = std::env::temp_dir().join("ff-bundle-nonexistent");
        assert!(list_bundles(&dir).is_empty());
    }
}
