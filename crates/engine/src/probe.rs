//! Pipeline probes: cycle-level observation hooks for invariant checking.
//!
//! A [`PipelineProbe`] is the engine-side wiring that the `ff-sentinel`
//! invariant checkers plug into. Models publish *observations* — fetches,
//! issues, writebacks, retirements, per-cycle pointer/occupancy snapshots,
//! memory completions, and store-forwarding decisions — and a probe
//! consumes them without ever feeding anything back, so a probed run is
//! cycle-for-cycle identical to an unprobed one.
//!
//! All models deliver retirements and the end-of-run result through the
//! default [`ExecutionModel::try_run_probed`](crate::ExecutionModel::try_run_probed)
//! plumbing; the multipass pipeline additionally publishes the deep
//! per-cycle observations ([`CycleObs`], [`MemAccessObs`],
//! [`AscForwardObs`]) from inside its core loop.

use ff_isa::Reg;
use ff_mem::HitLevel;

use crate::model::RunResult;
use crate::retire::{RetireEvent, RetireHook, RetireMode};

/// One cycle's worth of multipass pipeline state, published at the top of
/// the cycle (after mode transitions, before issue).
#[derive(Clone, Copy, Debug)]
pub struct CycleObs {
    /// Current cycle.
    pub cycle: u64,
    /// Pipeline mode this cycle.
    pub mode: RetireMode,
    /// Sequence number of the episode's trigger instruction.
    pub trigger: u64,
    /// Advance-pass PEEK pointer.
    pub peek: u64,
    /// High-water mark of preexecution across the episode's passes.
    pub peek_high: u64,
    /// Architectural DEQ pointer (oldest unretired instruction).
    pub deq: u64,
    /// Speculative-register-file slots with their A-bit set.
    pub srf_abits: usize,
    /// Live advance-store-cache entries.
    pub asc_live: usize,
    /// Advance-store-cache capacity in entries.
    pub asc_capacity: usize,
    /// Whether every ASC set holds at most its associativity of entries.
    pub asc_assoc_ok: bool,
    /// In-flight speculative-memory-address-queue entries.
    pub smaq_live: usize,
    /// SMAQ capacity in entries.
    pub smaq_capacity: usize,
    /// Latest scoreboard ready cycle across all registers.
    pub sb_drain: u64,
}

/// A completed memory access as seen by the issue logic.
#[derive(Clone, Copy, Debug)]
pub struct MemAccessObs {
    /// Cycle the access was issued.
    pub cycle: u64,
    /// Cycle the hierarchy promised the value.
    pub complete_at: u64,
    /// Level that served the request.
    pub level: HitLevel,
}

/// An advance-store-cache forward into a load, with the facts needed to
/// audit its data-speculation (S) bit.
#[derive(Clone, Copy, Debug)]
pub struct AscForwardObs {
    /// Cycle of the forward.
    pub cycle: u64,
    /// Sequence number of the consuming load.
    pub load_seq: u64,
    /// Sequence number of the store whose value was forwarded.
    pub store_seq: u64,
    /// Youngest deferred (unknown-address) store at forward time, if any.
    pub deferred_store: Option<u64>,
    /// The S bit the pipeline attached to the forwarded value.
    pub s_bit: bool,
}

/// Observation hooks published by a pipeline model.
///
/// Every hook has a no-op default, so a probe implements only what it
/// needs. [`PipelineProbe::enabled`] is hoisted by models exactly like
/// [`RetireHook::enabled`]: when it returns `false`, observation structs
/// are never even constructed.
pub trait PipelineProbe {
    /// Whether this probe wants observations at all.
    fn enabled(&self) -> bool {
        true
    }

    /// An instruction entered the fetch buffer.
    fn on_fetch(&mut self, seq: u64, cycle: u64) {
        let _ = (seq, cycle);
    }

    /// An instruction issued (architecturally or in an advance pass).
    fn on_issue(&mut self, seq: u64, cycle: u64) {
        let _ = (seq, cycle);
    }

    /// An instruction wrote an architectural register.
    fn on_writeback(&mut self, seq: u64, reg: Reg, cycle: u64) {
        let _ = (seq, reg, cycle);
    }

    /// An instruction retired.
    fn on_retire(&mut self, event: &RetireEvent<'_>) {
        let _ = event;
    }

    /// Top-of-cycle pipeline snapshot (multipass only).
    fn on_cycle(&mut self, obs: &CycleObs) {
        let _ = obs;
    }

    /// A data access completed with a promised latency (multipass only).
    fn on_mem_access(&mut self, obs: &MemAccessObs) {
        let _ = obs;
    }

    /// The ASC forwarded a store value into a load (multipass only).
    fn on_asc_forward(&mut self, obs: &AscForwardObs) {
        let _ = obs;
    }

    /// The run completed; `result` carries the final statistics.
    fn on_run_end(&mut self, result: &RunResult) {
        let _ = result;
    }
}

/// A probe that observes nothing and reports itself disabled, letting
/// models skip observation construction entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProbe;

impl PipelineProbe for NullProbe {
    fn enabled(&self) -> bool {
        false
    }
}

/// Retire-hook adapter that tees retirements to both a caller's hook and
/// a probe — the default [`ExecutionModel::try_run_probed`](crate::ExecutionModel::try_run_probed)
/// plumbing for models without deeper instrumentation.
pub struct RetireTee<'a> {
    hook: &'a mut dyn RetireHook,
    hook_enabled: bool,
    probe: &'a mut dyn PipelineProbe,
}

impl<'a> RetireTee<'a> {
    /// Tees retirements into `hook` (when it is enabled) and `probe`.
    pub fn new(hook: &'a mut dyn RetireHook, probe: &'a mut dyn PipelineProbe) -> Self {
        let hook_enabled = hook.enabled();
        RetireTee { hook, hook_enabled, probe }
    }
}

impl RetireHook for RetireTee<'_> {
    fn enabled(&self) -> bool {
        true
    }

    fn on_retire(&mut self, event: &RetireEvent<'_>) {
        if self.hook_enabled {
            self.hook.on_retire(event);
        }
        self.probe.on_retire(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled() {
        assert!(!NullProbe.enabled());
    }

    #[test]
    fn tee_forwards_to_both_sides() {
        struct CountProbe(u64);
        impl PipelineProbe for CountProbe {
            fn on_retire(&mut self, _: &RetireEvent<'_>) {
                self.0 += 1;
            }
        }
        let mut ring = crate::retire::RetireRing::new(4);
        let mut probe = CountProbe(0);
        let mut p = ff_isa::Program::new();
        let b = p.add_block();
        p.push(b, ff_isa::Inst::new(ff_isa::Op::Nop));
        let ev = RetireEvent {
            seq: 0,
            cycle: 3,
            pc: p.first_pc_from(ff_isa::program::BlockId(0)).unwrap(),
            inst: std::borrow::Cow::Owned(ff_isa::Inst::new(ff_isa::Op::Nop)),
            qp_true: None,
            wrote: None,
            stored: None,
            mode: RetireMode::Architectural,
            merged: false,
            episode: None,
        };
        let mut tee = RetireTee::new(&mut ring, &mut probe);
        tee.on_retire(&ev);
        assert_eq!(ring.total(), 1);
        assert_eq!(probe.0, 1);
    }
}
