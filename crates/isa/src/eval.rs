//! Functional evaluation of operations.
//!
//! These helpers give every pipeline model (in-order, runahead, out-of-order,
//! multipass) a single authoritative definition of operand semantics, so the
//! timing models cannot drift from the golden interpreter.

use crate::op::Op;

/// Evaluates a non-memory, non-branch operation over raw 64-bit operands.
///
/// `a` and `b` are the first and second register sources (0 when absent) and
/// `imm` is the immediate. Predicate-writing compares return 0/1.
/// Floating-point operands are interpreted as `f64` bit patterns. Integer
/// division by zero yields 0 (the simulated ISA is non-trapping, like
/// Itanium's NaT-based deferral for speculative ops).
///
/// # Panics
///
/// Panics if called with a load, store, branch, halt, restart, or nop — those
/// have no ALU result and must be handled by the caller.
pub fn alu(op: &Op, a: u64, b: u64, imm: i64) -> u64 {
    match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Shl => a.wrapping_shl((imm & 63) as u32),
        Op::Shr => a.wrapping_shr((imm & 63) as u32),
        Op::AddImm => a.wrapping_add(imm as u64),
        Op::MovImm => imm as u64,
        Op::CmpEq => (a == b) as u64,
        Op::CmpNe => (a != b) as u64,
        Op::CmpLt => ((a as i64) < (b as i64)) as u64,
        Op::Mul => a.wrapping_mul(b),
        Op::Div => {
            let d = b as i64;
            if d == 0 {
                0
            } else {
                ((a as i64).wrapping_div(d)) as u64
            }
        }
        Op::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        Op::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        Op::FDiv => {
            let d = f64::from_bits(b);
            if d == 0.0 {
                0f64.to_bits()
            } else {
                (f64::from_bits(a) / d).to_bits()
            }
        }
        Op::FCvt => f64::from_bits(a) as i64 as u64,
        Op::Load | Op::LoadFp | Op::Store | Op::Br { .. } | Op::Halt | Op::Restart | Op::Nop => {
            panic!("alu() called on non-ALU op {op:?}")
        }
    }
}

/// Effective byte address of a load or store: `base + imm`.
pub fn effective_address(base: u64, imm: i64) -> u64 {
    base.wrapping_add(imm as u64)
}

/// Whether a branch with qualifying-predicate value `qp` is taken.
/// (Branches in this ISA are pure predicated jumps: taken iff qualified.)
pub fn branch_taken(qp: bool) -> bool {
    qp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops() {
        assert_eq!(alu(&Op::Add, 2, 3, 0), 5);
        assert_eq!(alu(&Op::Sub, 2, 3, 0), u64::MAX); // wrapping
        assert_eq!(alu(&Op::And, 0b1100, 0b1010, 0), 0b1000);
        assert_eq!(alu(&Op::Or, 0b1100, 0b1010, 0), 0b1110);
        assert_eq!(alu(&Op::Xor, 0b1100, 0b1010, 0), 0b0110);
        assert_eq!(alu(&Op::Shl, 1, 0, 4), 16);
        assert_eq!(alu(&Op::Shr, 16, 0, 4), 1);
        assert_eq!(alu(&Op::AddImm, 10, 0, -3), 7);
        assert_eq!(alu(&Op::MovImm, 0, 0, -1), u64::MAX);
        assert_eq!(alu(&Op::Mul, 6, 7, 0), 42);
    }

    #[test]
    fn compares_are_boolean() {
        assert_eq!(alu(&Op::CmpEq, 4, 4, 0), 1);
        assert_eq!(alu(&Op::CmpEq, 4, 5, 0), 0);
        assert_eq!(alu(&Op::CmpNe, 4, 5, 0), 1);
        // signed comparison
        assert_eq!(alu(&Op::CmpLt, (-1i64) as u64, 1, 0), 1);
        assert_eq!(alu(&Op::CmpLt, 1, (-1i64) as u64, 0), 0);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(alu(&Op::Div, 42, 0, 0), 0);
        assert_eq!(alu(&Op::FDiv, 1.0f64.to_bits(), 0.0f64.to_bits(), 0), 0f64.to_bits());
    }

    #[test]
    fn signed_division() {
        assert_eq!(alu(&Op::Div, (-9i64) as u64, 2, 0) as i64, -4);
    }

    #[test]
    fn fp_ops_use_bit_patterns() {
        let a = 1.5f64.to_bits();
        let b = 2.0f64.to_bits();
        assert_eq!(f64::from_bits(alu(&Op::FAdd, a, b, 0)), 3.5);
        assert_eq!(f64::from_bits(alu(&Op::FMul, a, b, 0)), 3.0);
        assert_eq!(alu(&Op::FCvt, 3.9f64.to_bits(), 0, 0), 3);
    }

    #[test]
    fn effective_address_wraps() {
        assert_eq!(effective_address(0x1000, 8), 0x1008);
        assert_eq!(effective_address(8, -8), 0);
    }

    #[test]
    #[should_panic(expected = "non-ALU op")]
    fn alu_rejects_loads() {
        let _ = alu(&Op::Load, 0, 0, 0);
    }
}
