//! Shared cycle-level pipeline infrastructure for the flea-flicker
//! simulator.
//!
//! Everything the four execution models (`ff-baselines`, `ff-multipass`)
//! have in common lives here:
//!
//! * [`MachineConfig`] — the machine parameters of the paper's Table 2;
//! * [`Scoreboard`] — per-register ready-cycle tracking with the *cause* of
//!   each pending write, which drives the stall-attribution taxonomy of
//!   Figure 6 (execution / front-end / other / load);
//! * [`FuPool`] — runtime functional-unit arbitration (4 M / 2 I / 2 F /
//!   3 B ports, six-issue, unpipelined dividers);
//! * [`RunStats`] / [`StallKind`] — per-run statistics with the paper's
//!   cycle-attribution categories;
//! * [`Activity`] — per-structure access counters consumed by the Wattch
//!   power models in `ff-power`;
//! * [`DynTrace`] — a dynamic trace with dataflow and memory dependence
//!   links, used by the trace-driven out-of-order timing models;
//! * [`ExecutionModel`] — the trait every pipeline model implements, and
//!   [`SimCase`]/[`RunResult`] — its input/output types;
//! * [`RetireHook`]/[`RetireEvent`] — retirement-granularity
//!   instrumentation consumed by the `ff-debug` triage tooling;
//! * [`Slab`]/[`InFlightIndex`] — allocation-free in-flight state
//!   containers backing the steady-state zero-allocation invariant
//!   (DESIGN.md §7e).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod config;
pub mod fu;
pub mod model;
pub mod probe;
pub mod retire;
pub mod scoreboard;
pub mod slab;
pub mod stats;
pub mod trace;

pub use activity::Activity;
pub use config::MachineConfig;
pub use fu::FuPool;
pub use model::{ExecutionModel, RunError, RunResult, SimCase, TickMode};
pub use probe::{AscForwardObs, CycleObs, MemAccessObs, NullProbe, PipelineProbe, RetireTee};
pub use retire::{EpisodeWindow, NullRetireHook, RetireEvent, RetireHook, RetireMode, RetireRing};
pub use scoreboard::{operand_stall, operand_wake, PendingKind, Scoreboard};
pub use slab::{InFlightIndex, Slab, SlotId};
pub use stats::{RunStats, StallKind};
pub use trace::{DynTrace, TraceInst};
