//! Memoized simulation suite: (model, hierarchy, benchmark) → results.

use std::collections::BTreeMap;
use std::fmt;

use ff_baselines::{InOrder, OutOfOrder, Runahead};
use ff_engine::{ExecutionModel, MachineConfig, RetireHook, RunError, RunResult, SimCase};
use ff_mem::HierarchyConfig;
use ff_multipass::{Multipass, MultipassConfig};
use ff_workloads::{Scale, Workload};

/// Which execution model to run.
///
/// Ordered (`Ord`) in presentation order so campaign artifact enumeration
/// and cache iteration are deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelKind {
    /// Baseline in-order EPIC pipeline.
    InOrder,
    /// Dundas–Mudge runahead.
    Runahead,
    /// Idealized out-of-order (Figure 6's OOO).
    Ooo,
    /// Realistic decentralized out-of-order (§5.2).
    OooRealistic,
    /// Full multipass pipeline.
    Multipass,
    /// Multipass without issue regrouping (Figure 8).
    MpNoRegroup,
    /// Multipass without advance restart (Figure 8).
    MpNoRestart,
}

impl ModelKind {
    /// All seven models in presentation order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::InOrder,
        ModelKind::Runahead,
        ModelKind::Ooo,
        ModelKind::OooRealistic,
        ModelKind::Multipass,
        ModelKind::MpNoRegroup,
        ModelKind::MpNoRestart,
    ];

    /// Canonical short name (matches the model's `ExecutionModel::name`).
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::InOrder => "inorder",
            ModelKind::Runahead => "runahead",
            ModelKind::Ooo => "ooo",
            ModelKind::OooRealistic => "ooo-realistic",
            ModelKind::Multipass => "MP",
            ModelKind::MpNoRegroup => "MP-noregroup",
            ModelKind::MpNoRestart => "MP-norestart",
        }
    }

    /// Parses a (case-insensitive) model name, accepting a few aliases
    /// (`multipass` for `MP`, `ooo_realistic` for `ooo-realistic`, ...).
    pub fn parse(s: &str) -> Option<ModelKind> {
        let k = s.to_ascii_lowercase().replace('_', "-");
        Some(match k.as_str() {
            "inorder" | "in-order" | "base" => ModelKind::InOrder,
            "runahead" => ModelKind::Runahead,
            "ooo" => ModelKind::Ooo,
            "ooo-realistic" | "realistic" => ModelKind::OooRealistic,
            "mp" | "multipass" => ModelKind::Multipass,
            "mp-noregroup" | "noregroup" => ModelKind::MpNoRegroup,
            "mp-norestart" | "norestart" => ModelKind::MpNoRestart,
            _ => return None,
        })
    }

    /// Builds a boxed model instance over `machine`.
    pub fn build(self, machine: MachineConfig) -> Box<dyn ExecutionModel> {
        match self {
            ModelKind::InOrder => Box::new(InOrder::new(machine)),
            ModelKind::Runahead => Box::new(Runahead::new(machine)),
            ModelKind::Ooo => Box::new(OutOfOrder::new(machine)),
            ModelKind::OooRealistic => Box::new(OutOfOrder::realistic(machine)),
            ModelKind::Multipass => Box::new(Multipass::new(machine)),
            ModelKind::MpNoRegroup => {
                Box::new(Multipass::with_config(MultipassConfig::without_regrouping(machine)))
            }
            ModelKind::MpNoRestart => {
                Box::new(Multipass::with_config(MultipassConfig::without_restart(machine)))
            }
        }
    }
}

/// Which cache hierarchy to use (Figure 7).
///
/// Ordered (`Ord`) in paper order for deterministic enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HierKind {
    /// Table 2 base hierarchy.
    Base,
    /// Base with 200-cycle main memory.
    Config1,
    /// Smaller, slower hierarchy (8 KB L1 / 128 KB 7-cycle L2 /
    /// 1.5 MB 16-cycle L3 / 200-cycle memory).
    Config2,
}

impl HierKind {
    /// All three hierarchies in paper order.
    pub const ALL: [HierKind; 3] = [HierKind::Base, HierKind::Config1, HierKind::Config2];

    /// The concrete hierarchy configuration.
    pub fn config(self) -> HierarchyConfig {
        match self {
            HierKind::Base => HierarchyConfig::itanium2_base(),
            HierKind::Config1 => HierarchyConfig::config1(),
            HierKind::Config2 => HierarchyConfig::config2(),
        }
    }

    /// Display name used in Figure 7 output.
    pub fn name(self) -> &'static str {
        match self {
            HierKind::Base => "base",
            HierKind::Config1 => "config1",
            HierKind::Config2 => "config2",
        }
    }

    /// Parses a (case-insensitive) hierarchy name.
    pub fn parse(s: &str) -> Option<HierKind> {
        match s.to_ascii_lowercase().as_str() {
            "base" => Some(HierKind::Base),
            "config1" => Some(HierKind::Config1),
            "config2" => Some(HierKind::Config2),
            _ => None,
        }
    }
}

/// Error for a benchmark name that is not one of the twelve workloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownBenchmark {
    /// The rejected name.
    pub name: String,
}

impl fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark {:?}; valid names: {}", self.name, Workload::NAMES.join(", "))
    }
}

impl std::error::Error for UnknownBenchmark {}

/// Anything that can produce one [`RunResult`] per (model, hierarchy,
/// benchmark) grid point: the serial in-memory [`Suite`], or an artifact
/// store fed by a parallel `ff-campaign` run.
///
/// The figure/table experiments in [`crate::figures`] are written against
/// this trait, so they render identically from live simulations and from
/// checkpointed campaign artifacts.
pub trait ResultSource {
    /// Benchmark names in presentation order.
    fn benchmarks(&self) -> Vec<&'static str>;

    /// The result of one simulation grid point.
    ///
    /// # Panics
    ///
    /// Panics if the grid point cannot be produced (unknown benchmark, or
    /// a missing campaign artifact).
    fn result(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> &RunResult;

    /// Convenience: cycles of one run.
    fn cycles(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> u64 {
        self.result(model, hier, bench).stats.cycles
    }

    /// The result of one *seeded* grid point (workload-generator seed).
    /// Sources that only hold the canonical grid serve seed 0 and panic on
    /// anything else; artifact-backed and remote sources override this to
    /// serve the seed-sensitivity points too.
    ///
    /// # Panics
    ///
    /// Panics if the seeded grid point cannot be produced.
    fn result_seeded(
        &mut self,
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
    ) -> &RunResult {
        assert_eq!(seed, 0, "this ResultSource only serves the canonical seed 0");
        self.result(model, hier, bench)
    }

    /// The stored text of a standalone report artifact, for sources that
    /// keep them (an artifact store or a campaign server). Live sources
    /// return an error naming the report.
    ///
    /// # Errors
    ///
    /// When this source does not store report artifacts or the artifact is
    /// missing/corrupt.
    fn report_text(&mut self, name: &'static str) -> Result<String, String> {
        Err(format!("this ResultSource does not store report artifacts (wanted `{name}`)"))
    }
}

/// A memoizing simulation driver over the twelve workloads.
pub struct Suite {
    workloads: Vec<Workload>,
    cache: BTreeMap<(ModelKind, HierKind, &'static str), RunResult>,
}

impl Suite {
    /// Generates the workload set at `scale`.
    pub fn new(scale: Scale) -> Self {
        Suite { workloads: Workload::all(scale), cache: BTreeMap::new() }
    }

    /// Benchmark names in presentation order.
    pub fn benchmarks(&self) -> Vec<&'static str> {
        self.workloads.iter().map(|w| w.name).collect()
    }

    /// The workload with the given name, or an [`UnknownBenchmark`] error
    /// listing the valid names.
    pub fn workload(&self, name: &str) -> Result<&Workload, UnknownBenchmark> {
        self.workloads
            .iter()
            .find(|w| w.name == name)
            .ok_or_else(|| UnknownBenchmark { name: name.to_string() })
    }

    /// Executes one simulation of `workload` on the Table 2 machine with
    /// `hier`'s cache hierarchy — the single-threaded backend behind both
    /// [`Suite::run`] and each `ff-campaign` worker.
    ///
    /// # Panics
    ///
    /// Panics if the machine's cycle cap is exceeded (runaway program).
    pub fn execute(model: ModelKind, hier: HierKind, workload: &Workload) -> RunResult {
        let case = SimCase::new(&workload.program, workload.mem.clone());
        Self::execute_case(model, hier, &case).unwrap_or_else(|e| panic!("{e} — runaway program?"))
    }

    /// Fallible variant of [`Suite::execute`] over a prepared [`SimCase`]
    /// (which may carry a watchdog cycle budget).
    ///
    /// # Errors
    ///
    /// [`RunError::CycleBudgetExceeded`] if the case's effective cycle cap
    /// is hit before the program halts.
    pub fn execute_case(
        model: ModelKind,
        hier: HierKind,
        case: &SimCase<'_>,
    ) -> Result<RunResult, RunError> {
        Self::build_model(model, hier).try_run(case)
    }

    /// Variant of [`Suite::execute_case`] that reports every retired
    /// dynamic instruction to `hook` — campaign runners attach a
    /// [`ff_engine::RetireRing`] here so a failing job can leave a crash
    /// bundle with the retirements leading up to the failure.
    ///
    /// # Errors
    ///
    /// See [`Suite::execute_case`].
    pub fn execute_case_hooked(
        model: ModelKind,
        hier: HierKind,
        case: &SimCase<'_>,
        hook: &mut dyn RetireHook,
    ) -> Result<RunResult, RunError> {
        Self::build_model(model, hier).try_run_hooked(case, hook)
    }

    /// Builds the exact model instance [`Suite::execute_case`] runs: the
    /// Table 2 machine with `hier`'s cache hierarchy.
    pub fn build_model(model: ModelKind, hier: HierKind) -> Box<dyn ExecutionModel> {
        model.build(MachineConfig::itanium2_base().with_hierarchy(hier.config()))
    }

    /// Runs (or returns the memoized result of) one simulation.
    ///
    /// # Panics
    ///
    /// Panics if `bench` is not one of the twelve benchmarks.
    pub fn run(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> &RunResult {
        if !self.cache.contains_key(&(model, hier, bench)) {
            let w = self.workload(bench).unwrap_or_else(|e| panic!("{e}"));
            let result = Self::execute(model, hier, w);
            self.cache.insert((model, hier, bench), result);
        }
        &self.cache[&(model, hier, bench)]
    }

    /// Convenience: cycles of one run.
    pub fn cycles(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> u64 {
        self.run(model, hier, bench).stats.cycles
    }
}

impl ResultSource for Suite {
    fn benchmarks(&self) -> Vec<&'static str> {
        Suite::benchmarks(self)
    }

    fn result(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> &RunResult {
        self.run(model, hier, bench)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_identical_results() {
        let mut s = Suite::new(Scale::Test);
        let a = s.run(ModelKind::InOrder, HierKind::Base, "mesa").stats.cycles;
        let b = s.run(ModelKind::InOrder, HierKind::Base, "mesa").stats.cycles;
        assert_eq!(a, b);
        assert_eq!(s.cache.len(), 1);
    }

    #[test]
    fn all_models_agree_on_final_state() {
        let mut s = Suite::new(Scale::Test);
        for model in ModelKind::ALL {
            let base = s.run(ModelKind::InOrder, HierKind::Base, "gap").final_state.clone();
            let other = s.run(model, HierKind::Base, "gap").final_state.clone();
            assert!(base.semantically_eq(&other), "{model:?} diverges on gap");
        }
    }

    #[test]
    fn hierarchies_change_timing_not_results() {
        let mut s = Suite::new(Scale::Test);
        let base = s.run(ModelKind::Multipass, HierKind::Base, "vpr").clone();
        let slow = s.run(ModelKind::Multipass, HierKind::Config2, "vpr").clone();
        assert!(base.final_state.semantically_eq(&slow.final_state));
        assert!(slow.stats.cycles >= base.stats.cycles, "slower hierarchy, fewer cycles?");
    }

    #[test]
    fn unknown_benchmark_is_an_error_listing_valid_names() {
        let s = Suite::new(Scale::Test);
        let err = s.workload("nosuch").unwrap_err();
        assert_eq!(err.name, "nosuch");
        let msg = err.to_string();
        assert!(msg.contains("gzip") && msg.contains("ammp"), "{msg}");
        assert!(s.workload("mcf").is_ok());
    }

    #[test]
    fn cache_iteration_is_in_key_order() {
        let mut s = Suite::new(Scale::Test);
        s.run(ModelKind::Multipass, HierKind::Base, "vpr");
        s.run(ModelKind::InOrder, HierKind::Base, "gzip");
        s.run(ModelKind::InOrder, HierKind::Base, "art");
        let keys: Vec<_> = s.cache.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "BTreeMap iteration must be ordered");
    }

    #[test]
    fn model_and_hier_names_round_trip() {
        for m in ModelKind::ALL {
            assert_eq!(ModelKind::parse(m.name()), Some(m), "{m:?}");
        }
        for h in HierKind::ALL {
            assert_eq!(HierKind::parse(h.name()), Some(h), "{h:?}");
        }
        assert_eq!(ModelKind::parse("Multipass"), Some(ModelKind::Multipass));
        assert_eq!(ModelKind::parse("nosuch"), None);
        assert_eq!(HierKind::parse("nosuch"), None);
    }

    #[test]
    fn built_models_report_their_names() {
        let machine = MachineConfig::itanium2_base();
        for m in ModelKind::ALL {
            let built = m.build(machine);
            // Canonical kind names match the models' self-reported names,
            // so campaign artifacts and debug output agree.
            assert_eq!(built.name(), m.name(), "{m:?}");
        }
    }
}
