//! Idealized (and realistic decentralized) out-of-order execution.
//!
//! The paper's `OOO` comparison point (§5.1) is deliberately idealized:
//! perfect (ideal) register renaming including predicates, scheduling and
//! register read folded into the REG stage (no speculative wakeup), perfect
//! memory disambiguation, a 128-entry scheduling window and a 256-entry
//! reorder buffer, at the cost of 3 additional pipeline stages.
//!
//! This model is *trace driven*: the correct-path dynamic stream (with
//! dataflow and same-address store→load links) comes from
//! [`ff_engine::DynTrace`], and this module schedules it cycle by cycle
//! under fetch, window, ROB, functional-unit, and MSHR constraints.
//! Wrong-path work affects timing through branch-resolution bubbles but
//! does not pollute the caches, consistent with the idealization.
//!
//! [`OutOfOrder::realistic`] models §5.2's more practical design:
//! decentralized 16-entry scheduling queues for memory, integer, and
//! floating-point instructions, which fill quickly under long cache misses
//! and throttle the achievable parallelism.

use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ff_engine::{
    Activity, DynTrace, ExecutionModel, FuPool, MachineConfig, RetireEvent, RetireHook, RetireMode,
    RunError, RunResult, RunStats, SimCase, StallKind, TickMode, TraceInst,
};
use ff_frontend::Gshare;
use ff_isa::{FuClass, Op};
use ff_mem::{AccessKind, MemAccess, MemorySystem};

/// Which scheduling-queue organization the model uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WindowKind {
    /// One unified window (idealized model, Table 2: 128 entries).
    Unified,
    /// Three decentralized queues of 16 entries each (§5.2).
    Decentralized,
}

/// The out-of-order execution model.
#[derive(Clone, Debug)]
pub struct OutOfOrder {
    config: MachineConfig,
    kind: WindowKind,
    tick: TickMode,
}

impl OutOfOrder {
    /// The idealized model of §5.1 (Figure 6's `OOO` bars).
    pub fn new(config: MachineConfig) -> Self {
        OutOfOrder { config, kind: WindowKind::Unified, tick: TickMode::default() }
    }

    /// The realistic decentralized variant of §5.2: three 16-entry
    /// scheduling queues (memory / integer / floating point). Unlike the
    /// idealized window, a queue entry is held until its instruction's
    /// result returns, so long cache misses fill the small queues quickly —
    /// "the more quickly filled scheduling resources" of §5.2.
    pub fn realistic(config: MachineConfig) -> Self {
        OutOfOrder { config, kind: WindowKind::Decentralized, tick: TickMode::default() }
    }

    fn queue_of(inst: &TraceInst) -> usize {
        match inst.inst.op().fu_class() {
            FuClass::Mem => 0,
            FuClass::Fp => 1,
            FuClass::Int | FuClass::Branch => 2,
        }
    }
}

const NOT_DONE: u64 = u64::MAX;

/// Sentinel for an empty intrusive waiter list.
const NO_WAITER: u32 = u32::MAX;

/// Classifies a window entry for the wakeup-driven ready state: if any
/// dependence has not issued yet, returns `Err(producer_idx)` for the first
/// such producer (the entry links into that producer's waiter list and is
/// re-classified when it issues); otherwise returns `Ok(wake_at)`, the first
/// cycle at which every dependence is visible through the bypass network.
fn classify(ti: &TraceInst, complete: &[u64], wakeup_delay: u64) -> Result<u64, usize> {
    let mut wake_at = 0u64;
    for &d in ti.reg_deps.iter().chain(ti.mem_dep.as_ref()) {
        let c = complete[d as usize];
        if c == NOT_DONE {
            return Err(d as usize);
        }
        wake_at = wake_at.max(c + wakeup_delay);
    }
    Ok(wake_at)
}

/// Pushes onto the wakeup timer, counting heap growth as an allocation
/// event (the heap is pre-sized to the window bound, so steady state never
/// grows).
fn timer_push(
    timer: &mut BinaryHeap<Reverse<(u64, usize)>>,
    activity: &mut Activity,
    t: u64,
    idx: usize,
) {
    if timer.len() == timer.capacity() {
        activity.alloc_count += 1;
    }
    timer.push(Reverse((t, idx)));
}

impl ExecutionModel for OutOfOrder {
    fn name(&self) -> &'static str {
        match self.kind {
            WindowKind::Unified => "ooo",
            WindowKind::Decentralized => "ooo-realistic",
        }
    }

    fn set_tick_mode(&mut self, mode: TickMode) {
        self.tick = mode;
    }

    fn try_run_hooked(
        &mut self,
        case: &SimCase<'_>,
        hook: &mut dyn RetireHook,
    ) -> Result<RunResult, RunError> {
        let cfg = &self.config;
        let cycle_cap = case.cycle_cap(cfg.max_cycles);
        let trace = DynTrace::record(case.program, case.initial_state(), case.max_insts)
            .expect("trace recording failed — invalid workload program");
        let insts = trace.insts();
        let n = insts.len();
        let hook_enabled = hook.enabled();

        let mut mem = MemorySystem::new(cfg.hierarchy);
        let mut predictor = Gshare::new(cfg.gshare_entries);
        let mut fu = FuPool::new(cfg);
        let mut stats = RunStats::default();
        let mut activity = Activity::new();

        // Completion cycle per dynamic instruction (NOT_DONE until issued).
        let mut complete: Vec<u64> = vec![NOT_DONE; n];
        let mut issued_flag: Vec<bool> = vec![false; n];

        // Front end: pointer into the trace, plus in-flight decode pipe.
        let mut fetch_idx: usize = 0;
        let mut fetch_blocked_until: u64 = 0;
        // A mispredicted branch stops fetch until it resolves; `Some(idx)`.
        let mut waiting_branch: Option<usize> = None;
        // Decode pipe: (trace idx, cycle at which it may dispatch).
        let mut decode: std::collections::VecDeque<(usize, u64)> =
            std::collections::VecDeque::new();

        // Scheduling window, held as wakeup-driven ready state instead of a
        // per-cycle-scanned vector: an un-issued entry is (a) linked into
        // the intrusive waiter list of one still-unissued producer, (b)
        // parked in the wakeup timer until its last dependence becomes
        // visible, or (c) in the oldest-first `ready` list. Select walks
        // only `ready`, so its cost scales with instructions that *become*
        // ready rather than window size × cycles, and the containers are
        // pre-sized to the window bound so steady state never allocates.
        let mut first_waiter: Vec<u32> = vec![NO_WAITER; n];
        let mut next_waiter: Vec<u32> = vec![NO_WAITER; n];
        let window_cap = match self.kind {
            WindowKind::Unified => cfg.ooo_window,
            WindowKind::Decentralized => 3 * cfg.ooo_decentralized_queue,
        }
        .min(cfg.ooo_rob)
            + 1;
        let mut ready: Vec<usize> = Vec::with_capacity(window_cap);
        let mut woken: Vec<usize> = Vec::with_capacity(window_cap);
        let mut merged: Vec<usize> = Vec::with_capacity(window_cap);
        let mut timer: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(window_cap);
        let mut window_len = 0usize;
        activity.alloc_count += 4; // the four scheduling containers above
        let mut queue_len = [0usize; 3];
        // Decentralized queues hold entries until completion: in-flight
        // (complete_at, queue) pairs pending release.
        let mut queue_release: Vec<(u64, usize)> = Vec::new();
        // Reorder buffer: dispatched, not yet retired (contiguous range).
        let mut rob_head: usize = 0; // next to retire
        let mut rob_tail: usize = 0; // next to dispatch
        let mut retired_halt = false;

        let mispredict_penalty = cfg.mispredict_penalty + cfg.ooo_extra_stages;
        // The idealized model folds scheduling and register read into the
        // REG stage ("eliminating the need for speculative wakeup", §5.1);
        // the realistic design pays a non-speculative wakeup/select loop
        // between a producer's completion and its consumers' issue.
        let wakeup_delay: u64 = match self.kind {
            WindowKind::Unified => 0,
            WindowKind::Decentralized => 2,
        };
        let mut now: u64 = 0;

        while !retired_halt {
            if now >= cycle_cap {
                return Err(RunError::CycleBudgetExceeded {
                    limit: cycle_cap,
                    retired: stats.retired,
                });
            }

            // ---- fetch ----
            if now >= fetch_blocked_until && waiting_branch.is_none() && fetch_idx < n {
                // One I-cache access for the fetch group.
                let pc = insts[fetch_idx].pc;
                match mem.access(pc.fetch_address(), AccessKind::InstFetch, now) {
                    MemAccess::Done { complete_at, .. } if complete_at > now + 1 => {
                        fetch_blocked_until = complete_at;
                    }
                    MemAccess::Retry => fetch_blocked_until = now + 1,
                    MemAccess::Done { .. } => {
                        let mut fetched = 0;
                        while fetched < cfg.fetch_width
                            && fetch_idx < n
                            && decode.len() < cfg.inorder_buffer
                        {
                            let ti = &insts[fetch_idx];
                            decode.push_back((fetch_idx, now + 1 + cfg.ooo_extra_stages));
                            fetch_idx += 1;
                            fetched += 1;
                            if ti.is_conditional_branch() {
                                stats.branches += 1;
                                let (pred, snap) = predictor.predict(ti.pc);
                                predictor.update(ti.pc, snap, ti.taken);
                                if pred != ti.taken {
                                    stats.mispredicts += 1;
                                    predictor.repair(snap, ti.taken);
                                    // Fetch stops until this branch resolves.
                                    waiting_branch = Some(fetch_idx - 1);
                                    break;
                                }
                                if ti.taken {
                                    // Redirect bubble on a taken branch.
                                    fetch_blocked_until = now + 2;
                                    break;
                                }
                            } else if ti.taken {
                                // Unconditional taken branch: redirect bubble.
                                fetch_blocked_until = now + 2;
                                break;
                            }
                        }
                    }
                }
            }

            // ---- dispatch (in order, bounded by window/queues and ROB) ----
            let mut dispatched = 0;
            while dispatched < cfg.issue_width {
                let &(idx, ready_at) = match decode.front() {
                    Some(e) => e,
                    None => break,
                };
                if ready_at > now {
                    break;
                }
                if rob_tail - rob_head >= cfg.ooo_rob {
                    break; // ROB full
                }
                match self.kind {
                    WindowKind::Unified => {
                        if window_len >= cfg.ooo_window {
                            break;
                        }
                    }
                    WindowKind::Decentralized => {
                        let q = Self::queue_of(&insts[idx]);
                        if queue_len[q] >= cfg.ooo_decentralized_queue {
                            break;
                        }
                        queue_len[q] += 1;
                    }
                }
                decode.pop_front();
                window_len += 1;
                match classify(&insts[idx], &complete, wakeup_delay) {
                    Err(p) => {
                        next_waiter[idx] = first_waiter[p];
                        first_waiter[p] = idx as u32;
                    }
                    Ok(t) if t <= now => {
                        if woken.len() == woken.capacity() {
                            activity.alloc_count += 1;
                        }
                        woken.push(idx);
                    }
                    Ok(t) => timer_push(&mut timer, &mut activity, t, idx),
                }
                debug_assert_eq!(idx, rob_tail);
                rob_tail += 1;
                dispatched += 1;
                // Rename activity: one RAT lookup per source, one update per
                // destination.
                activity.rat_reads += insts[idx].inst.reads().count() as u64;
                if insts[idx].inst.writes().is_some() {
                    activity.rat_writes += 1;
                }
            }

            // ---- issue (oldest-first select from the ready list) ----
            fu.new_cycle(now);
            // Drain due wakeup timers and merge the newly-woken entries
            // (plus any dispatched-ready ones) into the sorted ready list.
            while let Some(&Reverse((t, idx))) = timer.peek() {
                if t > now {
                    break;
                }
                timer.pop();
                if woken.len() == woken.capacity() {
                    activity.alloc_count += 1;
                }
                woken.push(idx);
            }
            if !woken.is_empty() {
                woken.sort_unstable();
                if merged.capacity() < ready.len() + woken.len() {
                    activity.alloc_count += 1;
                }
                merged.clear();
                let (mut a, mut b) = (0usize, 0usize);
                while a < ready.len() && b < woken.len() {
                    if ready[a] < woken[b] {
                        merged.push(ready[a]);
                        a += 1;
                    } else {
                        merged.push(woken[b]);
                        b += 1;
                    }
                }
                merged.extend_from_slice(&ready[a..]);
                merged.extend_from_slice(&woken[b..]);
                std::mem::swap(&mut ready, &mut merged);
                woken.clear();
            }
            let mut issued = 0u32;
            // Decentralized queues have narrow select ports: at most two
            // instructions issue from each 16-entry queue per cycle.
            let mut queue_issued = [0u32; 3];
            let mut kept = 0usize;
            let mut r = 0usize;
            while r < ready.len() {
                if issued >= cfg.issue_width {
                    break;
                }
                let idx = ready[r];
                let ti = &insts[idx];
                activity.select_visits += 1;
                if self.kind == WindowKind::Decentralized && queue_issued[Self::queue_of(ti)] >= 2 {
                    ready[kept] = idx;
                    kept += 1;
                    r += 1;
                    continue;
                }
                // Ready-list membership implies every dependence is visible;
                // the old per-cycle re-check is now an invariant.
                debug_assert!(ti.reg_deps.iter().chain(ti.mem_dep.as_ref()).all(|&d| {
                    complete[d as usize] != NOT_DONE && complete[d as usize] + wakeup_delay <= now
                }));
                if !fu.try_issue(&ti.inst, now) {
                    ready[kept] = idx;
                    kept += 1;
                    r += 1;
                    continue;
                }
                // Loads access the hierarchy; MSHR exhaustion retries later.
                let done_at = if ti.qp_true && ti.inst.op().is_load() {
                    let addr = ti.addr.expect("executed load has an address");
                    activity.store_buffer_searches += 1;
                    match mem.access(addr, AccessKind::DataRead, now) {
                        MemAccess::Done { complete_at, .. } => complete_at,
                        MemAccess::Retry => {
                            ready[kept] = idx;
                            kept += 1;
                            r += 1;
                            continue;
                        }
                    }
                } else if ti.qp_true && ti.inst.op().is_store() {
                    let addr = ti.addr.expect("executed store has an address");
                    activity.load_buffer_searches += 1;
                    let _ = mem.access(addr, AccessKind::DataWrite, now);
                    now + 1
                } else if ti.qp_true {
                    now + ti.inst.op().latency() as u64
                } else {
                    now + 1 // predicated off: flows through in one cycle
                };
                debug_assert!(done_at > now, "results are never visible in their issue cycle");
                complete[idx] = done_at;
                issued_flag[idx] = true;
                stats.executions += u64::from(ti.qp_true);
                activity.issue_selections += 1;
                activity.wakeup_broadcasts += 1;
                activity.regfile_reads += ti.inst.reads().count() as u64;
                if ti.inst.writes().is_some() {
                    activity.regfile_writes += 1;
                }
                if self.kind == WindowKind::Decentralized {
                    // The queue entry is released when the result returns.
                    queue_release.push((done_at, Self::queue_of(ti)));
                    queue_issued[Self::queue_of(ti)] += 1;
                }
                // A resolved mispredicted branch releases fetch.
                if waiting_branch == Some(idx) {
                    waiting_branch = None;
                    fetch_blocked_until = done_at + mispredict_penalty;
                }
                // Wake this producer's waiters: each re-classifies onto its
                // next unissued producer or into the wakeup timer (never
                // into this cycle's ready set — results land at now+1 or
                // later, so in-flight select order is undisturbed).
                let mut wtr = first_waiter[idx];
                first_waiter[idx] = NO_WAITER;
                while wtr != NO_WAITER {
                    let widx = wtr as usize;
                    wtr = next_waiter[widx];
                    match classify(&insts[widx], &complete, wakeup_delay) {
                        Err(p) => {
                            next_waiter[widx] = first_waiter[p];
                            first_waiter[p] = widx as u32;
                        }
                        Ok(t) => timer_push(&mut timer, &mut activity, t, widx),
                    }
                }
                window_len -= 1;
                issued += 1;
                r += 1;
            }
            // Entries past the width cutoff stay ready, still oldest-first.
            while r < ready.len() {
                ready[kept] = ready[r];
                kept += 1;
                r += 1;
            }
            ready.truncate(kept);

            // ---- release completed decentralized-queue entries ----
            if self.kind == WindowKind::Decentralized {
                queue_release.retain(|&(done, q)| {
                    if done <= now {
                        queue_len[q] -= 1;
                        false
                    } else {
                        true
                    }
                });
            }

            // ---- retire (in order) ----
            let mut retired_now = 0;
            while retired_now < cfg.issue_width as usize
                && rob_head < rob_tail
                && complete[rob_head] != NOT_DONE
                && complete[rob_head] <= now
            {
                let ti = &insts[rob_head];
                if matches!(ti.inst.op(), Op::Halt) && ti.qp_true {
                    retired_halt = true;
                }
                if hook_enabled {
                    hook.on_retire(&RetireEvent {
                        seq: ti.seq,
                        cycle: now,
                        pc: ti.pc,
                        inst: Cow::Borrowed(&ti.inst),
                        qp_true: Some(ti.qp_true),
                        wrote: ti.wrote,
                        stored: ti.stored,
                        mode: RetireMode::Architectural,
                        merged: false,
                        episode: None,
                    });
                }
                stats.retired += 1;
                rob_head += 1;
                retired_now += 1;
            }

            // ---- attribution (paper §5.2: charge the oldest instruction) ----
            if issued > 0 {
                stats.breakdown.charge(StallKind::Execution);
            } else if rob_head >= rob_tail && decode.is_empty() {
                stats.breakdown.charge(StallKind::FrontEnd);
            } else if rob_head < rob_tail {
                let oldest = rob_head;
                let kind = if issued_flag[oldest] {
                    // Oldest is executing: charge its own latency class.
                    if insts[oldest].inst.op().is_load() {
                        StallKind::Load
                    } else {
                        StallKind::Other
                    }
                } else {
                    // Oldest is waiting on a producer.
                    let blocking_load = insts[oldest].reg_deps.iter().any(|&d| {
                        (complete[d as usize] == NOT_DONE || complete[d as usize] > now)
                            && insts[d as usize].inst.op().is_load()
                    });
                    if blocking_load {
                        StallKind::Load
                    } else {
                        StallKind::Other
                    }
                };
                stats.breakdown.charge(kind);
            } else {
                stats.breakdown.charge(StallKind::FrontEnd);
            }

            now += 1;

            // Event-driven fast-forward: skip ahead while every pipeline
            // section is provably idle — fetch blocked or drained, dispatch
            // capacity-blocked, no window entry's dependences visible, no
            // retirement or queue release due. The wake set collects every
            // cycle at which any of those facts can change; attribution is
            // constant inside the window and bulk-charged.
            if self.tick == TickMode::EventDriven && !retired_halt {
                'ff: {
                    let mut wake = if fetch_idx >= n || waiting_branch.is_some() {
                        u64::MAX
                    } else if now < fetch_blocked_until {
                        fetch_blocked_until
                    } else {
                        break 'ff; // fetch would access the I-cache: poll
                    };
                    if let Some(&(idx, ready_at)) = decode.front() {
                        if ready_at > now {
                            wake = wake.min(ready_at);
                        } else {
                            let rob_full = rob_tail - rob_head >= cfg.ooo_rob;
                            let slot_full = match self.kind {
                                WindowKind::Unified => window_len >= cfg.ooo_window,
                                WindowKind::Decentralized => {
                                    queue_len[Self::queue_of(&insts[idx])]
                                        >= cfg.ooo_decentralized_queue
                                }
                            };
                            if !rob_full && !slot_full {
                                break 'ff; // would dispatch: poll
                            }
                            // Capacity clears only via retirement or queue
                            // release, both already in the wake set below.
                        }
                    }
                    // A window entry wakes when its last finite dependence
                    // becomes visible; a dependence that has not issued
                    // cannot complete inside a quiescent window. The
                    // wakeup-driven state answers this in O(1): waiter-
                    // linked entries are unknowable, the timer heap's
                    // minimum is the next dependence-visible cycle, and a
                    // non-empty ready list means the select loop must act.
                    if !ready.is_empty() {
                        break 'ff; // issueable now: the select loop acts
                    }
                    if let Some(&Reverse((t, _))) = timer.peek() {
                        if t <= now {
                            break 'ff;
                        }
                        wake = wake.min(t);
                    }
                    if rob_head < rob_tail {
                        let c = complete[rob_head];
                        if c != NOT_DONE {
                            if c <= now {
                                break 'ff; // would retire: poll
                            }
                            wake = wake.min(c);
                        }
                        // The stall attribution (load vs other) can flip
                        // when a pending dependence of the oldest completes.
                        if !issued_flag[rob_head] {
                            for &d in &insts[rob_head].reg_deps {
                                let cd = complete[d as usize];
                                if cd != NOT_DONE && cd > now {
                                    wake = wake.min(cd);
                                }
                            }
                        }
                    }
                    for &(done, _) in &queue_release {
                        if done > now {
                            wake = wake.min(done);
                        } else {
                            break 'ff; // release due this cycle: poll
                        }
                    }
                    wake = wake.min(mem.next_mshr_fill(now)).min(cycle_cap);
                    if wake <= now {
                        break 'ff;
                    }
                    // Attribution for an idle cycle, identical to the
                    // polled path with issued == 0.
                    let kind = if rob_head >= rob_tail && decode.is_empty() {
                        StallKind::FrontEnd
                    } else if rob_head < rob_tail {
                        if issued_flag[rob_head] {
                            if insts[rob_head].inst.op().is_load() {
                                StallKind::Load
                            } else {
                                StallKind::Other
                            }
                        } else {
                            let blocking_load = insts[rob_head].reg_deps.iter().any(|&d| {
                                (complete[d as usize] == NOT_DONE || complete[d as usize] > now)
                                    && insts[d as usize].inst.op().is_load()
                            });
                            if blocking_load {
                                StallKind::Load
                            } else {
                                StallKind::Other
                            }
                        }
                    } else {
                        StallKind::FrontEnd
                    };
                    stats.breakdown.charge_n(kind, wake - now);
                    now = wake;
                }
            }
        }

        stats.cycles = now;
        activity.cycles = now;
        Ok(RunResult {
            stats,
            activity,
            mem_stats: mem.final_stats(),
            // The run is over: move the recorded final state out of the
            // trace instead of cloning the whole memory image.
            final_state: trace.into_final_state(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inorder::InOrder;
    use ff_isa::interp::Interpreter;
    use ff_isa::{ArchState, Inst, MemoryImage, Program, Reg};

    /// A dependent chain of loads (chase) plus independent work the OOO
    /// window can reorder around.
    fn chase(nodes: u64) -> (Program, MemoryImage) {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x1_0000).stop());
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(4)).src(Reg::int(1)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(4)));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(4)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
        p.push(b2, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        let stride = 64 * 1024;
        for i in 0..nodes {
            let a = 0x1_0000 + i * stride;
            let next = if i + 1 == nodes { 0 } else { 0x1_0000 + (i + 1) * stride };
            mem.store(a, next);
        }
        (p, mem)
    }

    #[test]
    fn final_state_matches_interpreter() {
        let (p, mem) = chase(16);
        let case = SimCase::new(&p, mem.clone());
        let r = OutOfOrder::new(MachineConfig::default()).run(&case);
        let mut s = ArchState::new();
        s.mem = mem;
        let mut i = Interpreter::with_state(&p, s);
        i.run(10_000_000).unwrap();
        assert!(r.final_state.semantically_eq(i.state()));
        assert_eq!(r.stats.retired, i.retired());
    }

    #[test]
    fn ooo_beats_inorder_on_independent_work() {
        // Independent streaming loads: the OOO window overlaps many misses.
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(64).stop());
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(1)).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(4)));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(8192));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1).stop());
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
        p.push(b2, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        for i in 0..64u64 {
            mem.store(0x10_0000 + i * 8192, i);
        }
        let case = SimCase::new(&p, mem);
        let base = InOrder::new(MachineConfig::default()).run(&case);
        let ooo = OutOfOrder::new(MachineConfig::default()).run(&case);
        assert!(
            (ooo.stats.cycles as f64) < 0.6 * base.stats.cycles as f64,
            "ooo {} not ≪ inorder {}",
            ooo.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn dependent_chase_gets_no_ooo_benefit() {
        let (p, mem) = chase(32);
        let case = SimCase::new(&p, mem);
        let base = InOrder::new(MachineConfig::default()).run(&case);
        let ooo = OutOfOrder::new(MachineConfig::default()).run(&case);
        // Serial dependence: OOO cannot be much faster than in-order.
        assert!(
            ooo.stats.cycles as f64 > 0.8 * base.stats.cycles as f64,
            "ooo {} suspiciously fast vs {}",
            ooo.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn realistic_queues_throttle_ilp() {
        // Same streaming workload as above: tiny queues fill behind misses.
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(64).stop());
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(1)).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(4)));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(8192));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1).stop());
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
        p.push(b2, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        for i in 0..64u64 {
            mem.store(0x10_0000 + i * 8192, i);
        }
        let case = SimCase::new(&p, mem);
        let ideal = OutOfOrder::new(MachineConfig::default()).run(&case);
        let real = OutOfOrder::realistic(MachineConfig::default()).run(&case);
        assert!(
            real.stats.cycles > ideal.stats.cycles,
            "realistic {} should trail ideal {}",
            real.stats.cycles,
            ideal.stats.cycles
        );
    }

    #[test]
    fn attribution_covers_every_cycle() {
        let (p, mem) = chase(16);
        let case = SimCase::new(&p, mem);
        let r = OutOfOrder::new(MachineConfig::default()).run(&case);
        assert_eq!(r.stats.breakdown.total(), r.stats.cycles);
        assert!(r.stats.breakdown.load > 0);
    }

    #[test]
    fn mispredicted_branch_on_a_miss_stalls_fetch_until_resolution() {
        // A 50/50 data-dependent branch whose predicate hangs off a cold
        // load: when mispredicted, OOO fetch must wait for the load to
        // return, making such loops slow even for ideal OOO.
        let build = |threshold: i64| {
            let mut p = Program::new();
            let b0 = p.add_block();
            let b_loop = p.add_block();
            let b_then = p.add_block();
            let b_tail = p.add_block();
            let b_done = p.add_block();
            p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
            p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(64).stop());
            p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(9)).imm(threshold).stop());
            p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(1)).stop());
            p.push(
                b_loop,
                Inst::new(Op::CmpLt).dst(Reg::pred(2)).src(Reg::int(4)).src(Reg::int(9)).stop(),
            );
            p.push(b_loop, Inst::new(Op::Br { target: b_tail }).qp(Reg::pred(2)).stop());
            p.push(b_then, Inst::new(Op::AddImm).dst(Reg::int(3)).src(Reg::int(3)).imm(1).stop());
            p.push(b_tail, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(8192));
            p.push(b_tail, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1).stop());
            p.push(
                b_tail,
                Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)).stop(),
            );
            p.push(b_tail, Inst::new(Op::Br { target: b_loop }).qp(Reg::pred(1)).stop());
            p.push(b_done, Inst::new(Op::Halt).stop());
            p
        };
        // Values are i % 97 -> threshold 48 mispredicts ~half the time,
        // threshold 1000 is always taken (predictable).
        let mut mem = MemoryImage::new();
        for i in 0..64u64 {
            mem.store(0x10_0000 + i * 8192, i % 97);
        }
        let random_p = build(48);
        let biased_p = build(1000);
        let r_random =
            OutOfOrder::new(MachineConfig::default()).run(&SimCase::new(&random_p, mem.clone()));
        let r_biased = OutOfOrder::new(MachineConfig::default()).run(&SimCase::new(&biased_p, mem));
        assert!(r_random.stats.mispredicts > 10);
        assert!(
            r_random.stats.cycles > r_biased.stats.cycles,
            "unpredictable branches on misses should cost OOO dearly: {} !> {}",
            r_random.stats.cycles,
            r_biased.stats.cycles
        );
    }

    #[test]
    fn small_rob_serializes_long_misses() {
        // A loop with one cold (unique-address) load plus independent adds
        // per iteration: a large ROB lets misses from many iterations
        // overlap; a tiny ROB blocks retirement behind each miss and
        // serializes them.
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x20_0000).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(32).stop());
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(1)).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(4)));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(8192));
        for k in 0..12u8 {
            p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(10 + k)).src(Reg::int(10 + k)).imm(1));
        }
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1).stop());
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
        p.push(b2, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        for i in 0..32u64 {
            mem.store(0x20_0000 + i * 8192, i);
        }
        let case = SimCase::new(&p, mem);
        let big = OutOfOrder::new(MachineConfig::default()).run(&case);
        // A tiny ROB: barely more than one iteration in flight.
        let small_machine = MachineConfig { ooo_rob: 20, ..MachineConfig::default() };
        let small = OutOfOrder::new(small_machine).run(&case);
        assert!(small.final_state.semantically_eq(&big.final_state));
        assert!(
            small.stats.cycles as f64 > 1.5 * big.stats.cycles as f64,
            "small ROB {} should be much slower than large ROB {}",
            small.stats.cycles,
            big.stats.cycles
        );
    }

    #[test]
    fn rename_activity_is_counted() {
        let (p, mem) = chase(8);
        let case = SimCase::new(&p, mem);
        let r = OutOfOrder::new(MachineConfig::default()).run(&case);
        assert!(r.activity.rat_reads > 0);
        assert!(r.activity.rat_writes > 0);
        assert!(r.activity.wakeup_broadcasts > 0);
    }
}
