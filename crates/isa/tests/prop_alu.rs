//! Property tests for the functional ALU semantics and the memory image.

use proptest::prelude::*;

use ff_isa::eval::{alu, effective_address};
use ff_isa::{MemoryImage, Op};

proptest! {
    #[test]
    fn add_is_commutative(a: u64, b: u64) {
        prop_assert_eq!(alu(&Op::Add, a, b, 0), alu(&Op::Add, b, a, 0));
    }

    #[test]
    fn bitwise_ops_are_commutative(a: u64, b: u64) {
        for op in [Op::And, Op::Or, Op::Xor] {
            prop_assert_eq!(alu(&op, a, b, 0), alu(&op, b, a, 0));
        }
    }

    #[test]
    fn mul_is_commutative(a: u64, b: u64) {
        prop_assert_eq!(alu(&Op::Mul, a, b, 0), alu(&Op::Mul, b, a, 0));
    }

    #[test]
    fn add_sub_round_trips(a: u64, b: u64) {
        let sum = alu(&Op::Add, a, b, 0);
        prop_assert_eq!(alu(&Op::Sub, sum, b, 0), a);
    }

    #[test]
    fn xor_is_self_inverse(a: u64, b: u64) {
        let x = alu(&Op::Xor, a, b, 0);
        prop_assert_eq!(alu(&Op::Xor, x, b, 0), a);
    }

    #[test]
    fn compares_return_booleans(a: u64, b: u64) {
        for op in [Op::CmpEq, Op::CmpNe, Op::CmpLt] {
            let v = alu(&op, a, b, 0);
            prop_assert!(v == 0 || v == 1);
        }
        prop_assert_eq!(alu(&Op::CmpEq, a, b, 0) ^ alu(&Op::CmpNe, a, b, 0), 1);
    }

    #[test]
    fn addimm_matches_add(a: u64, imm: i32) {
        let via_imm = alu(&Op::AddImm, a, 0, imm as i64);
        let via_add = alu(&Op::Add, a, imm as i64 as u64, 0);
        prop_assert_eq!(via_imm, via_add);
    }

    #[test]
    fn division_never_panics(a: u64, b: u64) {
        let _ = alu(&Op::Div, a, b, 0);
        let _ = alu(&Op::FDiv, a, b, 0);
    }

    #[test]
    fn effective_address_is_base_plus_offset(base: u64, off: i32) {
        prop_assert_eq!(
            effective_address(base, off as i64),
            base.wrapping_add(off as i64 as u64)
        );
    }

    /// The memory image behaves like a word-granular map with zero default.
    #[test]
    fn memory_image_matches_hashmap_model(
        writes in proptest::collection::vec((0u64..0x1000, any::<u64>()), 0..64),
        probes in proptest::collection::vec(0u64..0x1000, 0..32),
    ) {
        use std::collections::HashMap;
        let mut mem = MemoryImage::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (addr, v) in &writes {
            mem.store(*addr, *v);
            model.insert(MemoryImage::word_addr(*addr), *v);
        }
        for p in &probes {
            let expect = model.get(&MemoryImage::word_addr(*p)).copied().unwrap_or(0);
            prop_assert_eq!(mem.load(*p), expect);
        }
    }
}
