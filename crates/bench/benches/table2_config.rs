//! Regenerates Table 2: the experimental machine configuration.

use ff_experiments::table2;

fn main() {
    println!("=== Table 2: experimental machine configuration ===\n");
    for (feature, params) in table2() {
        println!("{feature:<44} {params}");
    }
}
