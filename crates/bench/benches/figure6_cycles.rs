//! Regenerates Figure 6: normalized execution cycles for baseline,
//! multipass, and idealized out-of-order across the twelve benchmarks,
//! with the execution / front-end / other / load breakdown.

use std::time::Instant;

use ff_bench::scale_from_env;
use ff_experiments::{figure6, render, Suite};

fn main() {
    let scale = scale_from_env();
    let t0 = Instant::now();
    let mut suite = Suite::new(scale);
    let f = figure6(&mut suite);
    println!("=== Figure 6: normalized execution cycles ({scale:?} scale) ===\n");
    println!("{}", render::figure6(&f));
    println!("{}", render::figure6_bars(&f));
    if let Some(path) = ff_experiments::csv::write_if_configured(
        "figure6_cycles",
        &ff_experiments::csv::figure6(&f),
    ) {
        println!("csv written to {}", path.display());
    }
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
