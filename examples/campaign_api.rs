//! Drive a small campaign through the `ff-harness` API: run a filtered
//! job set on a worker pool, checkpoint the artifacts, then re-render a
//! figure from the checkpoint without re-simulating.
//!
//! ```sh
//! cargo run --release --example campaign_api
//! ```

use flea_flicker::experiments::{figure6, HierKind, ModelKind};
use flea_flicker::harness::{
    run_campaign, write_manifest, ArtifactStore, CampaignOptions, JobSpec,
};
use flea_flicker::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("ff-campaign-example");
    let _ = std::fs::remove_dir_all(&dir);

    // Figure 6 needs base/MP/OOO on the base hierarchy; plan exactly that.
    let mut jobs = Vec::new();
    for model in [ModelKind::InOrder, ModelKind::Multipass, ModelKind::Ooo] {
        for bench in Workload::NAMES {
            jobs.push(JobSpec::sim(model, HierKind::Base, bench, 0, Scale::Test));
        }
    }

    let mut opts = CampaignOptions::new(Scale::Test, &dir);
    opts.workers = 4;
    opts.progress = false;
    let report = run_campaign(&jobs, &opts).expect("artifact dir is writable");
    write_manifest(&dir, &report).expect("manifest written");
    println!(
        "campaign: {} ok, {} cached, {} failed in {:.2}s on {} workers",
        report.ok(),
        report.cached(),
        report.failed(),
        report.wall_s,
        report.workers
    );

    // Render Figure 6 purely from the checkpointed artifacts. A second
    // campaign over the same plan would report every job as cached.
    let mut store = ArtifactStore::new(&dir, Scale::Test);
    let f = figure6(&mut store);
    println!("\n{}", flea_flicker::experiments::render::figure6(&f));

    let rerun = run_campaign(&jobs, &opts).expect("artifact dir is writable");
    println!("re-run: {} cached of {} jobs", rerun.cached(), jobs.len());
}
