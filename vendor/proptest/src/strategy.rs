//! The `Strategy` trait and the combinators this workspace uses.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from an RNG.
///
/// Unlike real proptest there is no `ValueTree`/shrinking layer: a strategy
/// generates a value directly and a failing value is reported verbatim.
pub trait Strategy {
    type Value: Debug;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map: f }
    }

    /// Regenerates until `f` accepts a value (bounded; panics if the
    /// predicate rejects 1000 draws in a row).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, pred: f, whence }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn new_value_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws: {}", self.whence);
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                if span == 0 {
                    // Full u64 domain.
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span) as i128) as $t
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
