//! Qualitative shape checks on the paper's headline results, run at test
//! scale (miniature workloads). These are deliberately loose: they assert
//! orderings and directions — who wins, roughly where — not absolute
//! numbers, which belong to the paper-scale bench harness.

use flea_flicker::experiments::{
    figure6, figure7, figure8, realistic_ooo, runahead_compare, table1_experiment, Suite,
};
use flea_flicker::workloads::Scale;

fn suite() -> Suite {
    Suite::new(Scale::Test)
}

#[test]
fn figure6_multipass_beats_baseline_on_average() {
    let f = figure6(&mut suite());
    assert!(
        f.mp_speedup() > 1.05,
        "multipass should clearly beat in-order, got {:.3}",
        f.mp_speedup()
    );
    // Multipass must reduce total stalls.
    assert!(f.mp_stall_reduction() > 0.10, "stall reduction {:.3}", f.mp_stall_reduction());
}

#[test]
fn figure6_mcf_is_the_extreme_memory_benchmark() {
    let f = figure6(&mut suite());
    let mcf = f.rows.iter().find(|r| r.bench == "mcf").unwrap();
    // mcf's baseline is dominated by load stalls…
    assert!(mcf.base[3] > 0.5, "mcf base load fraction {:.3}", mcf.base[3]);
    // …and multipass removes a sizable share of them.
    assert!(
        f.load_stall_reduction("mcf") > 0.2,
        "mcf load-stall reduction {:.3}",
        f.load_stall_reduction("mcf")
    );
}

#[test]
fn figure6_out_of_order_is_the_upper_bound_on_average() {
    let f = figure6(&mut suite());
    // Averaged across the suite, ideal OOO should not lose to MP.
    assert!(f.ooo_over_mp() > 0.95, "OOO/MP {:.3}", f.ooo_over_mp());
}

#[test]
fn figure7_gap_narrows_with_restrictive_hierarchies() {
    let f = figure7(&mut suite());
    assert_eq!(f.configs.len(), 3);
    for c in &f.configs {
        assert!(c.mean_mp() > 1.0, "{}: MP mean {:.3}", c.name, c.mean_mp());
    }
    // The paper: "the difference between multipass and out-of-order
    // performance narrows with the more restrictive hierarchies".
    let base_gap = f.configs[0].gap();
    let config2_gap = f.configs[2].gap();
    assert!(
        config2_gap < base_gap * 1.10,
        "gap should not widen appreciably: base {base_gap:.3} vs config2 {config2_gap:.3}"
    );
}

#[test]
fn figure8_restart_matters_most_for_chained_miss_benchmarks() {
    let mut s = suite();
    let f = figure8(&mut s);
    // Without restart, mcf keeps clearly less of its speedup than a
    // streaming benchmark like art does.
    let pct = |name: &str| f.rows.iter().find(|r| r.0 == name).map(|r| r.2).unwrap();
    let mcf = pct("mcf");
    let art = pct("art");
    assert!(
        mcf < art + 35.0,
        "restart should matter more for mcf (kept {mcf:.0}%) than art (kept {art:.0}%)"
    );
}

#[test]
fn runahead_captures_less_than_multipass() {
    let r = runahead_compare(&mut suite());
    let ratio = r.reduction_ratio();
    // Paper §5.4: about half. Allow a wide band at miniature scale.
    assert!(
        (0.1..=1.02).contains(&ratio),
        "runahead/multipass reduction ratio {ratio:.2} out of band"
    );
}

#[test]
fn multipass_is_competitive_with_realistic_ooo() {
    let r = realistic_ooo(&mut suite());
    // Paper §5.2: MP is slightly *faster* (1.05x) than the decentralized
    // OOO. At miniature scale allow parity within a generous band.
    assert!(r.mean() > 0.75, "MP vs realistic OOO {:.3}", r.mean());
}

#[test]
fn table1_scheduling_structures_favor_multipass_strongly() {
    let rows = table1_experiment(&mut suite());
    let sched = rows.iter().find(|r| r.group == "scheduling").unwrap();
    assert!(sched.peak_ratio > 4.0, "scheduling peak ratio {:.2}", sched.peak_ratio);
    let mem = rows.iter().find(|r| r.group == "memory ordering").unwrap();
    assert!(mem.peak_ratio > 1.5, "memory-ordering peak ratio {:.2}", mem.peak_ratio);
    let reg = rows.iter().find(|r| r.group == "register/data").unwrap();
    assert!(
        (0.5..=2.0).contains(&reg.peak_ratio),
        "register/data peak ratio {:.2} should be near parity",
        reg.peak_ratio
    );
}
