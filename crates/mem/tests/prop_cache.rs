//! Property tests for the cache and MSHR models.

use proptest::prelude::*;

use ff_mem::{AccessKind, Cache, CacheConfig, HierarchyConfig, MemAccess, MemorySystem, MshrFile};

proptest! {
    /// Residency never exceeds capacity, and a just-filled line always hits.
    #[test]
    fn cache_capacity_and_fill_invariants(
        addrs in proptest::collection::vec(0u64..0x40_000, 1..200),
    ) {
        let cfg = CacheConfig::new(4096, 4, 64, 1);
        let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.fill(a);
            prop_assert!(c.probe(a), "line just filled must be resident");
            prop_assert!(c.resident_lines() <= capacity);
        }
    }

    /// With associativity A, the A most-recently-used distinct lines of a
    /// set are always resident (true-LRU property).
    #[test]
    fn lru_keeps_most_recent_ways(
        seq in proptest::collection::vec(0u64..8, 1..64),
    ) {
        // One set: 4 ways, line 64B, 4 sets — use set-0 lines only.
        let cfg = CacheConfig::new(1024, 4, 64, 1);
        let mut c = Cache::new(cfg);
        let line = |i: u64| i * 64 * 4; // stride = sets * line -> same set
        let mut recent: Vec<u64> = Vec::new();
        for &i in &seq {
            c.fill(line(i));
            recent.retain(|&x| x != i);
            recent.push(i);
            let keep = recent.len().min(4);
            for &r in &recent[recent.len() - keep..] {
                prop_assert!(c.probe(line(r)), "recently used line {r} evicted");
            }
        }
    }

    /// MSHR occupancy never exceeds capacity and merges never allocate.
    #[test]
    fn mshr_occupancy_bounded(
        reqs in proptest::collection::vec((0u64..32, 0u64..100), 1..100),
    ) {
        let mut m = MshrFile::new(8);
        for (i, &(line, dur)) in reqs.iter().enumerate() {
            let now = i as u64;
            let _ = m.request(line * 64, now, now + dur + 1);
            prop_assert!(m.occupancy(now) <= 8);
        }
    }

    /// The memory system always answers, and accepted accesses complete in
    /// bounded time (at most the main-memory latency).
    #[test]
    fn memory_system_latency_bounds(
        accesses in proptest::collection::vec((0u64..0x100_000, 0u64..8), 1..200),
    ) {
        let mut sys = MemorySystem::new(HierarchyConfig::itanium2_base());
        let mm = sys.config().mm_latency as u64;
        let mut now = 0;
        for &(addr, gap) in &accesses {
            now += gap;
            match sys.access(addr, AccessKind::DataRead, now) {
                MemAccess::Done { complete_at, .. } => {
                    prop_assert!(complete_at > now, "completion must be in the future");
                    prop_assert!(complete_at <= now + mm, "latency exceeds main memory");
                }
                MemAccess::Retry => {
                    // Only legal when the MSHR file is genuinely full.
                    prop_assert!(sys.mshrs().occupancy(now) == 16);
                }
            }
        }
    }

    /// Repeated access to the same address eventually hits L1 (once its
    /// miss completes): temporal locality always pays off.
    #[test]
    fn second_access_after_completion_hits(addr in 0u64..0x100_000) {
        let mut sys = MemorySystem::new(HierarchyConfig::itanium2_base());
        let first = sys.access(addr, AccessKind::DataRead, 0);
        let done = first.complete_at().expect("empty MSHRs accept the miss");
        match sys.access(addr, AccessKind::DataRead, done + 1) {
            MemAccess::Done { complete_at, level } => {
                prop_assert_eq!(level, ff_mem::HitLevel::L1);
                prop_assert_eq!(complete_at, done + 2);
            }
            MemAccess::Retry => prop_assert!(false, "hit cannot retry"),
        }
    }
}
