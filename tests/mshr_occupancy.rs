//! MSHR occupancy conservation on random memory-heavy programs.
//!
//! The MSHR file is the one structure every model shares and every
//! runahead-family technique stresses, so a lost deallocation silently
//! caps memory-level parallelism for the rest of the run without changing
//! any architectural result. These properties pin the conservation law —
//! every allocated entry is released by the end-of-run drain, on every
//! hierarchy config — and a regression proves the mshr sentinel catches
//! the lost-deallocation fault that breaks it.

use proptest::prelude::*;

use flea_flicker::engine::SimCase;
use flea_flicker::experiments::{HierKind, ModelKind, Suite};
use flea_flicker::isa::{Inst, MemoryImage, Op, Program, Reg};
use flea_flicker::sentinel::{detected, run_faulted, FaultClass};

const WINDOW_BASE: u64 = 0x8000;
/// Spread accesses across enough distinct lines to cycle MSHR entries
/// through allocate/merge/release many times per run (64B lines, so
/// consecutive `slot`s of 8 words land on distinct lines).
const WINDOW_LINES: u64 = 48;

/// One memory access in the loop body: a load from or store to a line
/// chosen by `slot`.
#[derive(Clone, Debug)]
enum MemOp {
    Load { slot: u8 },
    Store { slot: u8 },
}

fn arb_mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (0u8..WINDOW_LINES as u8).prop_map(|slot| MemOp::Load { slot }),
        (0u8..WINDOW_LINES as u8).prop_map(|slot| MemOp::Store { slot }),
    ]
}

/// Builds a counted loop whose body issues the given access pattern.
/// Addresses are immediate-materialized per access so every iteration
/// re-touches the same lines (exercising merge and re-allocate paths as
/// lines are evicted between trips).
fn build_program(body: &[MemOp], trips: u8) -> Program {
    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    let b2 = p.add_block();
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(0x55));
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(22)).imm(trips as i64 + 1));
    for op in body {
        match op {
            MemOp::Load { slot } => {
                let addr = WINDOW_BASE + u64::from(*slot) * 64;
                p.push(b1, Inst::new(Op::MovImm).dst(Reg::int(3)).imm(addr as i64));
                p.push(b1, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(3)));
            }
            MemOp::Store { slot } => {
                let addr = WINDOW_BASE + u64::from(*slot) * 64;
                p.push(b1, Inst::new(Op::MovImm).dst(Reg::int(5)).imm(addr as i64));
                p.push(b1, Inst::new(Op::Store).src(Reg::int(5)).src(Reg::int(2)));
            }
        }
    }
    p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(22)).src(Reg::int(22)).imm(-1));
    p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(22)).src(Reg::int(0)));
    p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
    p.push(b2, Inst::new(Op::Halt));
    p
}

fn initial_memory() -> MemoryImage {
    let mut m = MemoryImage::new();
    for i in 0..WINDOW_LINES * 8 {
        m.store(WINDOW_BASE + i * 8, i.wrapping_mul(0x1234_5679) ^ 0x5A5A);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Allocations balance releases at drain, with zero leaked entries,
    /// for an in-order and a multipass pipeline on every hierarchy config.
    #[test]
    fn mshr_allocations_balance_releases_at_drain(
        body in proptest::collection::vec(arb_mem_op(), 1..12),
        trips in 1u8..8,
    ) {
        let program = build_program(&body, trips);
        prop_assert!(program.validate().is_ok());
        let mem = initial_memory();
        for model in [ModelKind::InOrder, ModelKind::Multipass] {
            for hier in HierKind::ALL {
                let case = SimCase::new(&program, mem.clone());
                let r = Suite::execute_case(model, hier, &case)
                    .expect("bounded loop kernels finish without a budget");
                let m = &r.mem_stats;
                prop_assert_eq!(
                    m.mshr_allocations, m.mshr_releases,
                    "{}/{}: {} allocated vs {} released",
                    model.name(), hier.name(), m.mshr_allocations, m.mshr_releases
                );
                prop_assert_eq!(
                    m.mshr_leaked, 0,
                    "{}/{}: {} entries leaked",
                    model.name(), hier.name(), m.mshr_leaked
                );
            }
        }
    }
}

/// The conservation law is load-bearing: breaking it with the
/// lost-deallocation fault must trip the mshr sentinel.
#[test]
fn lost_mshr_dealloc_fault_trips_the_mshr_sentinel() {
    let report = run_faulted(FaultClass::LostMshrDealloc, 0);
    assert!(report.fired("mshr"), "violations: {:?}", report.violations);
    assert!(detected(FaultClass::LostMshrDealloc, &report));
}
