//! Memoized simulation suite: (model, hierarchy, benchmark) → results.

use std::collections::HashMap;

use ff_baselines::{InOrder, OutOfOrder, Runahead};
use ff_engine::{ExecutionModel, MachineConfig, RunResult, SimCase};
use ff_mem::HierarchyConfig;
use ff_multipass::{Multipass, MultipassConfig};
use ff_workloads::{Scale, Workload};

/// Which execution model to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Baseline in-order EPIC pipeline.
    InOrder,
    /// Dundas–Mudge runahead.
    Runahead,
    /// Idealized out-of-order (Figure 6's OOO).
    Ooo,
    /// Realistic decentralized out-of-order (§5.2).
    OooRealistic,
    /// Full multipass pipeline.
    Multipass,
    /// Multipass without issue regrouping (Figure 8).
    MpNoRegroup,
    /// Multipass without advance restart (Figure 8).
    MpNoRestart,
}

/// Which cache hierarchy to use (Figure 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HierKind {
    /// Table 2 base hierarchy.
    Base,
    /// Base with 200-cycle main memory.
    Config1,
    /// Smaller, slower hierarchy (8 KB L1 / 128 KB 7-cycle L2 /
    /// 1.5 MB 16-cycle L3 / 200-cycle memory).
    Config2,
}

impl HierKind {
    /// The concrete hierarchy configuration.
    pub fn config(self) -> HierarchyConfig {
        match self {
            HierKind::Base => HierarchyConfig::itanium2_base(),
            HierKind::Config1 => HierarchyConfig::config1(),
            HierKind::Config2 => HierarchyConfig::config2(),
        }
    }

    /// Display name used in Figure 7 output.
    pub fn name(self) -> &'static str {
        match self {
            HierKind::Base => "base",
            HierKind::Config1 => "config1",
            HierKind::Config2 => "config2",
        }
    }
}

/// A memoizing simulation driver over the twelve workloads.
pub struct Suite {
    workloads: Vec<Workload>,
    cache: HashMap<(ModelKind, HierKind, &'static str), RunResult>,
}

impl Suite {
    /// Generates the workload set at `scale`.
    pub fn new(scale: Scale) -> Self {
        Suite { workloads: Workload::all(scale), cache: HashMap::new() }
    }

    /// Benchmark names in presentation order.
    pub fn benchmarks(&self) -> Vec<&'static str> {
        self.workloads.iter().map(|w| w.name).collect()
    }

    /// The workload with the given name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the twelve benchmarks.
    pub fn workload(&self, name: &str) -> &Workload {
        self.workloads.iter().find(|w| w.name == name).expect("unknown benchmark")
    }

    /// Runs (or returns the memoized result of) one simulation.
    pub fn run(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> &RunResult {
        if !self.cache.contains_key(&(model, hier, bench)) {
            let machine = MachineConfig::itanium2_base().with_hierarchy(hier.config());
            let w = self.workload(bench);
            let case = SimCase::new(&w.program, w.mem.clone());
            let result = match model {
                ModelKind::InOrder => InOrder::new(machine).run(&case),
                ModelKind::Runahead => Runahead::new(machine).run(&case),
                ModelKind::Ooo => OutOfOrder::new(machine).run(&case),
                ModelKind::OooRealistic => OutOfOrder::realistic(machine).run(&case),
                ModelKind::Multipass => Multipass::new(machine).run(&case),
                ModelKind::MpNoRegroup => {
                    Multipass::with_config(MultipassConfig::without_regrouping(machine)).run(&case)
                }
                ModelKind::MpNoRestart => {
                    Multipass::with_config(MultipassConfig::without_restart(machine)).run(&case)
                }
            };
            self.cache.insert((model, hier, bench), result);
        }
        &self.cache[&(model, hier, bench)]
    }

    /// Convenience: cycles of one run.
    pub fn cycles(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> u64 {
        self.run(model, hier, bench).stats.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_identical_results() {
        let mut s = Suite::new(Scale::Test);
        let a = s.run(ModelKind::InOrder, HierKind::Base, "mesa").stats.cycles;
        let b = s.run(ModelKind::InOrder, HierKind::Base, "mesa").stats.cycles;
        assert_eq!(a, b);
        assert_eq!(s.cache.len(), 1);
    }

    #[test]
    fn all_models_agree_on_final_state() {
        let mut s = Suite::new(Scale::Test);
        for model in [
            ModelKind::InOrder,
            ModelKind::Runahead,
            ModelKind::Ooo,
            ModelKind::OooRealistic,
            ModelKind::Multipass,
            ModelKind::MpNoRegroup,
            ModelKind::MpNoRestart,
        ] {
            let base = s.run(ModelKind::InOrder, HierKind::Base, "gap").final_state.clone();
            let other = s.run(model, HierKind::Base, "gap").final_state.clone();
            assert!(base.semantically_eq(&other), "{model:?} diverges on gap");
        }
    }

    #[test]
    fn hierarchies_change_timing_not_results() {
        let mut s = Suite::new(Scale::Test);
        let base = s.run(ModelKind::Multipass, HierKind::Base, "vpr").clone();
        let slow = s.run(ModelKind::Multipass, HierKind::Config2, "vpr").clone();
        assert!(base.final_state.semantically_eq(&slow.final_state));
        assert!(slow.stats.cycles >= base.stats.cycles, "slower hierarchy, fewer cycles?");
    }
}
