//! Simulator-throughput measurement and the tracked perf trajectory.
//!
//! `cargo bench -p ff-bench --bench sim_throughput` measures how fast the
//! simulator itself runs — simulated cycles per wall-clock second and
//! retired instructions per second — for every execution model on a fixed
//! kernel set, in both tick modes. Results are written to
//! `BENCH_<git-describe>.json` at the repository root so the trajectory of
//! simulator performance is tracked in version control, and the CI
//! `perf-gate` job compares a fresh measurement against the committed
//! `BENCH_main.json`, failing on a >10% cycles/sec regression for any
//! model.
//!
//! Measurement protocol (steady state, not cold start):
//!
//! 1. A warm-up run executes until [`WARMUP_RETIREMENTS`] instructions
//!    have retired; everything before that point (allocator warm-up, host
//!    cache/branch-predictor training, workload generation) is excluded
//!    from timing. A kernel that retires fewer instructions than the
//!    threshold has no steady state to measure — that is a hard error,
//!    not a silent short sample.
//! 2. Timed repetitions of the full run then accumulate simulated cycles
//!    and retired instructions until at least [`MIN_SAMPLE`] of wall
//!    clock has elapsed, so rates are averaged over a window long enough
//!    to be stable.
//! 3. The whole measurement repeats [`MEASURE_PASSES`] times and the
//!    median pass (by cycles/sec) is recorded, so a single noisy
//!    scheduling hiccup cannot skew a trajectory point or trip the gate.
//!
//! Each entry also records the run's simulator self-instrumentation —
//! `select_visits` (issue-select examinations) and `alloc_count`
//! (in-flight container growth events) — alongside `retired`, so the
//! per-instruction cost of issue selection and the zero-steady-state-
//! allocation invariant are tracked in the same trajectory. The document
//! carries a host fingerprint (CPU model + core count); [`cli_main`]'s
//! `check` warns when it compares measurements from different hosts.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

use ff_baselines::{InOrder, OutOfOrder, Runahead};
use ff_engine::{ExecutionModel, MachineConfig, RetireEvent, RetireHook, SimCase, TickMode};
use ff_harness::json::Json;
use ff_multipass::Multipass;
use ff_workloads::{Scale, Workload};

/// Retirements excluded from the front of every measurement.
pub const WARMUP_RETIREMENTS: u64 = 2_000;

/// Minimum wall-clock window a rate is averaged over.
pub const MIN_SAMPLE: Duration = Duration::from_millis(200);

/// Default regression tolerance for [`compare`]: 10%.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Measurement passes per grid point; the median pass is recorded.
pub const MEASURE_PASSES: usize = 3;

/// Schema version of the `BENCH_*.json` files. Format 2 added the host
/// fingerprint and the per-entry `retired`/`select_visits`/`alloc_count`
/// counters.
pub const BENCH_FORMAT: u64 = 2;

/// The kernels every model is measured on. A mix of load-dominated
/// (`mcf`, `gap`) and compute-dominated (`art`, `mesa`) workloads, all
/// comfortably larger than the warm-up threshold at test scale.
pub const KERNELS: [&str; 4] = ["mcf", "gap", "art", "mesa"];

/// The execution models the perf gate covers.
pub const MODELS: [&str; 4] = ["inorder", "runahead", "ooo", "multipass"];

fn build_model(name: &str, machine: MachineConfig) -> Box<dyn ExecutionModel> {
    match name {
        "inorder" => Box::new(InOrder::new(machine)),
        "runahead" => Box::new(Runahead::new(machine)),
        "ooo" => Box::new(OutOfOrder::new(machine)),
        "multipass" => Box::new(Multipass::new(machine)),
        other => panic!("unknown model `{other}`"),
    }
}

fn tick_name(tick: TickMode) -> &'static str {
    match tick {
        TickMode::Polling => "polling",
        TickMode::EventDriven => "event",
    }
}

fn parse_tick(s: &str) -> Option<TickMode> {
    match s {
        "polling" => Some(TickMode::Polling),
        "event" => Some(TickMode::EventDriven),
        _ => None,
    }
}

/// One measured (model, kernel, tick mode) throughput sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Rate {
    /// Execution model name (one of [`MODELS`]).
    pub model: String,
    /// Kernel name (one of [`KERNELS`]).
    pub kernel: String,
    /// Tick mode name (`polling` or `event`).
    pub tick: String,
    /// Simulated cycles per wall-clock second, steady state.
    pub cycles_per_sec: f64,
    /// Retired instructions per wall-clock second, steady state.
    pub insts_per_sec: f64,
    /// Full simulation repetitions inside the timed window.
    pub reps: u64,
    /// Instructions retired by one full run (deterministic per grid
    /// point; the denominator for the per-instruction counters below).
    pub retired: u64,
    /// Issue-select entries examined over one full run (tick-mode
    /// invariant simulator self-instrumentation).
    pub select_visits: u64,
    /// In-flight container growth events over one full run. Flat after
    /// warm-up; growth proportional to `retired` means a container is
    /// being reallocated on the hot path.
    pub alloc_count: u64,
}

/// Marks the wall-clock instant and simulated cycle at which the warm-up
/// threshold was crossed.
struct WarmupHook {
    threshold: u64,
    seen: u64,
    mark: Option<(Instant, u64)>,
}

impl RetireHook for WarmupHook {
    fn on_retire(&mut self, event: &RetireEvent<'_>) {
        self.seen += 1;
        if self.seen == self.threshold {
            self.mark = Some((Instant::now(), event.cycle));
        }
    }
}

/// One pass of the steady-state measurement core.
#[derive(Debug)]
struct Sample {
    cycles_per_sec: f64,
    insts_per_sec: f64,
    reps: u64,
    retired: u64,
    select_visits: u64,
    alloc_count: u64,
}

/// Steady-state measurement core: warm-up guard plus timed repetitions.
/// Split out of [`measure_one`] so the guard is testable on programs
/// smaller than the production threshold.
fn steady_rate(
    m: &mut dyn ExecutionModel,
    case: &SimCase<'_>,
    warmup: u64,
    min_sample: Duration,
) -> Result<Sample, String> {
    // Warm-up run: the first `warmup` retirements train the host
    // (allocator, caches, branch predictors) and are excluded.
    let mut hook = WarmupHook { threshold: warmup, seen: 0, mark: None };
    let first = m.run_hooked(case, &mut hook);
    let Some((start, warm_cycle)) = hook.mark else {
        return Err(format!(
            "kernel retired only {} instructions — fewer than the warm-up \
             threshold {warmup}; it has no steady state to measure",
            first.stats.retired
        ));
    };
    let mut cycles = first.stats.cycles - warm_cycle;
    let mut insts = first.stats.retired - warmup;
    // Self-instrumentation is deterministic per grid point, so one run's
    // counters describe every repetition.
    let retired = first.stats.retired;
    let select_visits = first.activity.select_visits;
    let alloc_count = first.activity.alloc_count;

    // Steady state: whole-run repetitions until the sample window is
    // long enough for a stable average.
    let mut reps = 0u64;
    while start.elapsed() < min_sample {
        let r = m.run(case);
        cycles += r.stats.cycles;
        insts += r.stats.retired;
        reps += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    Ok(Sample {
        cycles_per_sec: cycles as f64 / secs,
        insts_per_sec: insts as f64 / secs,
        reps,
        retired,
        select_visits,
        alloc_count,
    })
}

/// Measures steady-state simulator throughput for one grid point:
/// [`MEASURE_PASSES`] independent passes, recording the median pass by
/// cycles/sec so one scheduling hiccup cannot skew the trajectory.
///
/// # Errors
///
/// Fails when the kernel does not exist or retires fewer instructions
/// than the warm-up threshold (no steady state to measure).
pub fn measure_one(model: &str, kernel: &str, tick: TickMode) -> Result<Rate, String> {
    let w = Workload::by_name(kernel, Scale::Test)
        .ok_or_else(|| format!("unknown kernel `{kernel}`"))?;
    let machine = MachineConfig::itanium2_base();
    let case = SimCase::new(&w.program, w.mem.clone());
    let mut passes = Vec::with_capacity(MEASURE_PASSES);
    for _ in 0..MEASURE_PASSES {
        let mut m = build_model(model, machine);
        m.set_tick_mode(tick);
        passes.push(
            steady_rate(&mut *m, &case, WARMUP_RETIREMENTS, MIN_SAMPLE)
                .map_err(|e| format!("kernel `{kernel}`: {e}"))?,
        );
    }
    passes.sort_by(|a, b| a.cycles_per_sec.total_cmp(&b.cycles_per_sec));
    let median = passes.swap_remove(passes.len() / 2);
    Ok(Rate {
        model: model.to_string(),
        kernel: kernel.to_string(),
        tick: tick_name(tick).to_string(),
        cycles_per_sec: median.cycles_per_sec,
        insts_per_sec: median.insts_per_sec,
        reps: median.reps,
        retired: median.retired,
        select_visits: median.select_visits,
        alloc_count: median.alloc_count,
    })
}

/// Measures the full grid: every model x kernel x tick mode.
///
/// # Errors
///
/// Propagates the first [`measure_one`] failure.
pub fn measure_all() -> Result<Vec<Rate>, String> {
    let mut out = Vec::new();
    for model in MODELS {
        for kernel in KERNELS {
            for tick in [TickMode::Polling, TickMode::EventDriven] {
                out.push(measure_one(model, kernel, tick)?);
            }
        }
    }
    Ok(out)
}

/// Host fingerprint recorded in every `BENCH_*.json`: the CPU model
/// (from `/proc/cpuinfo`, when readable) plus the logical core count.
/// Cycles/sec is a property of the (simulator, host) pair, so the gate
/// warns when it compares documents from different fingerprints.
pub fn host_fingerprint() -> String {
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1).map(|m| m.trim().to_string()))
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown-cpu".to_string());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0);
    format!("{model} ({cores} cores)")
}

/// Renders measurements to the `BENCH_*.json` document.
pub fn render_json(describe: &str, host: &str, rates: &[Rate]) -> String {
    let entries = rates
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("model", Json::Str(r.model.clone())),
                ("kernel", Json::Str(r.kernel.clone())),
                ("tick", Json::Str(r.tick.clone())),
                ("cycles_per_sec", Json::F64(r.cycles_per_sec)),
                ("insts_per_sec", Json::F64(r.insts_per_sec)),
                ("reps", Json::U64(r.reps)),
                ("retired", Json::U64(r.retired)),
                ("select_visits", Json::U64(r.select_visits)),
                ("alloc_count", Json::U64(r.alloc_count)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("format", Json::U64(BENCH_FORMAT)),
        ("describe", Json::Str(describe.to_string())),
        ("host", Json::Str(host.to_string())),
        ("warmup_retirements", Json::U64(WARMUP_RETIREMENTS)),
        ("measure_passes", Json::U64(MEASURE_PASSES as u64)),
        ("entries", Json::Arr(entries)),
    ])
    .render()
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number field `{key}`"))
}

/// Parses a `BENCH_*.json` document back into measurements.
///
/// # Errors
///
/// Fails on malformed JSON or a missing/mistyped field.
pub fn parse_json(text: &str) -> Result<Vec<Rate>, String> {
    let doc = Json::parse(text)?;
    let format = doc.get("format").and_then(Json::as_u64).ok_or("missing format")?;
    if format != BENCH_FORMAT {
        return Err(format!("unsupported bench format {format} (expected {BENCH_FORMAT})"));
    }
    let entries = doc.get("entries").and_then(Json::as_arr).ok_or("missing entries")?;
    entries
        .iter()
        .map(|e| {
            Ok(Rate {
                model: str_field(e, "model")?,
                kernel: str_field(e, "kernel")?,
                tick: str_field(e, "tick")?,
                cycles_per_sec: f64_field(e, "cycles_per_sec")?,
                insts_per_sec: f64_field(e, "insts_per_sec")?,
                reps: e.get("reps").and_then(Json::as_u64).ok_or("missing reps")?,
                retired: e.get("retired").and_then(Json::as_u64).ok_or("missing retired")?,
                select_visits: e
                    .get("select_visits")
                    .and_then(Json::as_u64)
                    .ok_or("missing select_visits")?,
                alloc_count: e
                    .get("alloc_count")
                    .and_then(Json::as_u64)
                    .ok_or("missing alloc_count")?,
            })
        })
        .collect()
}

/// The host fingerprint recorded in a `BENCH_*.json` document.
///
/// # Errors
///
/// Fails on malformed JSON or a missing `host` field.
pub fn parse_host(text: &str) -> Result<String, String> {
    let doc = Json::parse(text)?;
    str_field(&doc, "host")
}

/// Per-model geometric mean of `cycles_per_sec` over every kernel, for
/// the shipping (event-driven) tick mode.
pub fn per_model_geomean(rates: &[Rate]) -> Vec<(String, f64)> {
    MODELS
        .iter()
        .filter_map(|&model| {
            let samples: Vec<f64> = rates
                .iter()
                .filter(|r| r.model == model && r.tick == "event")
                .map(|r| r.cycles_per_sec)
                .collect();
            if samples.is_empty() {
                return None;
            }
            let log_mean = samples.iter().map(|v| v.ln()).sum::<f64>() / samples.len() as f64;
            Some((model.to_string(), log_mean.exp()))
        })
        .collect()
}

/// Compares a fresh measurement against a committed baseline.
///
/// # Errors
///
/// One message per model whose event-driven cycles/sec geomean regressed
/// by more than `tolerance` (a fraction, e.g. `0.10`).
pub fn compare(baseline: &[Rate], current: &[Rate], tolerance: f64) -> Result<(), Vec<String>> {
    let base = per_model_geomean(baseline);
    let cur = per_model_geomean(current);
    let mut regressions = Vec::new();
    for (model, b) in &base {
        let Some((_, c)) = cur.iter().find(|(m, _)| m == model) else {
            regressions.push(format!("model `{model}` missing from current measurement"));
            continue;
        };
        if *c < b * (1.0 - tolerance) {
            regressions.push(format!(
                "{model}: {c:.0} cycles/sec vs baseline {b:.0} \
                 ({:+.1}% > {:.0}% tolerance)",
                (c / b - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(regressions)
    }
}

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Resolves a CLI path argument against the repository root when it is
/// relative. `cargo bench` runs the binary with the *package* directory
/// as its cwd, but `BENCH_*.json` trajectories live at the repo root —
/// anchoring there makes `--out BENCH_main.json` and
/// `--baseline BENCH_main.json` mean the committed file regardless of
/// how the binary was launched. Absolute paths pass through untouched.
fn resolve_path(p: &str) -> PathBuf {
    let path = Path::new(p);
    if path.is_absolute() {
        path.to_path_buf()
    } else {
        repo_root().join(path)
    }
}

/// `git describe --always --dirty` of the repository, or `dev` when git
/// is unavailable. Path separators are sanitized so the result is always
/// a valid file-name component.
pub fn git_describe() -> String {
    let out = Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(repo_root())
        .output();
    match out {
        Ok(o) if o.status.success() => {
            let s = String::from_utf8_lossy(&o.stdout).trim().replace('/', "-");
            if s.is_empty() {
                "dev".to_string()
            } else {
                s
            }
        }
        _ => "dev".to_string(),
    }
}

fn print_table(rates: &[Rate]) {
    println!(
        "{:<10} {:<6} {:<8} {:>15} {:>15} {:>6} {:>12} {:>7}",
        "model", "kernel", "tick", "cycles/sec", "insts/sec", "reps", "visits/inst", "allocs"
    );
    for r in rates {
        let vpi = if r.retired > 0 { r.select_visits as f64 / r.retired as f64 } else { 0.0 };
        println!(
            "{:<10} {:<6} {:<8} {:>15.0} {:>15.0} {:>6} {:>12.2} {:>7}",
            r.model,
            r.kernel,
            r.tick,
            r.cycles_per_sec,
            r.insts_per_sec,
            r.reps,
            vpi,
            r.alloc_count
        );
    }
    println!();
    println!("per-model geomean (event-driven):");
    for (model, v) in per_model_geomean(rates) {
        println!("  {model:<10} {v:>15.0} cycles/sec");
    }
}

fn measure_and_write(out: Option<&str>) -> Result<Vec<Rate>, String> {
    let rates = measure_all()?;
    print_table(&rates);
    let describe = git_describe();
    let path = match out {
        Some(p) => resolve_path(p),
        None => repo_root().join(format!("BENCH_{describe}.json")),
    };
    std::fs::write(&path, render_json(&describe, &host_fingerprint(), &rates) + "\n")
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("\nwrote {}", path.display());
    Ok(rates)
}

/// CLI entry point shared by the bench target. Returns the process exit
/// code. Recognized usage (after cargo's own flags):
///
/// * `measure [--out FILE]` — measure and write `BENCH_<describe>.json`
///   (the default when no subcommand is given, so plain `cargo bench`
///   still records a trajectory point).
/// * `check --baseline FILE [--current FILE] [--tolerance FRAC]` —
///   measure (or load `--current`) and fail with exit code 1 when any
///   model's event-driven cycles/sec geomean regressed by more than the
///   tolerance vs the baseline file.
/// * `single MODEL KERNEL TICK` — one grid point, printed only (used to
///   validate the warm-up guard).
pub fn cli_main(argv: &[String]) -> i32 {
    // Cargo's libtest-compatible flags (`--bench`, `--exact`, ...) are
    // not ours; drop them.
    let args: Vec<&str> =
        argv.iter().map(String::as_str).filter(|a| !a.starts_with("--bench")).collect();
    let sub = args.first().copied().unwrap_or("measure");
    let flag = |name: &str| -> Option<&str> {
        args.iter().position(|a| *a == name).and_then(|i| args.get(i + 1).copied())
    };
    match sub {
        "measure" => match measure_and_write(flag("--out")) {
            Ok(_) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        "check" => {
            let Some(baseline_path) = flag("--baseline") else {
                eprintln!("error: check requires --baseline FILE");
                return 2;
            };
            let tolerance = match flag("--tolerance").map(str::parse::<f64>) {
                None => DEFAULT_TOLERANCE,
                Some(Ok(t)) => t,
                Some(Err(e)) => {
                    eprintln!("error: bad --tolerance: {e}");
                    return 2;
                }
            };
            let baseline_text = match std::fs::read_to_string(resolve_path(baseline_path))
                .map_err(|e| format!("reading {baseline_path}: {e}"))
            {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let baseline = match parse_json(&baseline_text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            // Cross-host comparisons are advisory, not gating: the rates
            // measure the (simulator, host) pair.
            if let Ok(base_host) = parse_host(&baseline_text) {
                let here = host_fingerprint();
                if base_host != here {
                    eprintln!(
                        "warning: baseline host `{base_host}` differs from this host \
                         `{here}` — absolute rates are not comparable across hosts"
                    );
                }
            }
            let current = match flag("--current") {
                Some(p) => match std::fs::read_to_string(resolve_path(p))
                    .map_err(|e| format!("reading {p}: {e}"))
                    .and_then(|t| parse_json(&t))
                {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 2;
                    }
                },
                None => match measure_and_write(None) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                },
            };
            match compare(&baseline, &current, tolerance) {
                Ok(()) => {
                    println!(
                        "perf-gate: OK (no model regressed by more than {:.0}%)",
                        tolerance * 100.0
                    );
                    0
                }
                Err(regressions) => {
                    eprintln!("perf-gate: FAIL");
                    for r in regressions {
                        eprintln!("  {r}");
                    }
                    1
                }
            }
        }
        "single" => {
            let (Some(model), Some(kernel), Some(tick)) =
                (args.get(1), args.get(2), args.get(3).copied().and_then(parse_tick))
            else {
                eprintln!("usage: single MODEL KERNEL polling|event");
                return 2;
            };
            match measure_one(model, kernel, tick) {
                Ok(r) => {
                    print_table(std::slice::from_ref(&r));
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        other => {
            eprintln!("error: unknown subcommand `{other}` (expected measure|check|single)");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(model: &str, kernel: &str, tick: &str, cps: f64) -> Rate {
        Rate {
            model: model.into(),
            kernel: kernel.into(),
            tick: tick.into(),
            cycles_per_sec: cps,
            insts_per_sec: cps / 3.0,
            reps: 5,
            retired: 10_000,
            select_visits: 12_345,
            alloc_count: 4,
        }
    }

    #[test]
    fn json_round_trips() {
        let rates = vec![
            rate("inorder", "mcf", "event", 1.5e6),
            rate("multipass", "gap", "polling", 2.0e6),
        ];
        let text = render_json("v1.2-3-gabc", "test-cpu (8 cores)", &rates);
        let back = parse_json(&text).unwrap();
        assert_eq!(back, rates);
        assert_eq!(parse_host(&text).unwrap(), "test-cpu (8 cores)");
    }

    #[test]
    fn fingerprint_is_nonempty_and_counts_cores() {
        let h = host_fingerprint();
        assert!(h.contains("cores"), "{h}");
    }

    #[test]
    fn geomean_uses_only_event_entries() {
        let rates = vec![
            rate("inorder", "mcf", "event", 1.0e6),
            rate("inorder", "gap", "event", 4.0e6),
            rate("inorder", "mcf", "polling", 9.9e9),
        ];
        let g = per_model_geomean(&rates);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].0, "inorder");
        assert!((g[0].1 - 2.0e6).abs() < 1.0, "geomean of 1M and 4M is 2M, got {}", g[0].1);
    }

    #[test]
    fn compare_flags_regressions_beyond_tolerance() {
        let baseline = vec![rate("inorder", "mcf", "event", 1.0e6)];
        // 5% slower: within the 10% tolerance.
        assert!(compare(&baseline, &[rate("inorder", "mcf", "event", 0.95e6)], 0.10).is_ok());
        // 20% slower: regression.
        let err = compare(&baseline, &[rate("inorder", "mcf", "event", 0.8e6)], 0.10).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("inorder"), "{}", err[0]);
        // Missing model: regression.
        assert!(compare(&baseline, &[], 0.10).is_err());
    }

    #[test]
    fn compare_allows_improvements() {
        let baseline = vec![rate("multipass", "art", "event", 1.0e6)];
        assert!(compare(&baseline, &[rate("multipass", "art", "event", 5.0e6)], 0.10).is_ok());
    }

    #[test]
    fn unknown_kernels_are_rejected() {
        assert!(measure_one("inorder", "nosuch", TickMode::EventDriven).is_err());
    }

    #[test]
    fn tiny_kernels_fail_the_warmup_guard_loudly() {
        use ff_isa::{Inst, MemoryImage, Op, Program};
        // A three-instruction program cannot cross any realistic warm-up
        // threshold: the guard must refuse to time it instead of
        // reporting a bogus cold-start rate.
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::Nop));
        p.push(b, Inst::new(Op::Nop));
        p.push(b, Inst::new(Op::Halt));
        let case = SimCase::new(&p, MemoryImage::new());
        let mut m = build_model("inorder", MachineConfig::itanium2_base());
        let err = steady_rate(&mut *m, &case, 100, Duration::from_millis(1)).unwrap_err();
        assert!(err.contains("warm-up threshold 100"), "{err}");
    }

    #[test]
    fn describe_is_filename_safe() {
        let d = git_describe();
        assert!(!d.is_empty());
        assert!(!d.contains('/'), "{d}");
    }
}
