//! The speculative register file (SRF) with A-bits and I-bits (paper §3.1).
//!
//! During advance mode, each instruction that produces a result writes it
//! to the SRF and sets the *A-bit* of its destination, redirecting later
//! consumers from the architectural file to the speculative one. Suppressed
//! (deferred) instructions instead set the *I-bit*, poisoning their
//! consumers. The whole structure is cleared — "all A-bits are cleared,
//! effectively clearing the SRF" — on advance restart and on rally entry.

use ff_isa::Reg;

/// A speculative register value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SrfVal {
    /// Valid result, bypassable at `ready_at`.
    Valid {
        /// The speculative value.
        value: u64,
        /// Cycle at which the value is available.
        ready_at: u64,
        /// Derived (transitively) from a data-speculative load.
        tainted: bool,
    },
    /// I-bit with a known arrival: the producer is an outstanding load whose
    /// result will be deposited in the result store at `arrives_at` (§3.5
    /// WAW policy). Consumers defer this pass, but a `RESTART` finding this
    /// state can wait for the arrival instead of churning empty passes.
    Pending {
        /// Cycle at which the producer's RS entry becomes available.
        arrives_at: u64,
    },
    /// I-bit: the producer was deferred with no known arrival; consumers
    /// must defer too.
    Invalid,
}

/// The SRF: one optional speculative value per architectural register.
/// `None` means the A-bit is clear and consumers read the architectural
/// file.
#[derive(Clone, Debug)]
pub struct Srf {
    slots: Vec<Option<SrfVal>>,
    writes: u64,
    reads: u64,
}

impl Default for Srf {
    fn default() -> Self {
        Self::new()
    }
}

impl Srf {
    /// Creates an SRF with all A-bits clear.
    pub fn new() -> Self {
        Srf { slots: vec![None; Reg::FLAT_COUNT], writes: 0, reads: 0 }
    }

    /// Writes a speculative value, setting the A-bit. Writes to hardwired
    /// registers are dropped.
    pub fn write(&mut self, r: Reg, v: SrfVal) {
        if r.is_hardwired() {
            return;
        }
        self.slots[r.flat_index()] = Some(v);
        self.writes += 1;
    }

    /// Reads the speculative slot for `r`: `None` when the A-bit is clear
    /// (consumer should read the architectural file).
    pub fn read(&mut self, r: Reg) -> Option<SrfVal> {
        if r.is_hardwired() {
            return None;
        }
        self.reads += 1;
        self.slots[r.flat_index()]
    }

    /// Non-counting probe (for trigger checks and tests).
    pub fn probe(&self, r: Reg) -> Option<SrfVal> {
        if r.is_hardwired() {
            None
        } else {
            self.slots[r.flat_index()]
        }
    }

    /// Clears every A-bit (advance restart / rally entry).
    pub fn clear(&mut self) {
        self.slots.fill(None);
    }

    /// Number of slots with their A-bit set. Outside advance mode this must
    /// be zero ("all A-bits are cleared") — audited by the SRF sentinel.
    pub fn abit_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Total SRF writes (activity for the power model).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Total SRF reads (activity for the power model).
    pub fn read_count(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abit_redirects_consumers() {
        let mut srf = Srf::new();
        assert_eq!(srf.read(Reg::int(4)), None);
        srf.write(Reg::int(4), SrfVal::Valid { value: 9, ready_at: 3, tainted: false });
        assert!(matches!(srf.read(Reg::int(4)), Some(SrfVal::Valid { value: 9, .. })));
    }

    #[test]
    fn ibit_marks_deferred() {
        let mut srf = Srf::new();
        srf.write(Reg::fp(2), SrfVal::Invalid);
        assert_eq!(srf.read(Reg::fp(2)), Some(SrfVal::Invalid));
    }

    #[test]
    fn hardwired_registers_stay_architectural() {
        let mut srf = Srf::new();
        srf.write(Reg::int(0), SrfVal::Invalid);
        assert_eq!(srf.read(Reg::int(0)), None);
        srf.write(Reg::pred(0), SrfVal::Invalid);
        assert_eq!(srf.read(Reg::pred(0)), None);
    }

    #[test]
    fn clear_drops_all_abits() {
        let mut srf = Srf::new();
        srf.write(Reg::int(1), SrfVal::Invalid);
        srf.write(Reg::pred(5), SrfVal::Valid { value: 1, ready_at: 0, tainted: true });
        srf.clear();
        assert_eq!(srf.probe(Reg::int(1)), None);
        assert_eq!(srf.probe(Reg::pred(5)), None);
    }

    #[test]
    fn activity_counters_accumulate() {
        let mut srf = Srf::new();
        srf.write(Reg::int(1), SrfVal::Invalid);
        let _ = srf.read(Reg::int(1));
        let _ = srf.read(Reg::int(2));
        assert_eq!(srf.write_count(), 1);
        assert_eq!(srf.read_count(), 2);
    }
}
