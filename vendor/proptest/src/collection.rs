//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
