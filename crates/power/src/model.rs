//! Analytic energy models for indexed arrays and CAMs.
//!
//! Units are arbitrary but consistent: a structure's *peak power* is the
//! energy of firing every port in one cycle; average power applies the
//! linear clock-gating model of [`ClockGating`].

/// Relative cost coefficients, loosely following Wattch's array
/// decomposition for a 100 nm process. Only ratios matter.
mod coef {
    /// Energy per bitline (column) driven, per row of column capacitance.
    pub const BITLINE_PER_ROW: f64 = 1.0;
    /// Energy per wordline bit driven.
    pub const WORDLINE_PER_BIT: f64 = 1.1;
    /// Decoder energy per address bit.
    pub const DECODE_PER_ADDR_BIT: f64 = 6.0;
    /// Senseamp energy per output bit.
    pub const SENSE_PER_BIT: f64 = 0.9;
    /// Per-port growth of cell geometry (extra word/bit lines per port).
    pub const PORT_GROWTH: f64 = 0.35;
    /// CAM tagline energy per entry-bit matched.
    pub const CAM_MATCH_PER_ENTRY_BIT: f64 = 0.55;
    /// CAM matchline energy per entry.
    pub const CAM_MATCHLINE_PER_ENTRY: f64 = 2.0;
}

fn port_factor(ports: f64) -> f64 {
    1.0 + coef::PORT_GROWTH * (ports - 1.0).max(0.0)
}

/// An indexed SRAM array (register file, scheduling table, queue, cache
/// tag/data array).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrayModel {
    rows: f64,
    bits: f64,
    read_ports: f64,
    write_ports: f64,
    /// Banking divides the bitline length (rows per bank).
    banks: f64,
}

impl ArrayModel {
    /// Creates an un-banked array of `rows` entries of `bits` bits with the
    /// given port counts.
    pub fn new(rows: u32, bits: u32, read_ports: u32, write_ports: u32) -> Self {
        ArrayModel {
            rows: rows as f64,
            bits: bits as f64,
            read_ports: read_ports as f64,
            write_ports: write_ports as f64,
            banks: 1.0,
        }
    }

    /// Banked variant: bitlines span `rows / banks` cells.
    pub fn banked(rows: u32, bits: u32, read_ports: u32, write_ports: u32, banks: u32) -> Self {
        assert!(banks >= 1);
        ArrayModel { banks: banks as f64, ..Self::new(rows, bits, read_ports, write_ports) }
    }

    /// Total ports.
    pub fn ports(&self) -> f64 {
        self.read_ports + self.write_ports
    }

    /// Energy of one access through one port.
    pub fn access_energy(&self) -> f64 {
        let pf = port_factor(self.ports());
        let rows_per_bank = self.rows / self.banks;
        let decode = coef::DECODE_PER_ADDR_BIT * (self.rows.max(2.0)).log2();
        let wordline = coef::WORDLINE_PER_BIT * self.bits * pf;
        let bitline = coef::BITLINE_PER_ROW * rows_per_bank * pf * (self.bits / 32.0).max(0.25);
        let sense = coef::SENSE_PER_BIT * self.bits;
        decode + wordline + bitline + sense
    }

    /// Peak power: every port fires each cycle.
    pub fn peak_power(&self) -> f64 {
        self.access_energy() * self.ports()
    }
}

/// A content-addressable memory (load/store queue, CAM scheduler): every
/// access reads out and matches the entire contents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CamModel {
    entries: f64,
    tag_bits: f64,
    read_ports: f64,
    write_ports: f64,
}

impl CamModel {
    /// Creates a CAM of `entries` × `tag_bits` with the given port counts.
    pub fn new(entries: u32, tag_bits: u32, read_ports: u32, write_ports: u32) -> Self {
        CamModel {
            entries: entries as f64,
            tag_bits: tag_bits as f64,
            read_ports: read_ports as f64,
            write_ports: write_ports as f64,
        }
    }

    /// Total ports.
    pub fn ports(&self) -> f64 {
        self.read_ports + self.write_ports
    }

    /// Energy of one search/insert through one port: taglines across every
    /// entry-bit plus matchlines across every entry.
    pub fn access_energy(&self) -> f64 {
        let pf = port_factor(self.ports());
        let taglines = coef::CAM_MATCH_PER_ENTRY_BIT * self.entries * self.tag_bits * pf;
        let matchlines = coef::CAM_MATCHLINE_PER_ENTRY * self.entries;
        taglines + matchlines
    }

    /// Peak power: every port searches each cycle.
    pub fn peak_power(&self) -> f64 {
        self.access_energy() * self.ports()
    }
}

/// A wired-OR dependence matrix (the paper's wakeup structure:
/// "wired-OR resource dependence matrix: 128 entries, 329 bits"). Each
/// broadcast drives one wire across every entry-bit — cheaper per bit than
/// a full CAM compare, but the whole matrix toggles on every broadcast.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatrixModel {
    entries: f64,
    bits: f64,
    broadcasts: f64,
}

impl MatrixModel {
    /// Creates a matrix of `entries` × `bits` receiving up to `broadcasts`
    /// result broadcasts per cycle.
    pub fn new(entries: u32, bits: u32, broadcasts: u32) -> Self {
        MatrixModel { entries: entries as f64, bits: bits as f64, broadcasts: broadcasts as f64 }
    }

    /// Broadcast ports.
    pub fn ports(&self) -> f64 {
        self.broadcasts
    }

    /// Energy of one broadcast.
    pub fn access_energy(&self) -> f64 {
        0.5 * self.entries * self.bits
    }

    /// Peak power: every broadcast port fires each cycle.
    pub fn peak_power(&self) -> f64 {
        self.access_energy() * self.broadcasts
    }
}

/// Wattch's linear clock-gating model ("cc3"-style): an idle structure
/// still burns a fixed fraction of its peak power.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClockGating {
    /// Fraction of peak power consumed when fully idle.
    pub idle_fraction: f64,
}

impl Default for ClockGating {
    fn default() -> Self {
        ClockGating { idle_fraction: 0.10 }
    }
}

impl ClockGating {
    /// Average power of a structure with `peak` power, `ports` ports, and
    /// `accesses_per_cycle` measured activity.
    pub fn average(&self, peak: f64, ports: f64, accesses_per_cycle: f64) -> f64 {
        let af = (accesses_per_cycle / ports).clamp(0.0, 1.0);
        peak * (self.idle_fraction + (1.0 - self.idle_fraction) * af)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_ports_cost_more() {
        let small = ArrayModel::new(128, 33, 2, 2);
        let big = ArrayModel::new(128, 33, 12, 8);
        assert!(big.peak_power() > 3.0 * small.peak_power());
    }

    #[test]
    fn banking_reduces_access_energy() {
        let flat = ArrayModel::new(256, 41, 2, 2);
        let banked = ArrayModel::banked(256, 41, 2, 2, 2);
        assert!(banked.access_energy() < flat.access_energy());
        assert!(banked.access_energy() > 0.4 * flat.access_energy());
    }

    #[test]
    fn cam_dominates_equivalent_array() {
        let a = ArrayModel::new(48, 33, 2, 2);
        let c = CamModel::new(48, 33, 2, 2);
        assert!(c.peak_power() > 2.0 * a.peak_power());
    }

    #[test]
    fn cam_scales_with_entries() {
        let small = CamModel::new(32, 33, 2, 2);
        let big = CamModel::new(128, 33, 2, 2);
        assert!(big.access_energy() > 3.5 * small.access_energy());
    }

    #[test]
    fn clock_gating_interpolates() {
        let cg = ClockGating::default();
        let idle = cg.average(100.0, 4.0, 0.0);
        let busy = cg.average(100.0, 4.0, 4.0);
        let half = cg.average(100.0, 4.0, 2.0);
        assert!((idle - 10.0).abs() < 1e-9);
        assert!((busy - 100.0).abs() < 1e-9);
        assert!(idle < half && half < busy);
    }

    #[test]
    fn activity_clamps_at_port_limit() {
        let cg = ClockGating::default();
        assert_eq!(cg.average(100.0, 2.0, 10.0), cg.average(100.0, 2.0, 2.0));
    }
}
