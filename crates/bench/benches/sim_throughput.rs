//! Criterion micro-benchmarks of the simulator core: cycles simulated per
//! second for each execution model on a fixed small workload.

use criterion::{criterion_group, criterion_main, Criterion};

use ff_baselines::{InOrder, OutOfOrder, Runahead};
use ff_engine::{ExecutionModel, MachineConfig, SimCase};
use ff_multipass::Multipass;
use ff_workloads::{Scale, Workload};

fn bench_models(c: &mut Criterion) {
    let w = Workload::by_name("gap", Scale::Test).expect("gap exists");
    let machine = MachineConfig::itanium2_base();
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);

    group.bench_function("inorder/gap", |b| {
        b.iter(|| {
            let case = SimCase::new(&w.program, w.mem.clone());
            InOrder::new(machine).run(&case).stats.cycles
        })
    });
    group.bench_function("runahead/gap", |b| {
        b.iter(|| {
            let case = SimCase::new(&w.program, w.mem.clone());
            Runahead::new(machine).run(&case).stats.cycles
        })
    });
    group.bench_function("ooo/gap", |b| {
        b.iter(|| {
            let case = SimCase::new(&w.program, w.mem.clone());
            OutOfOrder::new(machine).run(&case).stats.cycles
        })
    });
    group.bench_function("multipass/gap", |b| {
        b.iter(|| {
            let case = SimCase::new(&w.program, w.mem.clone());
            Multipass::new(machine).run(&case).stats.cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
