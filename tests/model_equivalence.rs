//! Cross-model architectural equivalence: every execution model must
//! finish every workload in a final state semantically identical to the
//! golden interpreter's. This is the repository's primary correctness
//! oracle — the timing models are also functional interpreters.

use flea_flicker::baselines::{InOrder, OutOfOrder, Runahead};
use flea_flicker::engine::{ExecutionModel, MachineConfig, SimCase};
use flea_flicker::isa::interp::Interpreter;
use flea_flicker::isa::ArchState;
use flea_flicker::multipass::{Multipass, MultipassConfig};
use flea_flicker::workloads::{Scale, Workload};

fn interpreter_state(w: &Workload) -> (ArchState, u64) {
    let mut s = ArchState::new();
    s.mem = w.mem.clone();
    let mut i = Interpreter::with_state(&w.program, s);
    i.run(50_000_000).expect("workload must be valid");
    assert!(i.is_halted(), "{} did not halt", w.name);
    let retired = i.retired();
    (i.into_state(), retired)
}

fn models(machine: MachineConfig) -> Vec<(&'static str, Box<dyn ExecutionModel>)> {
    vec![
        ("inorder", Box::new(InOrder::new(machine))),
        ("runahead", Box::new(Runahead::new(machine))),
        ("ooo", Box::new(OutOfOrder::new(machine))),
        ("ooo-realistic", Box::new(OutOfOrder::realistic(machine))),
        ("multipass", Box::new(Multipass::new(machine))),
        (
            "multipass-noregroup",
            Box::new(Multipass::with_config(MultipassConfig::without_regrouping(machine))),
        ),
        (
            "multipass-norestart",
            Box::new(Multipass::with_config(MultipassConfig::without_restart(machine))),
        ),
    ]
}

#[test]
fn every_model_matches_the_interpreter_on_every_workload() {
    let machine = MachineConfig::itanium2_base();
    for w in Workload::all(Scale::Test) {
        let (golden, retired) = interpreter_state(&w);
        let case = SimCase::new(&w.program, w.mem.clone());
        for (name, mut model) in models(machine) {
            let r = model.run(&case);
            assert!(
                r.final_state.semantically_eq(&golden),
                "{name} diverges from the interpreter on {}\n{}",
                w.name,
                flea_flicker::debug::compare_model(&mut *model, &case)
            );
            assert_eq!(
                r.stats.retired, retired,
                "{name} retired a different dynamic instruction count on {}",
                w.name
            );
            assert_eq!(
                r.stats.breakdown.total(),
                r.stats.cycles,
                "{name} mis-attributes cycles on {}",
                w.name
            );
        }
    }
}

#[test]
fn models_are_deterministic() {
    let machine = MachineConfig::itanium2_base();
    let w = Workload::by_name("bzip2", Scale::Test).unwrap();
    let case = SimCase::new(&w.program, w.mem.clone());
    for (name, mut model) in models(machine) {
        let a = model.run(&case);
        let b = model.run(&case);
        // Bit-for-bit: every counter of two identical runs must agree.
        assert_eq!(a.stats, b.stats, "{name} is nondeterministic");
        assert!(a.final_state.semantically_eq(&b.final_state), "{name} state varies");
    }
}

#[test]
fn alternative_hierarchies_preserve_semantics() {
    use flea_flicker::mem::HierarchyConfig;
    let w = Workload::by_name("vortex", Scale::Test).unwrap();
    let (golden, _) = interpreter_state(&w);
    for h in HierarchyConfig::figure7_sweep() {
        let machine = MachineConfig::itanium2_base().with_hierarchy(h);
        let case = SimCase::new(&w.program, w.mem.clone());
        for (name, mut model) in models(machine) {
            let r = model.run(&case);
            assert!(
                r.final_state.semantically_eq(&golden),
                "{name} diverges under hierarchy {}",
                h.name
            );
        }
    }
}
