//! Campaign execution: plan expansion, checkpointed parallel running,
//! retries, the per-job watchdog, and graceful degradation — panics are
//! isolated at the job boundary, failures are classified into the
//! [`JobError`] taxonomy, repeat offenders are quarantined, and every
//! terminal failure leaves a replayable [`CrashBundle`].

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ff_engine::{RetireRing, TickMode};
use ff_experiments::{reports, HierKind, ModelKind, Suite};
use ff_workloads::{Scale, Workload};

use crate::artifact::{render_report_artifact, render_sim_artifact, verify_header};
use crate::bundle::{CrashBundle, BUNDLE_RETIREMENTS};
use crate::error::{JobError, JobErrorKind};
use crate::integrity::{self, ReadError};
use crate::job::{JobKind, JobSpec, REPORT_NAMES};
use crate::json::Json;
use crate::pool::run_jobs;
use crate::quarantine::Quarantine;
use crate::store::{find_artifact, sweep_tmp, write_artifact};

/// Extra seeds (beyond the canonical seed 0) the full campaign runs for
/// the seed-sensitivity study, on the models it compares.
pub const SENSITIVITY_SEEDS: [u64; 3] = [1, 2, 3];

/// The models the seed-sensitivity study compares.
pub const SENSITIVITY_MODELS: [ModelKind; 2] = [ModelKind::InOrder, ModelKind::Multipass];

/// How a campaign run treats one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Executed this run and wrote its artifact.
    Ok,
    /// Skipped: a valid artifact with a matching config hash already
    /// existed (checkpoint/resume, or an `ff-server` memoization hit).
    Cached,
    /// All attempts failed; no artifact written.
    Failed,
    /// Skipped without running: the quarantine ledger shows this config
    /// hash failing in `--quarantine-after` consecutive prior runs.
    Quarantined,
    /// Not yet executed. Batch campaigns never report this; it appears in
    /// the checkpoint manifests `ff-server` writes at graceful shutdown
    /// for jobs still queued or running.
    Pending,
}

impl JobStatus {
    /// Lower-case status name (manifest field).
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Cached => "cached",
            JobStatus::Failed => "failed",
            JobStatus::Quarantined => "quarantined",
            JobStatus::Pending => "pending",
        }
    }
}

/// The record of one job after a campaign run.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job.
    pub spec: JobSpec,
    /// How it ended.
    pub status: JobStatus,
    /// The last classified error, for failed or quarantined jobs.
    pub error: Option<JobError>,
    /// Wall time spent executing (0 for cached jobs).
    pub wall_ms: u64,
    /// Attempts made (0 for cached or quarantined jobs).
    pub attempts: u32,
}

/// The result of one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Per-job outcomes, in plan order.
    pub outcomes: Vec<JobOutcome>,
    /// Total wall time of the run in seconds.
    pub wall_s: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Workload scale.
    pub scale: Scale,
}

impl CampaignReport {
    /// Jobs executed this run.
    pub fn ok(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == JobStatus::Ok).count()
    }

    /// Jobs skipped because their artifact was already checkpointed.
    pub fn cached(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == JobStatus::Cached).count()
    }

    /// Jobs that exhausted their attempts.
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == JobStatus::Failed).count()
    }

    /// Jobs skipped by the quarantine ledger.
    pub fn quarantined(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == JobStatus::Quarantined).count()
    }

    /// The failed outcomes.
    pub fn failures(&self) -> Vec<&JobOutcome> {
        self.outcomes.iter().filter(|o| o.status == JobStatus::Failed).collect()
    }

    /// The quarantined outcomes.
    pub fn quarantined_jobs(&self) -> Vec<&JobOutcome> {
        self.outcomes.iter().filter(|o| o.status == JobStatus::Quarantined).collect()
    }
}

/// Deterministic fault injection for the checkpoint/resume and
/// panic-isolation tests: every job whose id contains `id_substring`
/// fails its first `times` attempts, by error return or by panic.
#[derive(Clone, Debug, Default)]
pub struct FailureInjection {
    /// Substring of [`JobSpec::id`] selecting the victim jobs.
    pub id_substring: String,
    /// Attempts to fail before succeeding.
    pub times: u32,
    /// Fail by panicking inside the compute closure instead of returning
    /// an error, to exercise the panic-isolation path.
    pub panic: bool,
}

/// The execution-affecting knobs of one job attempt — everything that
/// changes *how* a simulation runs but not *what* it computes. Shared by
/// the batch runner ([`run_campaign`]) and the `ff-server` workers, so a
/// served artifact is byte-identical to a CLI-produced one by
/// construction: both call [`attempt_job`] with the same `ExecOptions`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Per-job watchdog: abort a simulation after this many cycles and
    /// mark it `failed: timeout` instead of hanging the campaign.
    pub cycle_budget: Option<u64>,
    /// Run every simulation under the full `ff-sentinel` invariant
    /// checker set; a violation fails the job as `invariant-violation`.
    pub sentinels: bool,
    /// How models advance simulated time. Both modes produce
    /// byte-identical artifacts; polling exists as the reference
    /// semantics for cross-checking the event-driven fast path.
    pub tick: TickMode,
}

/// Options for one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Workload scale.
    pub scale: Scale,
    /// Worker threads (`--jobs`).
    pub workers: usize,
    /// Attempts per job (>= 1).
    pub attempts: u32,
    /// Per-job watchdog: abort a simulation after this many cycles and
    /// mark it `failed: timeout` instead of hanging the campaign.
    pub cycle_budget: Option<u64>,
    /// Artifact directory.
    pub out_dir: PathBuf,
    /// Re-run jobs even when a valid artifact exists; also bypasses the
    /// quarantine ledger so a fixed config gets its retrial.
    pub force: bool,
    /// Emit live progress/ETA lines on stderr.
    pub progress: bool,
    /// Run every simulation under the full `ff-sentinel` invariant
    /// checker set; a violation fails the job as `invariant-violation`.
    pub sentinels: bool,
    /// Skip jobs that failed this many consecutive prior runs
    /// (`--quarantine-after N`). `None` disables the ledger entirely.
    pub quarantine_after: Option<u32>,
    /// How models advance simulated time (`--tick`). Both modes produce
    /// byte-identical artifacts; polling exists as the reference
    /// semantics for cross-checking the event-driven fast path.
    pub tick: TickMode,
    /// Test-only fault injection.
    pub inject: Option<FailureInjection>,
}

impl CampaignOptions {
    /// Sensible defaults for `scale` writing into `out_dir`.
    pub fn new(scale: Scale, out_dir: impl Into<PathBuf>) -> Self {
        CampaignOptions {
            scale,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            attempts: 1,
            cycle_budget: None,
            out_dir: out_dir.into(),
            force: false,
            progress: false,
            sentinels: false,
            quarantine_after: None,
            tick: TickMode::default(),
            inject: None,
        }
    }

    /// The execution-affecting subset of these options.
    pub fn exec(&self) -> ExecOptions {
        ExecOptions { cycle_budget: self.cycle_budget, sentinels: self.sentinels, tick: self.tick }
    }
}

/// Expands the full `run --all` plan for `scale`: the complete
/// (model × hierarchy × benchmark) grid at seed 0, the extra
/// seed-sensitivity points, and the standalone report jobs — everything
/// needed to regenerate every file under `results/`.
pub fn full_grid(scale: Scale) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    // The report jobs are by far the longest (each runs its own config
    // sweep); scheduling them first lets them overlap the whole grid
    // instead of serializing at the tail of the campaign.
    for name in REPORT_NAMES {
        jobs.push(JobSpec::report(name, scale));
    }
    for model in ModelKind::ALL {
        for hier in HierKind::ALL {
            for bench in Workload::NAMES {
                jobs.push(JobSpec::sim(model, hier, bench, 0, scale));
            }
        }
    }
    for seed in SENSITIVITY_SEEDS {
        for model in SENSITIVITY_MODELS {
            for bench in Workload::NAMES {
                jobs.push(JobSpec::sim(model, HierKind::Base, bench, seed, scale));
            }
        }
    }
    jobs
}

/// A sim-grid filter (`--filter model=MP bench=mcf`). Empty lists match
/// everything; report jobs pass only an unconstrained filter.
#[derive(Clone, Debug, Default)]
pub struct JobFilter {
    /// Models to keep.
    pub models: Vec<ModelKind>,
    /// Hierarchies to keep.
    pub hiers: Vec<HierKind>,
    /// Benchmarks to keep.
    pub benches: Vec<String>,
    /// Seeds to keep.
    pub seeds: Vec<u64>,
}

impl JobFilter {
    /// Whether any constraint is set.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
            && self.hiers.is_empty()
            && self.benches.is_empty()
            && self.seeds.is_empty()
    }

    /// Whether `spec` passes the filter.
    pub fn matches(&self, spec: &JobSpec) -> bool {
        match &spec.kind {
            JobKind::Sim { model, hier, bench, seed } => {
                (self.models.is_empty() || self.models.contains(model))
                    && (self.hiers.is_empty() || self.hiers.contains(hier))
                    && (self.benches.is_empty() || self.benches.iter().any(|b| b == bench))
                    && (self.seeds.is_empty() || self.seeds.contains(seed))
            }
            // Reports aggregate the whole suite; they only run unfiltered.
            JobKind::Report { .. } => self.is_empty(),
        }
    }
}

/// Per-worker state: a lazily generated workload cache, so a worker
/// generates each (bench, seed) workload once no matter how many grid
/// points reuse it. Public so `ff-server` workers thread one through
/// [`attempt_job`] exactly like the batch pool does.
pub struct JobContext {
    workloads: BTreeMap<(&'static str, u64), Workload>,
}

impl JobContext {
    /// An empty per-worker context.
    pub fn new() -> Self {
        JobContext { workloads: BTreeMap::new() }
    }
}

impl Default for JobContext {
    fn default() -> Self {
        Self::new()
    }
}

/// What one attempt leaves behind for the crash-bundle writer: the
/// trailing retirements and any sentinel violations. Reset per attempt so
/// a bundle only ever describes the final, failing attempt.
struct AttemptDebris {
    ring: RetireRing,
    violations: Vec<String>,
}

impl AttemptDebris {
    fn new() -> Self {
        AttemptDebris { ring: RetireRing::new(BUNDLE_RETIREMENTS), violations: Vec::new() }
    }
}

/// The record of one panic-isolated job attempt: the rendered artifact on
/// success, a classified [`JobError`] otherwise, plus the crash-bundle
/// debris (trailing retirements, sentinel violations) of the attempt.
pub struct Attempt {
    /// The rendered artifact text, or the classified failure.
    pub result: Result<String, JobError>,
    debris: AttemptDebris,
}

impl Attempt {
    /// An attempt carrying `result` and no crash-bundle debris, for
    /// injected executors (scheduler tests, latched fakes) that bypass
    /// [`attempt_job`].
    pub fn synthetic(result: Result<String, JobError>) -> Attempt {
        Attempt { result, debris: AttemptDebris::new() }
    }

    /// Writes a replayable crash bundle under `out_dir/bundles/` when this
    /// attempt failed with a cause worth replaying (anything the
    /// simulation itself produced; transient `Other` errors have nothing
    /// to replay). Returns the bundle path if one was written.
    pub fn write_crash_bundle(
        &self,
        out_dir: &Path,
        spec: &JobSpec,
        cycle_budget: Option<u64>,
    ) -> Option<PathBuf> {
        let err = self.result.as_ref().err()?;
        if err.kind == JobErrorKind::Other {
            return None;
        }
        let bundle = CrashBundle::for_failure(
            spec,
            cycle_budget,
            err,
            &self.debris.violations,
            &self.debris.ring,
        )?;
        match bundle.write(out_dir) {
            Ok(path) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write crash bundle for {}: {e}", spec.id());
                None
            }
        }
    }
}

fn compute_artifact(
    state: &mut JobContext,
    spec: &JobSpec,
    exec: &ExecOptions,
    debris: &mut AttemptDebris,
) -> Result<String, JobError> {
    match &spec.kind {
        JobKind::Sim { model, hier, bench, seed } => {
            let scale = spec.scale;
            let w = state.workloads.entry((bench, *seed)).or_insert_with(|| {
                Workload::by_name_seeded(bench, scale, *seed).expect("plan uses known benchmarks")
            });
            let mut case = ff_engine::SimCase::new(&w.program, w.mem.clone());
            if let Some(budget) = exec.cycle_budget {
                case = case.with_cycle_budget(budget);
            }
            let mut m = Suite::build_model(*model, *hier);
            m.set_tick_mode(exec.tick);
            let outcome = if exec.sentinels {
                let report = ff_sentinel::check_model_hooked(m.as_mut(), &case, &mut debris.ring);
                if !report.violations.is_empty() {
                    debris.violations = report.violations.iter().map(|v| v.to_string()).collect();
                    let first = &report.violations[0];
                    let extra = report.violations.len() - 1;
                    let msg = if extra == 0 {
                        first.to_string()
                    } else {
                        format!("{first} (+{extra} more)")
                    };
                    return Err(JobError::invariant(msg));
                }
                report.outcome
            } else {
                m.try_run_hooked(&case, &mut debris.ring)
            };
            match outcome {
                Ok(result) => Ok(render_sim_artifact(spec, &result)),
                Err(e) => Err(JobError::timeout(e.to_string())),
            }
        }
        JobKind::Report { name } => {
            let text = match *name {
                "ablation_structures" => reports::ablation_structures(spec.scale),
                "unroll_effect" => reports::unroll_effect(),
                other => return Err(JobError::other(format!("unknown report job `{other}`"))),
            };
            Ok(render_report_artifact(spec, &text))
        }
    }
}

/// Whether a valid, hash-matching artifact for `spec` already exists
/// (sharded layout or legacy flat fallback). Integrity-checked: a file
/// that fails its checksum footer is moved to the `corrupt/` ledger and
/// reads as absent, so the resume path transparently re-simulates it.
pub fn artifact_is_current(out_dir: &Path, spec: &JobSpec) -> bool {
    let Some(path) = find_artifact(out_dir, spec) else { return false };
    let text = match integrity::read_verified(&path) {
        Ok((payload, _)) => payload,
        Err(ReadError::Io(_)) => return false,
        Err(ReadError::Corrupt(reason)) => {
            let _ = integrity::quarantine_corrupt(out_dir, &path, &reason);
            return false;
        }
    };
    let Ok(doc) = Json::parse(&text) else { return false };
    verify_header(spec, &doc).is_ok()
}

/// One panic-isolated attempt at `spec`: the single code path every
/// simulation in the repo funnels through, whether scheduled by the
/// `ff-campaign` batch pool or an `ff-server` worker. A panic inside the
/// compute closure is caught here and classified as
/// [`JobErrorKind::Panic`]; the caller's thread never unwinds.
///
/// `inject` carries the test-only fault injection together with the
/// 1-based attempt number (the injection fails the first
/// [`FailureInjection::times`] attempts).
pub fn attempt_job(
    state: &mut JobContext,
    spec: &JobSpec,
    exec: &ExecOptions,
    inject: Option<(&FailureInjection, u32)>,
) -> Attempt {
    let mut debris = AttemptDebris::new();
    let result = catch_unwind(AssertUnwindSafe(|| {
        // The injection lives inside the unwind boundary so injected
        // panics exercise the same isolation path as real ones.
        if let Some((f, attempt)) = inject {
            if spec.id().contains(&f.id_substring) && attempt <= f.times {
                if f.panic {
                    panic!("injected panic (attempt {attempt})");
                }
                return Err(JobError::other(format!("injected failure (attempt {attempt})")));
            }
        }
        compute_artifact(state, spec, exec, &mut debris)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string());
        Err(JobError::panic(msg))
    });
    Attempt { result, debris }
}

fn run_one(opts: &CampaignOptions, state: &mut JobContext, spec: &JobSpec) -> JobOutcome {
    if !opts.force && artifact_is_current(&opts.out_dir, spec) {
        return JobOutcome {
            spec: spec.clone(),
            status: JobStatus::Cached,
            error: None,
            wall_ms: 0,
            attempts: 0,
        };
    }
    let started = Instant::now();
    let exec = opts.exec();
    let mut last = None;
    let mut attempts = 0;
    while attempts < opts.attempts.max(1) {
        attempts += 1;
        let attempt = attempt_job(state, spec, &exec, opts.inject.as_ref().map(|f| (f, attempts)));
        match attempt.result {
            Ok(ref artifact) => {
                if let Err(e) = write_artifact(&opts.out_dir, spec, artifact) {
                    last = Some(Attempt {
                        result: Err(JobError::other(format!("write artifact: {e}"))),
                        debris: AttemptDebris::new(),
                    });
                    continue;
                }
                return JobOutcome {
                    spec: spec.clone(),
                    status: JobStatus::Ok,
                    error: None,
                    wall_ms: started.elapsed().as_millis() as u64,
                    attempts,
                };
            }
            Err(_) => last = Some(attempt),
        }
    }
    let last = last.expect("at least one attempt was made");
    // Terminal failure: leave a replayable crash bundle for any cause the
    // simulation itself produced (a transient injected `Other` from the
    // resume tests has nothing worth replaying).
    last.write_crash_bundle(&opts.out_dir, spec, opts.cycle_budget);
    let last_err = last.result.expect_err("terminal attempt failed");
    JobOutcome {
        spec: spec.clone(),
        status: JobStatus::Failed,
        error: Some(last_err),
        wall_ms: started.elapsed().as_millis() as u64,
        attempts,
    }
}

fn eta_secs(done: usize, total: usize, elapsed_s: f64) -> f64 {
    if done == 0 {
        0.0
    } else {
        elapsed_s / done as f64 * (total - done) as f64
    }
}

/// Runs `jobs` under `opts`: checkpoint skip, retries, watchdog, panic
/// isolation, quarantine, live progress, artifact writes. The manifest is
/// written separately by [`crate::manifest::write_manifest`] so callers
/// can stamp run metadata.
///
/// # Errors
///
/// Only on failure to create the artifact directory; per-job failures are
/// reported in the returned [`CampaignReport`].
pub fn run_campaign(jobs: &[JobSpec], opts: &CampaignOptions) -> std::io::Result<CampaignReport> {
    std::fs::create_dir_all(&opts.out_dir)?;
    // Crashed (or chaos-killed) writers leave orphaned `.tmp-*` files;
    // sweep them before the run so they can't accumulate forever.
    match sweep_tmp(&opts.out_dir) {
        Ok(0) | Err(_) => {}
        Ok(swept) => {
            eprintln!("swept {swept} orphaned .tmp file(s) from {}", opts.out_dir.display());
        }
    }
    let started = Instant::now();
    let done = AtomicUsize::new(0);
    let total = jobs.len();
    // The quarantine decision is a pre-run snapshot: whether a job runs
    // depends only on prior campaigns, never on sibling jobs racing in
    // this one, so parallel and serial runs behave identically.
    let ledger = opts.quarantine_after.map(|_| Quarantine::load(&opts.out_dir));
    let blocked: Vec<bool> = jobs
        .iter()
        .map(|spec| match (&ledger, opts.quarantine_after) {
            (Some(q), Some(threshold)) => !opts.force && q.blocks(spec, threshold),
            _ => false,
        })
        .collect();
    let raw = run_jobs(
        jobs,
        opts.workers,
        |_wid| JobContext::new(),
        |state, i, spec| {
            let outcome = if blocked[i] {
                let strikes = ledger.as_ref().map_or(0, |q| q.strikes(spec));
                JobOutcome {
                    spec: spec.clone(),
                    status: JobStatus::Quarantined,
                    error: Some(JobError::other(format!(
                        "quarantined after {strikes} consecutive failed runs (--force to retry)"
                    ))),
                    wall_ms: 0,
                    attempts: 0,
                }
            } else {
                run_one(opts, state, spec)
            };
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            if opts.progress {
                let elapsed = started.elapsed().as_secs_f64();
                eprintln!(
                    "[{n}/{total}] {} {} {}ms eta {:.0}s",
                    outcome.spec.id(),
                    outcome.status.name(),
                    outcome.wall_ms,
                    eta_secs(n, total, elapsed),
                );
            }
            outcome
        },
    );
    // A worker dying outside the per-job unwind boundary still yields a
    // classified outcome instead of aborting the whole campaign.
    let outcomes: Vec<JobOutcome> = raw
        .into_iter()
        .zip(jobs)
        .map(|(slot, spec)| {
            slot.unwrap_or_else(|| JobOutcome {
                spec: spec.clone(),
                status: JobStatus::Failed,
                error: Some(JobError::panic("worker thread crashed outside the job boundary")),
                wall_ms: 0,
                attempts: 0,
            })
        })
        .collect();
    if let (Some(mut q), Some(_)) = (ledger, opts.quarantine_after) {
        for o in &outcomes {
            match o.status {
                JobStatus::Failed => q.record(&o.spec, true),
                JobStatus::Ok | JobStatus::Cached => q.record(&o.spec, false),
                JobStatus::Quarantined | JobStatus::Pending => {}
            }
        }
        if let Err(e) = q.save(&opts.out_dir) {
            eprintln!("warning: could not save quarantine ledger: {e}");
        }
    }
    Ok(CampaignReport {
        outcomes,
        wall_s: started.elapsed().as_secs_f64(),
        workers: opts.workers,
        scale: opts.scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_covers_every_results_file_input() {
        let jobs = full_grid(Scale::Test);
        // 7 models × 3 hierarchies × 12 benches + 3 seeds × 2 models × 12
        // benches + 2 reports.
        assert_eq!(jobs.len(), 7 * 3 * 12 + 3 * 2 * 12 + 2);
        let ids: std::collections::BTreeSet<String> = jobs.iter().map(|j| j.id()).collect();
        assert_eq!(ids.len(), jobs.len(), "plan has duplicate jobs");
        assert!(ids.contains("mcf/MP/base/s0@test"));
        assert!(ids.contains("gzip/inorder/base/s3@test"));
        assert!(ids.contains("report/ablation_structures@test"));
    }

    #[test]
    fn filter_selects_sim_subsets_and_drops_reports() {
        let f = JobFilter {
            models: vec![ModelKind::Multipass],
            benches: vec!["mcf".into()],
            ..JobFilter::default()
        };
        let kept: Vec<JobSpec> =
            full_grid(Scale::Test).into_iter().filter(|j| f.matches(j)).collect();
        // MP × mcf: 3 hierarchies at seed 0 + 3 sensitivity seeds at base.
        assert_eq!(kept.len(), 3 + 3);
        assert!(kept.iter().all(|j| !matches!(j.kind, JobKind::Report { .. })));
        let unfiltered = JobFilter::default();
        assert!(full_grid(Scale::Test).iter().all(|j| unfiltered.matches(j)));
    }

    #[test]
    fn eta_interpolates_linearly() {
        assert_eq!(eta_secs(0, 10, 5.0), 0.0);
        assert!((eta_secs(5, 10, 5.0) - 5.0).abs() < 1e-12);
        assert_eq!(eta_secs(10, 10, 7.0), 0.0);
    }
}
