//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate implements the subset of the `criterion 0.5` API the
//! workspace's `sim_throughput` bench uses: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing uses `std::time::Instant`; each
//! `bench_function` reports min/mean/max wall time per iteration over the
//! configured sample count.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup { sample_size: self.sample_size, _criterion: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(samples), per_sample: samples };
    f(&mut bencher);
    let times = &bencher.samples;
    if times.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().unwrap();
    let max = times.iter().max().unwrap();
    println!("  {id}: mean {:?}  min {:?}  max {:?}  ({} samples)", mean, min, max, times.len());
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Times `routine` once per sample; the routine's return value is
    /// black-boxed so the work is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.per_sample {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            black_box(out);
        }
    }
}

/// Mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
