//! The execution-model interface shared by every pipeline.

use std::fmt;

use ff_isa::{ArchState, MemoryImage, Program};
use ff_mem::MemStats;

use crate::activity::Activity;
use crate::probe::{PipelineProbe, RetireTee};
use crate::retire::{NullRetireHook, RetireHook};
use crate::stats::RunStats;

/// One simulation input: a compiled program plus its initial data memory.
///
/// Initial register values are established by setup code in the program's
/// first blocks (the workload generators emit `MovImm` preludes); bulk data
/// (arrays, linked structures) comes pre-loaded in `initial_mem`.
#[derive(Clone, Debug)]
pub struct SimCase<'a> {
    /// The compiled program to run.
    pub program: &'a Program,
    /// Initial contents of data memory.
    pub initial_mem: MemoryImage,
    /// Safety cap on dynamic instructions (guards runaway programs).
    pub max_insts: u64,
    /// Optional per-run cycle watchdog. When set, models abandon the run
    /// with [`RunError::CycleBudgetExceeded`] once this many cycles have
    /// been simulated, instead of panicking at the machine-wide
    /// `max_cycles` cap. Campaign runners use this to time out wedged
    /// jobs without taking down the whole campaign.
    pub cycle_budget: Option<u64>,
}

impl<'a> SimCase<'a> {
    /// Creates a case with a default instruction budget.
    pub fn new(program: &'a Program, initial_mem: MemoryImage) -> Self {
        SimCase { program, initial_mem, max_insts: 200_000_000, cycle_budget: None }
    }

    /// Sets a cycle watchdog budget (see [`SimCase::cycle_budget`]).
    pub fn with_cycle_budget(mut self, budget: u64) -> Self {
        self.cycle_budget = Some(budget);
        self
    }

    /// The effective cycle cap for a machine whose configured hard limit
    /// is `machine_max`: the smaller of the watchdog budget and the
    /// machine cap.
    pub fn cycle_cap(&self, machine_max: u64) -> u64 {
        match self.cycle_budget {
            Some(b) => b.min(machine_max),
            None => machine_max,
        }
    }

    /// The initial architectural state implied by this case.
    pub fn initial_state(&self) -> ArchState {
        let mut s = ArchState::new();
        s.mem = self.initial_mem.clone();
        s
    }
}

/// Why a simulation run was abandoned before the program halted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The run hit its effective cycle cap (the case's watchdog budget or
    /// the machine's `max_cycles`, whichever is smaller) before halting.
    CycleBudgetExceeded {
        /// The cap that was hit.
        limit: u64,
        /// Instructions retired when the run was abandoned.
        retired: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::CycleBudgetExceeded { limit, retired } => {
                write!(f, "cycle budget exceeded: {limit} cycles simulated, {retired} retired")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// How a model advances simulated time.
///
/// Both modes are required to produce bit-for-bit identical results —
/// the same [`RunResult`], retirement stream, and probe observation
/// stream. The event-driven mode is purely a simulator-throughput
/// optimization: it fast-forwards *quiescent* stretches (cycles proven to
/// have no observable work beyond charging a stall cycle) to the next
/// registered wake event instead of ticking them one by one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TickMode {
    /// Tick every structure every cycle — the reference semantics.
    Polling,
    /// Fast-forward quiescent stall windows to the earliest wake event
    /// (MSHR fill, FU release, fetch unblock, operand ready, rally
    /// resume). The default.
    #[default]
    EventDriven,
}

/// Output of one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Cycle counts and attribution.
    pub stats: RunStats,
    /// Structure activity for the power models.
    pub activity: Activity,
    /// Memory-hierarchy counters.
    pub mem_stats: MemStats,
    /// Final architectural state — must be semantically equal to the golden
    /// interpreter's for every model.
    pub final_state: ArchState,
}

/// A cycle-level execution model (in-order, runahead, multipass,
/// out-of-order).
///
/// Models are `Send` so campaign runners can execute independent
/// simulations on worker threads; every model is plain configuration data
/// between runs.
pub trait ExecutionModel: Send {
    /// Short name used in experiment output ("inorder", "MP", "OOO", ...).
    fn name(&self) -> &'static str;

    /// Selects how the model advances simulated time (see [`TickMode`]).
    ///
    /// Every mode must produce identical results; models that have no
    /// event-driven fast path simply ignore the setting, which is why the
    /// default implementation is a no-op.
    fn set_tick_mode(&mut self, mode: TickMode) {
        let _ = mode;
    }

    /// Simulates `case` until the program halts or the effective cycle
    /// cap ([`SimCase::cycle_cap`]) is hit, reporting every retired
    /// dynamic instruction to `hook` in retirement order. The hook must
    /// not affect timing: all `run*` variants produce identical
    /// [`RunResult`]s.
    ///
    /// # Errors
    ///
    /// [`RunError::CycleBudgetExceeded`] if the cap is reached first.
    ///
    /// # Panics
    ///
    /// Implementations panic if the program exceeds the case's instruction
    /// budget (indicating a malformed workload).
    fn try_run_hooked(
        &mut self,
        case: &SimCase<'_>,
        hook: &mut dyn RetireHook,
    ) -> Result<RunResult, RunError>;

    /// Simulates `case` to completion, reporting retirements to `hook`.
    ///
    /// # Panics
    ///
    /// Panics on [`RunError`] (cycle cap exceeded — runaway program?) and
    /// on an exceeded instruction budget.
    fn run_hooked(&mut self, case: &SimCase<'_>, hook: &mut dyn RetireHook) -> RunResult {
        match self.try_run_hooked(case, hook) {
            Ok(r) => r,
            Err(e) => panic!("{e} — runaway program?"),
        }
    }

    /// Simulates `case` while publishing pipeline observations to `probe`
    /// (see [`PipelineProbe`]) in addition to reporting retirements to
    /// `hook`. Probes are strictly read-only: a probed run produces a
    /// [`RunResult`] identical to an unprobed one.
    ///
    /// The default implementation tees retirements into the probe and
    /// publishes the end-of-run result; models with deeper instrumentation
    /// (the multipass pipeline) override it to also publish per-cycle,
    /// memory-completion, and store-forwarding observations.
    ///
    /// # Errors
    ///
    /// See [`ExecutionModel::try_run_hooked`]. On error the probe receives
    /// no end-of-run observation.
    fn try_run_probed(
        &mut self,
        case: &SimCase<'_>,
        hook: &mut dyn RetireHook,
        probe: &mut dyn PipelineProbe,
    ) -> Result<RunResult, RunError> {
        let result = {
            let mut tee = RetireTee::new(hook, probe);
            self.try_run_hooked(case, &mut tee)?
        };
        probe.on_run_end(&result);
        Ok(result)
    }

    /// Fallible variant of [`ExecutionModel::run`]: simulates `case` and
    /// returns the results, or a [`RunError`] if the cycle cap was hit.
    ///
    /// # Errors
    ///
    /// See [`ExecutionModel::try_run_hooked`].
    fn try_run(&mut self, case: &SimCase<'_>) -> Result<RunResult, RunError> {
        self.try_run_hooked(case, &mut NullRetireHook)
    }

    /// Simulates `case` to completion and returns the run's results.
    ///
    /// # Panics
    ///
    /// See [`ExecutionModel::run_hooked`].
    fn run(&mut self, case: &SimCase<'_>) -> RunResult {
        self.run_hooked(case, &mut NullRetireHook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::{Inst, Op, Reg};

    #[test]
    fn initial_state_carries_memory() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::Halt));
        let mut mem = MemoryImage::new();
        mem.store(0x100, 7);
        let case = SimCase::new(&p, mem);
        let s = case.initial_state();
        assert_eq!(s.mem.load(0x100), 7);
        assert_eq!(s.read(Reg::int(5)), 0);
    }
}
