//! Regenerates every file under `results/` from campaign artifacts.
//!
//! Each file's body is rendered by the same `ff-experiments` code the
//! standalone bench targets use (they share [`ResultSource`]), so a
//! campaign-rendered file matches a bench-rendered one line for line; the
//! trailing `wall time` footer reports the campaign's wall time. The
//! source is generic: a local [`crate::store::ArtifactStore`] and a
//! [`crate::remote::RemoteSource`] pointed at an `ff-server` render the
//! same bytes.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ff_experiments::{
    csv, figure6, figure7, figure8, realistic_ooo, render, reports, runahead_compare,
    table1_experiment, table2, HierKind, ResultSource,
};
use ff_workloads::Scale;

use crate::campaign::{SENSITIVITY_MODELS, SENSITIVITY_SEEDS};

fn scale_header(scale: Scale) -> String {
    format!("{scale:?}")
}

/// Renders one results file's text from any [`ResultSource`]. `scale` is
/// the scale the source's artifacts were produced at; `wall_s` feeds the
/// footer of the files that historically report one.
fn render_file<S: ResultSource + ?Sized>(
    source: &mut S,
    scale: Scale,
    name: &str,
    wall_s: f64,
) -> Result<String, String> {
    let sc = scale_header(scale);
    let mut out = String::new();
    match name {
        "figure6_cycles.txt" => {
            let f = figure6(source);
            let _ = writeln!(out, "=== Figure 6: normalized execution cycles ({sc} scale) ===\n");
            let _ = writeln!(out, "{}", render::figure6(&f));
            let _ = writeln!(out, "{}", render::figure6_bars(&f));
            let _ = writeln!(out, "wall time: {wall_s:.1}s");
        }
        "figure7_hierarchies.txt" => {
            let f = figure7(source);
            let _ =
                writeln!(out, "=== Figure 7: speedups across cache hierarchies ({sc} scale) ===\n");
            let _ = writeln!(out, "{}", render::figure7(&f));
            let _ = writeln!(out, "wall time: {wall_s:.1}s");
        }
        "figure8_ablation.txt" => {
            let f = figure8(source);
            let _ = writeln!(
                out,
                "=== Figure 8: regrouping / advance-restart ablation ({sc} scale) ===\n"
            );
            let _ = writeln!(out, "{}", render::figure8(&f));
            let _ = writeln!(out, "wall time: {wall_s:.1}s");
        }
        "figure8_ablation.csv" => {
            let f = figure8(source);
            out = csv::figure8(&f);
        }
        "realistic_ooo.txt" => {
            let r = realistic_ooo(source);
            let _ =
                writeln!(out, "=== §5.2: multipass vs realistic out-of-order ({sc} scale) ===\n");
            let _ = writeln!(out, "{}", render::realistic_ooo(&r));
            let _ = writeln!(out, "wall time: {wall_s:.1}s");
        }
        "runahead_compare.txt" => {
            let r = runahead_compare(source);
            let _ =
                writeln!(out, "=== §5.4: Dundas-Mudge runahead vs multipass ({sc} scale) ===\n");
            let _ = writeln!(out, "{}", render::runahead(&r));
            let _ = writeln!(out, "wall time: {wall_s:.1}s");
        }
        "table1_power.txt" => {
            let rows = table1_experiment(source);
            let _ = writeln!(
                out,
                "=== Table 1: power ratios, out-of-order / multipass ({sc} scale) ===\n"
            );
            let _ = writeln!(out, "{}", ff_power::table1::render(&rows));
            let _ = writeln!(out, "paper reference: register/data 0.99 peak / 1.20 avg;");
            let _ = writeln!(out, "                 scheduling 10.28 peak / 7.15 avg;");
            let _ = writeln!(out, "                 memory ordering 3.21 peak / 9.79 avg");
            let _ = writeln!(out, "\nwall time: {wall_s:.1}s");
        }
        "table2_config.txt" => {
            let _ = writeln!(out, "=== Table 2: experimental machine configuration ===\n");
            for (feature, params) in table2() {
                let _ = writeln!(out, "{feature:<44} {params}");
            }
        }
        "memory_consistency.txt" => {
            out = reports::memory_consistency(source, scale);
        }
        "seed_sensitivity.txt" => {
            let mut seeds = vec![0u64];
            seeds.extend(SENSITIVITY_SEEDS);
            // All sensitivity models' artifacts must exist; the closure only
            // pulls what the report compares.
            debug_assert_eq!(SENSITIVITY_MODELS.len(), 2);
            out = reports::seed_sensitivity(scale, &seeds, |model, bench, seed| {
                source.result_seeded(model, HierKind::Base, bench, seed).stats.cycles
            });
        }
        "ablation_structures.txt" => {
            out = source.report_text("ablation_structures")?;
        }
        "unroll_effect.txt" => {
            out = source.report_text("unroll_effect")?;
        }
        other => return Err(format!("unknown results file `{other}`")),
    }
    Ok(out)
}

/// The results files a full campaign regenerates, in write order.
pub const RESULTS_FILES: [&str; 12] = [
    "figure6_cycles.txt",
    "figure7_hierarchies.txt",
    "figure8_ablation.txt",
    "figure8_ablation.csv",
    "realistic_ooo.txt",
    "runahead_compare.txt",
    "table1_power.txt",
    "table2_config.txt",
    "memory_consistency.txt",
    "seed_sensitivity.txt",
    "ablation_structures.txt",
    "unroll_effect.txt",
];

/// Renders every results file from `source` into `results_dir`.
///
/// # Errors
///
/// On a missing/corrupt artifact or an unwritable results directory.
pub fn render_all<S: ResultSource + ?Sized>(
    source: &mut S,
    scale: Scale,
    results_dir: &Path,
    wall_s: f64,
) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(results_dir)
        .map_err(|e| format!("create {}: {e}", results_dir.display()))?;
    let mut written = Vec::new();
    for name in RESULTS_FILES {
        let text = render_file(source, scale, name, wall_s)?;
        let path = results_dir.join(name);
        std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
        written.push(path);
    }
    Ok(written)
}
