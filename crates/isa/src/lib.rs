//! EPIC instruction set architecture for the flea-flicker multipass
//! pipelining simulator.
//!
//! This crate defines the instruction set executed by every pipeline model in
//! the workspace: a compact EPIC (Itanium 2-like) ISA with
//!
//! * 128 integer registers, 128 floating-point registers, and 64 predicate
//!   registers ([`Reg`]),
//! * compiler-delimited issue groups (stop bits on [`Inst`]),
//! * qualifying predicates on every instruction,
//! * the `RESTART` marker instruction used by multipass pipelining to direct
//!   advance-execution restart (paper §3.3), and
//! * full functional semantics ([`eval`], [`interp`]) so that timing models
//!   are also functional interpreters whose final architectural state can be
//!   cross-checked against the golden [`interp::Interpreter`].
//!
//! # Example
//!
//! Build a two-instruction program, run it through the golden interpreter and
//! inspect the result:
//!
//! ```
//! use ff_isa::{Inst, Op, Program, Reg, interp::Interpreter};
//!
//! let mut p = Program::new();
//! let b = p.add_block();
//! p.push(b, Inst::new(Op::MovImm).dst(Reg::int(4)).imm(21));
//! p.push(b, Inst::new(Op::Add).dst(Reg::int(5)).src(Reg::int(4)).src(Reg::int(4)));
//! p.push(b, Inst::new(Op::Halt));
//! let mut interp = Interpreter::new(&p);
//! interp.run(1_000).unwrap();
//! assert_eq!(interp.state().int(5), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod eval;
pub mod inst;
pub mod interp;
pub mod memimg;
pub mod op;
pub mod program;
pub mod reg;
pub mod state;

pub use eval::{alu, branch_taken, effective_address};
pub use inst::Inst;
pub use memimg::MemoryImage;
pub use op::{FuClass, Op};
pub use program::{BlockId, Pc, Program};
pub use reg::{Reg, RegClass, NUM_FP_REGS, NUM_INT_REGS, NUM_PRED_REGS};
pub use state::ArchState;
