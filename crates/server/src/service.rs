//! Route dispatch: maps the HTTP surface onto the [`Scheduler`].
//!
//! | Route                 | Meaning                                        |
//! |-----------------------|------------------------------------------------|
//! | `POST /campaigns`     | Submit a campaign request; returns `{id, total}` |
//! | `GET /campaigns/{id}` | Campaign status document                       |
//! | `GET /jobs/{hash}`    | The artifact for a 16-hex config hash          |
//! | `GET /healthz`        | Liveness plus memoization/transport/store counters |
//! | `POST /shutdown`      | Ask the server to checkpoint and exit          |
//!
//! Every body is JSON; errors are `{"error": "..."}` with a 4xx/5xx
//! status, which `ff_harness::remote` surfaces to the client verbatim.
//!
//! The `{hash}` in `GET /jobs/{hash}` is validated to be *exactly* 16
//! lowercase hex characters before any filesystem path is formed from
//! it: a malformed hash (too short, uppercase, `../` traversal attempts)
//! is a `400`, never a `404` from a bogus lookup or a `500` from a
//! confused path join.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ff_harness::json::Json;
use ff_harness::remote::CampaignRequest;

use crate::http::{Request, Response, TransportCounters};
use crate::scheduler::Scheduler;

/// Shared service state: the scheduler, the transport counters the HTTP
/// layer ticks, plus the shutdown latch the binary's main loop polls.
pub struct Service {
    scheduler: Arc<Scheduler>,
    transport: Arc<TransportCounters>,
    wants_shutdown: AtomicBool,
}

impl Service {
    /// Wraps `scheduler` for route dispatch.
    pub fn new(scheduler: Arc<Scheduler>) -> Service {
        Service {
            scheduler,
            transport: Arc::new(TransportCounters::default()),
            wants_shutdown: AtomicBool::new(false),
        }
    }

    /// The scheduler behind this service.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// The transport counters; hand a clone of this `Arc` to
    /// [`crate::http::HttpServer::start_with`] so the HTTP layer ticks
    /// the same counters `/healthz` reports.
    pub fn transport(&self) -> &Arc<TransportCounters> {
        &self.transport
    }

    /// Whether a `POST /shutdown` has been received.
    pub fn wants_shutdown(&self) -> bool {
        self.wants_shutdown.load(Ordering::SeqCst)
    }

    /// Dispatches one request.
    pub fn handle(&self, request: &Request) -> Response {
        let path = request.path.trim_end_matches('/');
        match (request.method.as_str(), path) {
            ("POST", "/campaigns") => self.submit(&request.body),
            ("GET", "/healthz") => Response::ok(self.health().render()),
            ("POST", "/shutdown") => {
                self.wants_shutdown.store(true, Ordering::SeqCst);
                Response::ok(Json::obj(vec![("status", Json::Str("stopping".into()))]).render())
            }
            ("GET", _) if path.starts_with("/campaigns/") => {
                self.campaign(&path["/campaigns/".len()..])
            }
            ("GET", _) if path.starts_with("/jobs/") => self.job(&path["/jobs/".len()..]),
            ("GET" | "POST", _) => Response::error(404, "no such route"),
            _ => Response::error(405, "method not allowed"),
        }
    }

    /// The `/healthz` document: the scheduler's liveness/memoization
    /// section extended with transport and store-integrity counters.
    fn health(&self) -> Json {
        let mut doc = self.scheduler.health();
        if let Json::Obj(fields) = &mut doc {
            fields.push(("transport".to_string(), self.transport.to_json()));
            fields.push(("store".to_string(), self.scheduler.store().counters().to_json()));
        }
        doc
    }

    fn submit(&self, body: &str) -> Response {
        let doc = match Json::parse(body) {
            Ok(doc) => doc,
            Err(e) => return Response::error(400, &format!("bad JSON body: {e}")),
        };
        let request = match CampaignRequest::from_json(&doc) {
            Ok(request) => request,
            Err(e) => return Response::error(400, &e),
        };
        match self.scheduler.submit(&request) {
            Ok((id, total)) => Response::with_status(
                201,
                Json::obj(vec![("id", Json::Str(id)), ("total", Json::U64(total as u64))]).render(),
            ),
            // Submission is rejected only while stopping (or for an empty
            // expansion); a retry against a restarted server can succeed,
            // so advertise a short Retry-After.
            Err(e) => Response::unavailable(&e, 2),
        }
    }

    fn campaign(&self, id: &str) -> Response {
        match self.scheduler.status(id) {
            Some(doc) => Response::ok(doc.render()),
            None => Response::error(404, &format!("unknown campaign `{id}`")),
        }
    }

    fn job(&self, hash_text: &str) -> Response {
        // Shape-validate before any store lookup: the hash becomes a
        // filesystem path component downstream.
        let Some(hash) = ff_harness::parse_hash16(hash_text) else {
            return Response::error(
                400,
                &format!("`{hash_text}` is not a config hash (expect exactly 16 lowercase hex)"),
            );
        };
        match self.scheduler.store().read_by_hash(hash) {
            // The artifact is itself a JSON document; serve it verbatim so
            // fetched bytes match the store's bytes exactly.
            Some(text) => Response::ok(text),
            None => Response::error(404, &format!("no artifact for config hash {hash_text}")),
        }
    }
}
