//! The concrete invariant checkers.
//!
//! Each sentinel audits one slice of the pipeline's bookkeeping; the
//! comments on each type state the invariant and which fault class it
//! exists to catch. All checks are derived from the paper's §3 mechanism
//! descriptions, not from the implementation — a checker that restated the
//! code would confirm bugs instead of finding them.

use ff_debug::LockstepChecker;
use ff_engine::{
    AscForwardObs, CycleObs, MemAccessObs, RetireEvent, RetireHook, RetireMode, RunResult, SimCase,
};

use crate::{Reporter, Sentinel};

/// Slack, in cycles, past the worst legal memory-hierarchy latency. The
/// deepest configured hierarchy resolves a main-memory miss in ~200 cycles
/// and every functional-unit latency is far smaller, so any promised
/// completion more than this far in the future is a wakeup-bookkeeping bug
/// (a dropped wakeup pends a register at `u64::MAX / 2`; a warped latency
/// lands ~99k cycles out — both are orders of magnitude past this bound).
pub const LATENCY_SLACK: u64 = 2048;

/// Audits the architectural retirement stream: sequence numbers must be
/// contiguous from zero (each dynamic instruction retires exactly once, in
/// program order) and retirement cycles must never decrease.
#[derive(Debug, Default)]
pub struct RetireOrderSentinel {
    next_seq: u64,
    last_cycle: u64,
}

impl RetireOrderSentinel {
    /// Creates the checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sentinel for RetireOrderSentinel {
    fn name(&self) -> &'static str {
        "retire-order"
    }

    fn on_retire(&mut self, event: &RetireEvent, v: &mut Reporter<'_>) {
        if event.seq != self.next_seq {
            v.report(
                event.cycle,
                format!(
                    "retired seq #{} but #{} was next in program order",
                    event.seq, self.next_seq
                ),
            );
        }
        if event.cycle < self.last_cycle {
            v.report(
                event.cycle,
                format!(
                    "retirement cycle went backwards ({} after {})",
                    event.cycle, self.last_cycle
                ),
            );
        }
        self.next_seq = event.seq + 1;
        self.last_cycle = event.cycle;
    }
}

/// Audits scoreboard and SRF consistency:
///
/// * no register may be pending further out than the worst hierarchy
///   latency (catches dropped load wakeups, which pend a register
///   essentially forever);
/// * every promised memory completion must be within that same bound
///   (catches warped cache latencies at the moment of the access);
/// * outside advance mode "all A-bits are cleared, effectively clearing
///   the SRF" (§3.1) — a set A-bit would redirect architectural consumers
///   to stale speculative values.
#[derive(Debug, Default)]
pub struct ScoreboardSrfSentinel;

impl ScoreboardSrfSentinel {
    /// Creates the checker.
    pub fn new() -> Self {
        Self
    }
}

impl Sentinel for ScoreboardSrfSentinel {
    fn name(&self) -> &'static str {
        "scoreboard-srf"
    }

    fn on_cycle(&mut self, obs: &CycleObs, v: &mut Reporter<'_>) {
        if obs.sb_drain > obs.cycle + LATENCY_SLACK {
            v.report(
                obs.cycle,
                format!(
                    "scoreboard holds a register pending until cycle {} — beyond any legal \
                     wakeup latency (dropped wakeup?)",
                    obs.sb_drain
                ),
            );
        }
        if obs.mode != RetireMode::Advance && obs.srf_abits != 0 {
            v.report(
                obs.cycle,
                format!(
                    "{} SRF A-bit(s) set in {} mode (must be clear outside advance)",
                    obs.srf_abits, obs.mode
                ),
            );
        }
    }

    fn on_mem_access(&mut self, obs: &MemAccessObs, v: &mut Reporter<'_>) {
        if obs.complete_at > obs.cycle + LATENCY_SLACK {
            v.report(
                obs.cycle,
                format!(
                    "{:?} access promised completion at cycle {} — beyond any legal hierarchy \
                     latency",
                    obs.level, obs.complete_at
                ),
            );
        }
        if obs.complete_at < obs.cycle {
            v.report(
                obs.cycle,
                format!(
                    "memory access promised completion in the past (cycle {})",
                    obs.complete_at
                ),
            );
        }
    }
}

/// Audits the advance store cache and SMAQ:
///
/// * live entries never exceed capacity, and no ASC set exceeds its
///   associativity (§3.6's "small, low-associativity" structure);
/// * the data-speculation (S) bit on every forward matches §3.6's rule —
///   a forward is speculative exactly when a deferred (unknown-address)
///   store younger than the forwarding store is in flight. A cleared S-bit
///   on a speculative forward would let rally merge an unverified value.
#[derive(Debug, Default)]
pub struct AscSentinel;

impl AscSentinel {
    /// Creates the checker.
    pub fn new() -> Self {
        Self
    }
}

impl Sentinel for AscSentinel {
    fn name(&self) -> &'static str {
        "asc"
    }

    fn on_cycle(&mut self, obs: &CycleObs, v: &mut Reporter<'_>) {
        if obs.asc_live > obs.asc_capacity {
            v.report(
                obs.cycle,
                format!("ASC holds {} entries, capacity {}", obs.asc_live, obs.asc_capacity),
            );
        }
        if !obs.asc_assoc_ok {
            v.report(obs.cycle, "an ASC set exceeds its associativity".to_string());
        }
        if obs.smaq_live > obs.smaq_capacity {
            v.report(
                obs.cycle,
                format!("SMAQ holds {} entries, capacity {}", obs.smaq_live, obs.smaq_capacity),
            );
        }
    }

    fn on_asc_forward(&mut self, obs: &AscForwardObs, v: &mut Reporter<'_>) {
        let expected = obs.deferred_store.is_some_and(|d| d > obs.store_seq);
        if obs.s_bit != expected {
            v.report(
                obs.cycle,
                format!(
                    "ASC forward store #{} -> load #{} carried S={} but deferred store {:?} \
                     requires S={} (stale forward would skip rally verification)",
                    obs.store_seq, obs.load_seq, obs.s_bit, obs.deferred_store, expected
                ),
            );
        }
    }
}

/// Audits MSHR lifetimes from the end-of-run balance: after the drain,
/// every allocation must have been released exactly once. A leak means a
/// fill response never arrived (lost deallocation); releases exceeding
/// allocations means a double free.
#[derive(Debug, Default)]
pub struct MshrSentinel;

impl MshrSentinel {
    /// Creates the checker.
    pub fn new() -> Self {
        Self
    }
}

impl Sentinel for MshrSentinel {
    fn name(&self) -> &'static str {
        "mshr"
    }

    fn on_run_end(&mut self, result: &RunResult, v: &mut Reporter<'_>) {
        let m = &result.mem_stats;
        let cycle = result.stats.cycles;
        if m.mshr_releases > m.mshr_allocations {
            v.report(
                cycle,
                format!(
                    "MSHR double free: {} releases for {} allocations",
                    m.mshr_releases, m.mshr_allocations
                ),
            );
        }
        if m.mshr_leaked > 0 {
            v.report(
                cycle,
                format!(
                    "{} MSHR entr{} leaked (never deallocated)",
                    m.mshr_leaked,
                    if m.mshr_leaked == 1 { "y" } else { "ies" }
                ),
            );
        }
        if m.mshr_allocations != m.mshr_releases + m.mshr_leaked {
            v.report(
                cycle,
                format!(
                    "MSHR imbalance: {} allocated != {} released + {} leaked",
                    m.mshr_allocations, m.mshr_releases, m.mshr_leaked
                ),
            );
        }
    }
}

/// Audits pass-epoch monotonicity of the multipass pointer choreography
/// (§3.3, Figure 4), from the per-cycle snapshots:
///
/// * cycles strictly increase; DEQ and the trigger never move backwards;
/// * in advance mode the architectural side is stalled at the trigger
///   (`deq == trigger`) and the pass window is well-formed
///   (`trigger <= peek <= peek_high`);
/// * in rally mode DEQ is strictly below the PEEK high-water mark (rally
///   exits to architectural the moment it catches up).
#[derive(Debug, Default)]
pub struct EpochSentinel {
    last: Option<(u64, u64, u64)>,
}

impl EpochSentinel {
    /// Creates the checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sentinel for EpochSentinel {
    fn name(&self) -> &'static str {
        "epoch"
    }

    fn on_cycle(&mut self, obs: &CycleObs, v: &mut Reporter<'_>) {
        if let Some((cycle, deq, trigger)) = self.last {
            if obs.cycle <= cycle {
                v.report(obs.cycle, format!("cycle did not advance past {cycle}"));
            }
            if obs.deq < deq {
                v.report(obs.cycle, format!("DEQ moved backwards ({} after {})", obs.deq, deq));
            }
            if obs.trigger < trigger {
                v.report(
                    obs.cycle,
                    format!("trigger moved backwards ({} after {})", obs.trigger, trigger),
                );
            }
        }
        match obs.mode {
            RetireMode::Advance => {
                if obs.deq != obs.trigger {
                    v.report(
                        obs.cycle,
                        format!(
                            "advance mode with DEQ {} != trigger {} (architectural side must \
                             stall at the trigger)",
                            obs.deq, obs.trigger
                        ),
                    );
                }
                if obs.peek < obs.trigger || obs.peek > obs.peek_high {
                    v.report(
                        obs.cycle,
                        format!(
                            "malformed advance window: trigger {} / peek {} / high {}",
                            obs.trigger, obs.peek, obs.peek_high
                        ),
                    );
                }
            }
            RetireMode::Rally => {
                if obs.deq >= obs.peek_high {
                    v.report(
                        obs.cycle,
                        format!(
                            "rally mode with DEQ {} >= PEEK high-water {} (should have exited \
                             to architectural)",
                            obs.deq, obs.peek_high
                        ),
                    );
                }
            }
            RetireMode::Architectural => {}
        }
        self.last = Some((obs.cycle, obs.deq, obs.trigger));
    }
}

/// Audits end-of-run counter balance: every simulated cycle is charged to
/// exactly one Figure 6 category, activity denominators match the cycle
/// count, mode-cycle counters fit inside the run, and ratio numerators
/// never exceed their denominators.
#[derive(Debug, Default)]
pub struct AccountingSentinel;

impl AccountingSentinel {
    /// Creates the checker.
    pub fn new() -> Self {
        Self
    }
}

impl Sentinel for AccountingSentinel {
    fn name(&self) -> &'static str {
        "accounting"
    }

    fn on_run_end(&mut self, result: &RunResult, v: &mut Reporter<'_>) {
        let s = &result.stats;
        let cycle = s.cycles;
        if s.breakdown.total() != s.cycles {
            v.report(
                cycle,
                format!(
                    "cycle breakdown totals {} but the run took {} cycles (every cycle must be \
                     charged to exactly one category)",
                    s.breakdown.total(),
                    s.cycles
                ),
            );
        }
        if result.activity.cycles != s.cycles {
            v.report(
                cycle,
                format!(
                    "activity denominator {} != {} simulated cycles",
                    result.activity.cycles, s.cycles
                ),
            );
        }
        if s.spec_mode_cycles + s.rally_cycles > s.cycles {
            v.report(
                cycle,
                format!(
                    "mode cycles overflow the run: {} advance + {} rally > {} total",
                    s.spec_mode_cycles, s.rally_cycles, s.cycles
                ),
            );
        }
        if s.mispredicts > s.branches {
            v.report(cycle, format!("{} mispredicts > {} branches", s.mispredicts, s.branches));
        }
        if s.rs_reuses > s.retired {
            v.report(
                cycle,
                format!("{} result-store reuses > {} retirements", s.rs_reuses, s.retired),
            );
        }
    }
}

/// Golden-interpreter lockstep as a sentinel: steps the `ff-debug`
/// [`LockstepChecker`] on every retirement and reports the first
/// divergence. This is the checker that catches silent *architectural*
/// corruption — a flipped register bit produces no structural anomaly, but
/// the retired value disagrees with the golden execution.
pub struct GoldenSentinel<'a> {
    checker: LockstepChecker<'a>,
    reported: bool,
}

impl<'a> GoldenSentinel<'a> {
    /// Creates the checker over the case's golden execution.
    pub fn new(case: &SimCase<'a>) -> Self {
        GoldenSentinel { checker: LockstepChecker::new(case), reported: false }
    }
}

impl Sentinel for GoldenSentinel<'_> {
    fn name(&self) -> &'static str {
        "golden"
    }

    fn on_retire(&mut self, event: &RetireEvent, v: &mut Reporter<'_>) {
        if self.reported {
            return;
        }
        self.checker.on_retire(event);
        if let Some(d) = self.checker.divergence() {
            v.report(
                d.cycle,
                format!("diverged from golden interpreter at seq #{}: {}", d.seq, d.kind),
            );
            self.reported = true;
        }
    }
}
