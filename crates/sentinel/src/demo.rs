//! Small hand-built kernels that deterministically exercise the multipass
//! machinery the fault injector perturbs.
//!
//! The fault-detection proofs ([`crate::fault`]) need workloads where each
//! fault site is *guaranteed* to be reached: an advance episode with
//! result-store merges for the register-corruption fault, architectural
//! load wakeups and MSHR misses for the wakeup/latency/MSHR faults, and an
//! ASC forward whose S-bit must be set for the stale-forward fault.

use ff_isa::{Inst, MemoryImage, Op, Program, Reg};

/// A pointer chase with an independent miss stream behind the stall point —
/// the paper's Figure 1 access pattern. Opens advance episodes on every
/// chase link, produces result-store merges in rally, and misses every
/// level of the hierarchy (allocating MSHRs).
pub fn chase(nodes: u64) -> (Program, MemoryImage) {
    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    let b2 = p.add_block();
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(5)).imm(0x400_0000).stop());
    // loop: r1 = load [r1] (long miss); consume it (stall-on-use trigger);
    // an independent miss stream and a dependent payload load behind it.
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).region(0).stop());
    p.push(b1, Inst::new(Op::Restart).src(Reg::int(1)).stop());
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(4)).src(Reg::int(1)).src(Reg::int(0)).stop());
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(5)).region(1));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(6)).src(Reg::int(1)).imm(8).region(0).stop());
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(2)));
    p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(5)).src(Reg::int(5)).imm(4096).stop());
    p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(4)).src(Reg::int(0)).stop());
    p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
    p.push(b2, Inst::new(Op::Halt).stop());
    let mut mem = MemoryImage::new();
    let stride = 128 * 1024;
    for i in 0..nodes {
        let a = 0x10_0000 + i * stride;
        let next = if i + 1 == nodes { 0 } else { 0x10_0000 + (i + 1) * stride };
        mem.store(a, next);
        mem.store(a + 8, i * 10);
    }
    for i in 0..nodes {
        mem.store(0x400_0000 + i * 4096, i);
    }
    (p, mem)
}

/// A kernel whose advance pass performs an ASC forward that *must* carry
/// the data-speculation (S) bit (§3.6): a known-address store inserts into
/// the ASC, a younger store's address depends on the missed load (so it
/// defers), and a load of the known address then forwards under that
/// in-flight deferred store. The deferred store targets a different word,
/// so rally's value verification passes and a clean run stays clean.
pub fn forwarding() -> (Program, MemoryImage) {
    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(7)).imm(0x5000).stop());
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(10)).imm(99).stop());
    // Long-miss load opens the advance window.
    p.push(b0, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(1)).region(0).stop());
    p.push(b0, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(2)).src(Reg::int(0)).stop());
    // Known-address store: inserts 99 at 0x5000 into the ASC.
    p.push(b0, Inst::new(Op::Store).src(Reg::int(7)).src(Reg::int(10)).region(1).stop());
    // Younger store whose address depends on the missed load: deferred.
    p.push(b0, Inst::new(Op::And).dst(Reg::int(8)).src(Reg::int(2)).src(Reg::int(0)).stop());
    p.push(b0, Inst::new(Op::AddImm).dst(Reg::int(9)).src(Reg::int(8)).imm(0x6000).stop());
    p.push(b0, Inst::new(Op::Store).src(Reg::int(9)).src(Reg::int(10)).stop());
    // Forwarding load: ASC hit on 0x5000 under the deferred store — S-bit.
    p.push(b0, Inst::new(Op::Load).dst(Reg::int(11)).src(Reg::int(7)).region(1).stop());
    p.push(b0, Inst::new(Op::Add).dst(Reg::int(12)).src(Reg::int(11)).src(Reg::int(11)).stop());
    p.push(b0, Inst::new(Op::Br { target: b1 }).stop());
    p.push(b1, Inst::new(Op::Halt).stop());
    let mut mem = MemoryImage::new();
    mem.store(0x10_0000, 5);
    (p, mem)
}
