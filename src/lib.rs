//! Facade crate for the flea-flicker multipass pipelining reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single crate:
//!
//! * [`isa`] — EPIC instruction set and functional semantics
//! * [`mem`] — timing memory hierarchy (caches, MSHRs)
//! * [`frontend`] — fetch engine and gshare branch prediction
//! * [`compiler`] — OpenIMPACT-like scheduler and RESTART insertion
//! * [`workloads`] — SPEC CPU2000-like synthetic kernels
//! * [`engine`] — shared pipeline infrastructure and statistics
//! * [`baselines`] — in-order, runahead, and out-of-order models
//! * [`multipass`] — the paper's contribution: multipass pipelining
//! * [`power`] — Wattch-like power models (Table 1)
//! * [`experiments`] — table/figure reproduction harness
//! * [`harness`] — parallel campaign runner (`ff-campaign`) with
//!   checkpoint/resume, watchdogs, panic isolation, quarantine, and
//!   run manifests
//! * [`sentinel`] — cycle-level invariant checkers (`ff-sentinel`) and
//!   the deterministic fault injector that proves they fire
//! * [`debug`] — first-divergence triage against the golden interpreter

#![forbid(unsafe_code)]

/// Convenient single-import surface for the common workflow: build or
/// generate a program, pick a machine, run models, compare results.
///
/// ```
/// use flea_flicker::prelude::*;
///
/// let w = Workload::by_name("mesa", Scale::Test).unwrap();
/// let case = SimCase::new(&w.program, w.mem.clone());
/// let r = Multipass::new(MachineConfig::itanium2_base()).run(&case);
/// assert!(r.stats.cycles > 0);
/// ```
pub mod prelude {
    pub use ff_baselines::{InOrder, OutOfOrder, Runahead};
    pub use ff_compiler::{compile, CompilerOptions};
    pub use ff_engine::{ExecutionModel, MachineConfig, RunResult, SimCase};
    pub use ff_isa::{ArchState, Inst, MemoryImage, Op, Program, Reg};
    pub use ff_mem::HierarchyConfig;
    pub use ff_multipass::{Multipass, MultipassConfig, RestartStrategy};
    pub use ff_workloads::{Scale, Workload};
}

pub use ff_baselines as baselines;
pub use ff_compiler as compiler;
pub use ff_debug as debug;
pub use ff_engine as engine;
pub use ff_experiments as experiments;
pub use ff_frontend as frontend;
pub use ff_harness as harness;
pub use ff_isa as isa;
pub use ff_mem as mem;
pub use ff_multipass as multipass;
pub use ff_power as power;
pub use ff_sentinel as sentinel;
pub use ff_workloads as workloads;
