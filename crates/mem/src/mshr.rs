//! Miss status holding registers (MSHRs).
//!
//! The MSHR file bounds the number of outstanding cache misses (Table 2's
//! "Max Outstanding Misses: 16") and merges accesses to a line whose miss is
//! already in flight. Because overlap of outstanding misses is exactly what
//! runahead-family techniques exploit, this bound is a first-order limit on
//! how much memory-level parallelism any model can expose.

/// Outcome of asking the MSHR file to track a miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the miss completes at the given cycle.
    Allocated {
        /// Completion cycle of the newly tracked miss.
        complete_at: u64,
    },
    /// The line already has a miss in flight; this access merges with it and
    /// completes when the existing miss does.
    Merged {
        /// Completion cycle of the in-flight miss.
        complete_at: u64,
    },
    /// All entries are busy; the requester must retry later.
    Full,
}

/// A bounded file of in-flight misses, keyed by line address.
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    /// `(line_address, complete_at)` pairs for in-flight misses.
    entries: Vec<(u64, u64)>,
    allocations: u64,
    merges: u64,
    full_stalls: u64,
    peak_occupancy: usize,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            allocations: 0,
            merges: 0,
            full_stalls: 0,
            peak_occupancy: 0,
        }
    }

    /// Releases entries whose misses have completed by cycle `now`.
    pub fn expire(&mut self, now: u64) {
        self.entries.retain(|&(_, done)| done > now);
    }

    /// Requests tracking of a miss to `line` issued at `now`, completing at
    /// `complete_at` if newly allocated. Expired entries are reclaimed
    /// first. See [`MshrOutcome`].
    pub fn request(&mut self, line: u64, now: u64, complete_at: u64) -> MshrOutcome {
        self.expire(now);
        if let Some(&(_, done)) = self.entries.iter().find(|&&(l, _)| l == line) {
            self.merges += 1;
            return MshrOutcome::Merged { complete_at: done };
        }
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            return MshrOutcome::Full;
        }
        self.entries.push((line, complete_at));
        self.allocations += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        MshrOutcome::Allocated { complete_at }
    }

    /// Records a merge that was detected by the caller via
    /// [`MshrFile::in_flight`] rather than by [`MshrFile::request`].
    pub fn note_merge(&mut self) {
        self.merges += 1;
    }

    /// If `line` has a miss in flight at `now`, its completion cycle.
    pub fn in_flight(&self, line: u64, now: u64) -> Option<u64> {
        self.entries.iter().find(|&&(l, done)| l == line && done > now).map(|&(_, d)| d)
    }

    /// Entries currently occupied at cycle `now`.
    pub fn occupancy(&self, now: u64) -> usize {
        self.entries.iter().filter(|&&(_, done)| done > now).count()
    }

    /// Total new-entry allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total same-line merges.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total requests rejected because the file was full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_until_full() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.request(0, 0, 100), MshrOutcome::Allocated { complete_at: 100 });
        assert_eq!(m.request(64, 0, 100), MshrOutcome::Allocated { complete_at: 100 });
        assert_eq!(m.request(128, 0, 100), MshrOutcome::Full);
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    fn merges_same_line() {
        let mut m = MshrFile::new(2);
        m.request(0, 0, 100);
        assert_eq!(m.request(0, 5, 200), MshrOutcome::Merged { complete_at: 100 });
        assert_eq!(m.merges(), 1);
        assert_eq!(m.occupancy(5), 1);
    }

    #[test]
    fn expires_completed_entries() {
        let mut m = MshrFile::new(1);
        m.request(0, 0, 10);
        assert_eq!(m.request(64, 5, 100), MshrOutcome::Full);
        // At cycle 10 the first miss is done; the slot frees.
        assert_eq!(m.request(64, 10, 100), MshrOutcome::Allocated { complete_at: 100 });
        assert_eq!(m.occupancy(10), 1);
    }

    #[test]
    fn in_flight_reports_completion() {
        let mut m = MshrFile::new(4);
        m.request(0, 0, 42);
        assert_eq!(m.in_flight(0, 10), Some(42));
        assert_eq!(m.in_flight(0, 42), None);
        assert_eq!(m.in_flight(64, 10), None);
    }

    #[test]
    fn peak_occupancy_tracks_maximum() {
        let mut m = MshrFile::new(8);
        for i in 0..5u64 {
            m.request(i * 64, 0, 50);
        }
        m.expire(60);
        m.request(999 * 64, 60, 100);
        assert_eq!(m.peak_occupancy(), 5);
    }
}
