//! Run statistics and the paper's stall-cycle taxonomy.

use std::fmt;
use std::ops::{Add, AddAssign};

/// The four cycle-attribution categories of Figure 6.
///
/// Every simulated cycle is charged to exactly one category: *execution*
/// when at least one instruction issues, otherwise the stall cause of the
/// oldest unissued instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Instructions are issuing without delay.
    Execution,
    /// Branch-misprediction flushes and instruction-cache misses (empty
    /// instruction buffer).
    FrontEnd,
    /// Stalls on multiplies/divides/FP and other non-unit-latency results,
    /// and on resource (FU/MSHR) conflicts.
    Other,
    /// Stalls on consumption of unready load results.
    Load,
}

impl StallKind {
    /// All categories in Figure 6's legend order.
    pub const ALL: [StallKind; 4] =
        [StallKind::Execution, StallKind::FrontEnd, StallKind::Other, StallKind::Load];
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallKind::Execution => write!(f, "execution"),
            StallKind::FrontEnd => write!(f, "front-end"),
            StallKind::Other => write!(f, "other"),
            StallKind::Load => write!(f, "load"),
        }
    }
}

/// Cycle breakdown across the four [`StallKind`] categories.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles in which at least one instruction issued.
    pub execution: u64,
    /// Front-end stall cycles.
    pub front_end: u64,
    /// Non-load stall cycles (multi-cycle ops, resource conflicts).
    pub other: u64,
    /// Load-use stall cycles.
    pub load: u64,
}

impl CycleBreakdown {
    /// Charges one cycle to `kind`.
    pub fn charge(&mut self, kind: StallKind) {
        match kind {
            StallKind::Execution => self.execution += 1,
            StallKind::FrontEnd => self.front_end += 1,
            StallKind::Other => self.other += 1,
            StallKind::Load => self.load += 1,
        }
    }

    /// Charges `n` cycles to `kind` at once — the bulk path used by the
    /// event-driven tick when fast-forwarding a quiescent window.
    pub fn charge_n(&mut self, kind: StallKind, n: u64) {
        match kind {
            StallKind::Execution => self.execution += n,
            StallKind::FrontEnd => self.front_end += n,
            StallKind::Other => self.other += n,
            StallKind::Load => self.load += n,
        }
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> u64 {
        self.execution + self.front_end + self.other + self.load
    }

    /// Total stall (non-execution) cycles.
    pub fn stall(&self) -> u64 {
        self.front_end + self.other + self.load
    }

    /// The count for one category.
    pub fn get(&self, kind: StallKind) -> u64 {
        match kind {
            StallKind::Execution => self.execution,
            StallKind::FrontEnd => self.front_end,
            StallKind::Other => self.other,
            StallKind::Load => self.load,
        }
    }
}

impl Add for CycleBreakdown {
    type Output = CycleBreakdown;
    fn add(self, rhs: CycleBreakdown) -> CycleBreakdown {
        CycleBreakdown {
            execution: self.execution + rhs.execution,
            front_end: self.front_end + rhs.front_end,
            other: self.other + rhs.other,
            load: self.load + rhs.load,
        }
    }
}

impl AddAssign for CycleBreakdown {
    fn add_assign(&mut self, rhs: CycleBreakdown) {
        *self = *self + rhs;
    }
}

/// Statistics produced by one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Architecturally retired instructions.
    pub retired: u64,
    /// Total instruction executions, *including* speculative re-executions
    /// (runahead/advance work). `executions - retired` is wasted work.
    pub executions: u64,
    /// Cycle attribution (Figure 6 categories).
    pub breakdown: CycleBreakdown,
    /// Resolved conditional branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Mispredicted branches resolved early by advance preexecution
    /// (multipass front-end benefit).
    pub early_resolved_mispredicts: u64,
    /// Times the model entered a speculative (advance/runahead) mode.
    pub spec_mode_entries: u64,
    /// Advance-restart events (multipass §3.3).
    pub advance_restarts: u64,
    /// Cycles spent in advance/runahead mode.
    pub spec_mode_cycles: u64,
    /// Rally-mode cycles (multipass).
    pub rally_cycles: u64,
    /// Instructions whose rally/architectural execution was satisfied from
    /// the result store without re-execution (multipass reuse).
    pub rs_reuses: u64,
    /// Value-misspeculation pipeline flushes (multipass §3.6).
    pub value_flushes: u64,
    /// Issue groups dynamically merged by regrouping (multipass §3.2).
    pub regroup_merges: u64,
}

impl RunStats {
    /// Instructions per cycle (retired).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to `baseline` (same work assumed).
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} retired (IPC {:.2}); exec {} / front {} / other {} / load {}",
            self.cycles,
            self.retired,
            self.ipc(),
            self.breakdown.execution,
            self.breakdown.front_end,
            self.breakdown.other,
            self.breakdown.load
        )?;
        if self.spec_mode_entries > 0 {
            write!(
                f,
                "; {} advance episodes, {} restarts, {} reuses",
                self.spec_mode_entries, self.advance_restarts, self.rs_reuses
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_nonempty() {
        let s = RunStats {
            cycles: 100,
            retired: 50,
            spec_mode_entries: 2,
            advance_restarts: 1,
            rs_reuses: 9,
            ..RunStats::default()
        };
        let t = s.to_string();
        assert!(t.contains("100 cycles"));
        assert!(t.contains("2 advance episodes"));
        let plain = RunStats { cycles: 10, retired: 5, ..RunStats::default() };
        assert!(!plain.to_string().contains("advance"));
    }

    #[test]
    fn breakdown_charges_and_totals() {
        let mut b = CycleBreakdown::default();
        b.charge(StallKind::Execution);
        b.charge(StallKind::Execution);
        b.charge(StallKind::Load);
        b.charge(StallKind::FrontEnd);
        b.charge(StallKind::Other);
        assert_eq!(b.total(), 5);
        assert_eq!(b.stall(), 3);
        assert_eq!(b.get(StallKind::Execution), 2);
        assert_eq!(b.get(StallKind::Load), 1);
    }

    #[test]
    fn breakdown_addition() {
        let mut a = CycleBreakdown { execution: 1, front_end: 2, other: 3, load: 4 };
        let b = CycleBreakdown { execution: 10, front_end: 20, other: 30, load: 40 };
        a += b;
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn ipc_and_speedup() {
        let a = RunStats { cycles: 100, retired: 150, ..RunStats::default() };
        let b = RunStats { cycles: 200, retired: 150, ..RunStats::default() };
        assert!((a.ipc() - 1.5).abs() < 1e-12);
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_guards() {
        let z = RunStats::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.mispredict_rate(), 0.0);
    }

    #[test]
    fn stall_kind_display() {
        assert_eq!(StallKind::FrontEnd.to_string(), "front-end");
        assert_eq!(StallKind::ALL.len(), 4);
    }
}
