//! Quickstart: build a tiny EPIC program by hand, compile it, and run it
//! on the multipass pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flea_flicker::compiler::{compile, CompilerOptions};
use flea_flicker::engine::{ExecutionModel, MachineConfig, SimCase};
use flea_flicker::isa::{Inst, MemoryImage, Op, Program, Reg};
use flea_flicker::multipass::Multipass;

fn main() {
    // A little loop: sum the first 100 integers stored in memory.
    let mut p = Program::new();
    let setup = p.add_block();
    let body = p.add_block();
    let exit = p.add_block();
    p.push(setup, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x1000)); // cursor
    p.push(setup, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(100)); // counter
    p.push(body, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(1)));
    p.push(body, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(4)));
    p.push(body, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(8));
    p.push(body, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1));
    p.push(body, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)));
    p.push(body, Inst::new(Op::Br { target: body }).qp(Reg::pred(1)));
    p.push(exit, Inst::new(Op::Halt));

    // Compile: list scheduling into 6-wide EPIC issue groups + RESTART
    // insertion for critical loop SCCs (none here).
    let program = compile(&p, &CompilerOptions::default());
    println!("compiled program:\n{program}");

    // Data memory: values 1..=100.
    let mut mem = MemoryImage::new();
    for i in 0..100u64 {
        mem.store(0x1000 + i * 8, i + 1);
    }

    // Run on the multipass pipeline with the paper's Table 2 machine.
    let case = SimCase::new(&program, mem);
    let result = Multipass::new(MachineConfig::itanium2_base()).run(&case);

    println!("sum               = {}", result.final_state.int(3));
    println!("cycles            = {}", result.stats.cycles);
    println!("retired           = {}", result.stats.retired);
    println!("IPC               = {:.2}", result.stats.ipc());
    println!("cycle breakdown   = {:?}", result.stats.breakdown);
    println!("advance episodes  = {}", result.stats.spec_mode_entries);
    assert_eq!(result.final_state.int(3), 5050);
}
