//! Per-instruction-queue-entry multipass state: the result store (RS) with
//! E-bits and S-bits, and the SMAQ address (paper §3.1, §3.6).

/// The preserved result of a successfully preexecuted instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RsResult {
    /// A register result.
    Value(u64),
    /// The instruction was a (qualified-off or result-less) no-op.
    Nop,
    /// A preexecuted store: the resolved address and data operand, to be
    /// performed architecturally in rally mode without re-reading operands.
    Store {
        /// Effective address from the SMAQ.
        addr: u64,
        /// Data operand preserved in the RS.
        data: u64,
    },
}

/// Multipass state attached to one instruction-queue entry.
///
/// Entries are created lazily when advance mode first touches a sequence
/// number and are discarded when the entry retires or is squashed.
#[derive(Clone, Copy, Debug, Default)]
pub struct MpEntry {
    /// E-bit: a preserved result exists (available from `rs_ready_at`).
    pub e_bit: bool,
    /// The preserved result.
    pub result: Option<RsResult>,
    /// Cycle at which the preserved result is available (loads deposit
    /// their value when the miss returns — §3.5).
    pub rs_ready_at: u64,
    /// S-bit: the (load) result is data speculative and must be verified
    /// value-wise in rally mode (§3.6).
    pub s_bit: bool,
    /// The result was derived from a data-speculative value; advance-mode
    /// side effects (fetch redirects, predictor training) are suppressed.
    pub tainted: bool,
    /// SMAQ entry: effective address resolved during advance execution.
    pub smaq_addr: Option<u64>,
    /// An advance-resolved branch already redirected fetch; records the
    /// corrected successor so rally does not re-flush.
    pub resolved_next: Option<Option<ff_isa::Pc>>,
    /// The predictor was already trained for this branch by advance
    /// execution.
    pub branch_trained: bool,
}

impl MpEntry {
    /// Whether the preserved result is available at cycle `now`.
    pub fn rs_available(&self, now: u64) -> bool {
        self.e_bit && self.rs_ready_at <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_respects_ready_cycle() {
        let e = MpEntry {
            e_bit: true,
            result: Some(RsResult::Value(5)),
            rs_ready_at: 10,
            ..MpEntry::default()
        };
        assert!(!e.rs_available(9));
        assert!(e.rs_available(10));
    }

    #[test]
    fn default_entry_has_no_result() {
        let e = MpEntry::default();
        assert!(!e.e_bit);
        assert!(!e.rs_available(u64::MAX));
        assert!(e.result.is_none());
    }
}
