//! Deterministic seeded fault injection.
//!
//! Each [`FaultClass`] arms one of the `fault_*` hooks on
//! [`MultipassConfig`]; the hook silently corrupts the `N`-th occurrence of
//! its event (a result-store merge, a load wakeup, ...). Determinism is the
//! point: a `(class, index)` pair always corrupts the same dynamic event,
//! so a detection proved in a test stays proved in CI and a missed
//! detection is replayable.
//!
//! The coverage contract — every fault class is caught by at least one
//! checker — is enforced by [`run_faulted`]'s callers: `ff-sentinel fault`
//! in CI and the crate's tests. Any fault that *fires* is observable (the
//! hooks corrupt events the checkers audit directly), so scanning indices
//! past the end of a run's event stream simply yields clean runs.

use ff_engine::SimCase;
use ff_isa::{MemoryImage, Program};
use ff_multipass::{Multipass, MultipassConfig};

use crate::{check_model, demo, SentinelReport};

/// Cycle watchdog for faulted runs: a dropped wakeup wedges the pipeline
/// forever, so faulted runs must time out rather than hang. Large enough
/// that a warped-latency run (~100k stalled cycles) still completes.
pub const FAULT_CYCLE_BUDGET: u64 = 400_000;

/// The injectable fault classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// The `N`-th result-store merge XORs the merged value with 1 —
    /// silent architectural register corruption.
    RegisterBitFlip,
    /// The `N`-th architectural load wakeup is dropped: its destination
    /// register stays pending essentially forever.
    DroppedWakeup,
    /// The `N`-th data read's completion is warped far past any legal
    /// hierarchy latency.
    WarpedCacheLatency,
    /// The `N`-th MSHR allocation is never deallocated.
    LostMshrDealloc,
    /// The `N`-th ASC forward that should carry the data-speculation (S)
    /// bit forwards without it, skipping rally verification.
    StaleAscForward,
    /// The `N`-th execution-op wakeup insertion is dropped: the
    /// destination register never transitions back to ready, modeling a
    /// lost insertion into a wakeup-driven ready set.
    DroppedReadyInsert,
}

impl FaultClass {
    /// All six classes.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::RegisterBitFlip,
        FaultClass::DroppedWakeup,
        FaultClass::WarpedCacheLatency,
        FaultClass::LostMshrDealloc,
        FaultClass::StaleAscForward,
        FaultClass::DroppedReadyInsert,
    ];

    /// Stable short name (used by the CLI and CI).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::RegisterBitFlip => "reg-flip",
            FaultClass::DroppedWakeup => "dropped-wakeup",
            FaultClass::WarpedCacheLatency => "warp-latency",
            FaultClass::LostMshrDealloc => "lost-mshr",
            FaultClass::StaleAscForward => "stale-asc",
            FaultClass::DroppedReadyInsert => "dropped-ready-insert",
        }
    }

    /// Parses a fault-class name.
    pub fn parse(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The sentinels expected to catch this class.
    pub fn expected_sentinels(self) -> &'static [&'static str] {
        match self {
            FaultClass::RegisterBitFlip => &["golden"],
            FaultClass::DroppedWakeup => &["scoreboard-srf"],
            FaultClass::WarpedCacheLatency => &["scoreboard-srf"],
            FaultClass::LostMshrDealloc => &["mshr"],
            FaultClass::StaleAscForward => &["asc"],
            FaultClass::DroppedReadyInsert => &["scoreboard-srf"],
        }
    }

    /// Arms this fault on the `index`-th occurrence of its event.
    pub fn apply(self, cfg: &mut MultipassConfig, index: u64) {
        match self {
            FaultClass::RegisterBitFlip => cfg.fault_corrupt_rs_merge = Some(index),
            FaultClass::DroppedWakeup => cfg.fault_drop_wakeup = Some(index),
            FaultClass::WarpedCacheLatency => cfg.fault_warp_cache_latency = Some(index),
            FaultClass::LostMshrDealloc => cfg.fault_lose_mshr_dealloc = Some(index),
            FaultClass::StaleAscForward => cfg.fault_stale_asc_forward = Some(index),
            FaultClass::DroppedReadyInsert => cfg.fault_drop_ready_insert = Some(index),
        }
    }

    /// The demo kernel guaranteed to reach this class's fault site at
    /// index 0.
    pub fn workload(self) -> (Program, MemoryImage) {
        match self {
            FaultClass::StaleAscForward => demo::forwarding(),
            _ => demo::chase(32),
        }
    }
}

/// A seeded linear-congruential fault-site picker. Deterministic: the same
/// seed always yields the same `(class, index)` campaign.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// Creates an injector from a seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    fn next_u64(&mut self) -> u64 {
        // Knuth's MMIX LCG constants; plenty for picking fault sites.
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state >> 16
    }

    /// Picks the next fault: a class and a small occurrence index (small so
    /// the site usually lands within a short run's event stream).
    pub fn next_fault(&mut self) -> (FaultClass, u64) {
        let class = FaultClass::ALL[(self.next_u64() % FaultClass::ALL.len() as u64) as usize];
        let index = self.next_u64() % 4;
        (class, index)
    }
}

/// Runs this class's demo kernel on the multipass model with the fault
/// armed at `index`, under the full checker set.
pub fn run_faulted(class: FaultClass, index: u64) -> SentinelReport {
    let (p, mem) = class.workload();
    let case = SimCase::new(&p, mem).with_cycle_budget(FAULT_CYCLE_BUDGET);
    let mut cfg = MultipassConfig::default();
    class.apply(&mut cfg, index);
    let mut model = Multipass::with_config(cfg);
    check_model(&mut model, &case)
}

/// Whether `report` shows the fault was caught by a sentinel expected to
/// catch this class.
pub fn detected(class: FaultClass, report: &SentinelReport) -> bool {
    class.expected_sentinels().iter().any(|s| report.fired(s))
}
