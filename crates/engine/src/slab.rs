//! Allocation-free in-flight state containers.
//!
//! Two structures back the "zero heap allocation per instruction in steady
//! state" invariant (DESIGN.md §7e):
//!
//! * [`Slab`] — a generational arena. Freed slots go on a free list and are
//!   reused; every slot carries a generation counter bumped on free, so a
//!   stale [`SlotId`] held across a reuse can never silently read the new
//!   occupant ([`Slab::get`] returns `None` on a generation mismatch, and
//!   debug builds additionally assert).
//! * [`InFlightIndex`] — an ordered map over *monotonically allocated*
//!   sequence numbers, as produced by the fetch stream. Because live seqs
//!   always span a bounded window (the fetch buffer bounds how far the
//!   newest live entry can run ahead of the oldest), a power-of-two ring
//!   indexed by `seq & mask` gives O(1) insert/lookup/remove and ascending
//!   iteration identical to a `BTreeMap<u64, T>` range walk — with zero
//!   allocation once the ring has reached the window size.
//!
//! Both structures count their growth events ([`Slab::alloc_events`],
//! [`InFlightIndex::alloc_events`]) so models can surface an `alloc_count`
//! that provably stays flat after warm-up.

/// Handle to a [`Slab`] slot: the slot index plus the generation observed at
/// insertion. A handle outliving its value (freed, possibly reused) fails
/// the generation check instead of aliasing the new occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotId {
    index: u32,
    gen: u32,
}

impl SlotId {
    /// The raw slot index (stable for the lifetime of the value).
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The generation this handle was issued under.
    pub fn generation(self) -> u32 {
        self.gen
    }
}

#[derive(Clone, Debug)]
struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// A generational slab allocator: stable handles, free-list reuse, and
/// generation-checked access.
///
/// # Examples
///
/// ```
/// use ff_engine::slab::Slab;
///
/// let mut slab = Slab::with_capacity(8);
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.get(a), Some(&"alpha"));
/// assert_eq!(slab.remove(a), Some("alpha"));
/// // The freed slot is reused, but the stale handle is caught.
/// let c = slab.insert("gamma");
/// assert_eq!(c.index(), a.index());
/// assert_eq!(slab.get(a), None);
/// assert_eq!(slab.get(c), Some(&"gamma"));
/// assert_eq!(slab.get(b), Some(&"beta"));
/// ```
#[derive(Clone, Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    alloc_events: u64,
}

impl<T> Slab<T> {
    /// An empty slab that will allocate on first insert.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty slab with room for `capacity` values before any growth.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            len: 0,
            alloc_events: if capacity > 0 { 1 } else { 0 },
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no value is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Times the slab's backing storage grew (including the initial
    /// allocation). Flat in steady state.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// Inserts `value`, reusing a freed slot when one exists.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` slots would be required.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free list pointed at a live slot");
            slot.value = Some(value);
            return SlotId { index, gen: slot.gen };
        }
        let index = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
        if self.slots.len() == self.slots.capacity() {
            self.alloc_events += 1;
        }
        self.slots.push(Slot { gen: 0, value: Some(value) });
        SlotId { index, gen: 0 }
    }

    fn slot(&self, id: SlotId) -> Option<&Slot<T>> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.gen != id.gen {
            debug_assert!(
                slot.value.is_none() || slot.gen != id.gen,
                "generation bookkeeping corrupted"
            );
            return None;
        }
        slot.value.as_ref()?;
        Some(slot)
    }

    /// The value behind `id`, or `None` when the slot was freed (and
    /// possibly reused) since the handle was issued.
    pub fn get(&self, id: SlotId) -> Option<&T> {
        self.slot(id).and_then(|s| s.value.as_ref())
    }

    /// Mutable access behind `id`, generation-checked like [`Slab::get`].
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.value.as_mut()
    }

    /// Removes and returns the value behind `id`; the slot's generation is
    /// bumped so every outstanding handle to it becomes stale.
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        let value = slot.value.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        if self.free.len() == self.free.capacity() {
            self.alloc_events += 1;
        }
        self.free.push(id.index);
        self.len -= 1;
        Some(value)
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// An ordered map over monotonically allocated sequence numbers, backed by
/// a power-of-two ring indexed `seq & mask`.
///
/// The container exploits the shape of a pipeline's in-flight window: seqs
/// are allocated in increasing order, and the set of live seqs always fits
/// in a bounded span (retirement trails fetch by at most the instruction
/// buffer). Under that span bound, distinct live seqs can never collide in
/// the ring; should the span ever exceed the ring (a mis-sized capacity),
/// the ring transparently doubles and re-seats its entries — counted in
/// [`InFlightIndex::alloc_events`] — so behaviour stays identical to a
/// `BTreeMap<u64, T>` and only the counter betrays the misconfiguration.
///
/// Ascending iteration between two seqs matches `BTreeMap::range`
/// semantics, which is what keeps squash walks order-identical to the old
/// implementation.
#[derive(Clone, Debug)]
pub struct InFlightIndex<T> {
    slots: Vec<Option<(u64, T)>>,
    mask: u64,
    /// One past the highest seq ever inserted (clamped down on squash).
    tail: u64,
    /// Lower bound on live seqs: everything below has been removed.
    floor: u64,
    len: usize,
    alloc_events: u64,
}

impl<T> InFlightIndex<T> {
    /// An index sized for a live span of `span` seqs (rounded up to a power
    /// of two). Choose the pipeline's instruction-buffer capacity; the
    /// structure then never reallocates.
    pub fn with_span(span: usize) -> Self {
        let cap = span.max(2).next_power_of_two();
        InFlightIndex {
            slots: (0..cap).map(|_| None).collect(),
            mask: (cap - 1) as u64,
            tail: 0,
            floor: 0,
            len: 0,
            alloc_events: 1,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the highest live seq ever inserted (squash clamps it).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Seq below which no live entry exists.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Times the ring grew, including its initial allocation. Flat in
    /// steady state; growth past warm-up means the span was under-sized.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    fn idx(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    /// The entry for `seq`, if live.
    pub fn get(&self, seq: u64) -> Option<&T> {
        match &self.slots[self.idx(seq)] {
            Some((s, v)) if *s == seq => Some(v),
            _ => None,
        }
    }

    /// Mutable access to the entry for `seq`, if live.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut T> {
        let i = self.idx(seq);
        match &mut self.slots[i] {
            Some((s, v)) if *s == seq => Some(v),
            _ => None,
        }
    }

    /// Doubles the ring until no two live seqs collide, re-seating every
    /// live entry at its new home slot.
    fn grow(&mut self) {
        loop {
            let cap = (self.mask as usize + 1) * 2;
            let mut next: Vec<Option<(u64, T)>> = (0..cap).map(|_| None).collect();
            let mask = (cap - 1) as u64;
            let mut collided = false;
            for (s, v) in self.slots.drain(..).flatten() {
                let i = (s & mask) as usize;
                if next[i].is_some() {
                    collided = true;
                }
                next[i] = Some((s, v));
            }
            self.alloc_events += 1;
            self.slots = next;
            self.mask = mask;
            if !collided {
                return;
            }
        }
    }

    /// The entry for `seq`, inserted as `T::default()` when absent.
    pub fn get_or_default(&mut self, seq: u64) -> &mut T
    where
        T: Default,
    {
        debug_assert!(seq >= self.floor, "seq {seq} below floor {}", self.floor);
        loop {
            let i = self.idx(seq);
            match &self.slots[i] {
                Some((s, _)) if *s == seq => break,
                None => break,
                // A different live seq occupies this slot: the live span
                // exceeded the ring; grow and retry.
                Some(_) => self.grow(),
            }
        }
        let i = self.idx(seq);
        let slot = &mut self.slots[i];
        if slot.is_none() {
            *slot = Some((seq, T::default()));
            self.len += 1;
            self.tail = self.tail.max(seq + 1);
        }
        match slot {
            Some((_, v)) => v,
            None => unreachable!("slot was just filled"),
        }
    }

    /// Removes and returns the entry for `seq`.
    ///
    /// Calling this with `seq == floor` (whether or not an entry exists)
    /// commits that no entry below `seq + 1` will ever be inserted again
    /// and advances the floor — the multipass DEQ retires the head seq in
    /// strictly ascending order, so retirement naturally drives the floor.
    /// Empty slots above the floor are *not* skipped: a sparse seq with no
    /// entry today may still gain one (advance-mode passes revisit older
    /// seqs), so only an explicit head removal may raise the bound.
    pub fn remove(&mut self, seq: u64) -> Option<T> {
        let i = self.idx(seq);
        let out = match &self.slots[i] {
            Some((s, _)) if *s == seq => {
                let (_, v) = self.slots[i].take().expect("checked above");
                self.len -= 1;
                Some(v)
            }
            _ => None,
        };
        if seq == self.floor {
            self.floor = seq + 1;
            self.tail = self.tail.max(self.floor);
        }
        out
    }

    /// Removes every entry with seq >= `from`, invoking `f` on each in
    /// ascending seq order — the exact order a `BTreeMap` range walk
    /// produced. O(span), allocation-free.
    pub fn squash_from(&mut self, from: u64, mut f: impl FnMut(u64, T)) {
        for seq in from.max(self.floor)..self.tail {
            let i = self.idx(seq);
            if matches!(&self.slots[i], Some((s, _)) if *s == seq) {
                let (_, v) = self.slots[i].take().expect("checked above");
                self.len -= 1;
                f(seq, v);
            }
        }
        self.tail = self.tail.min(from).max(self.floor);
    }

    /// Visits every live entry in ascending seq order.
    pub fn for_each(&self, mut f: impl FnMut(u64, &T)) {
        for seq in self.floor..self.tail {
            if let Some(v) = self.get(seq) {
                f(seq, v);
            }
        }
    }

    /// Drops every entry and resets the seq bounds (end-of-run reuse).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.tail = 0;
        self.floor = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn slab_reuses_freed_slots_and_catches_stale_handles() {
        let mut slab = Slab::with_capacity(4);
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), Some(10));
        assert_eq!(slab.remove(a), None, "double free is caught");
        let c = slab.insert(30);
        assert_eq!(c.index(), a.index(), "slot is reused");
        assert_ne!(c.generation(), a.generation());
        assert_eq!(slab.get(a), None, "stale handle cannot read the reuse");
        assert_eq!(slab.get_mut(a), None);
        assert_eq!(slab.get(b), Some(&20));
        assert_eq!(slab.get(c), Some(&30));
    }

    #[test]
    fn slab_with_capacity_never_grows_within_capacity() {
        let mut slab = Slab::with_capacity(8);
        let start = slab.alloc_events();
        let ids: Vec<SlotId> = (0..8).map(|i| slab.insert(i)).collect();
        for id in &ids {
            slab.remove(*id);
        }
        for i in 0..8 {
            slab.insert(i + 100);
        }
        assert_eq!(slab.alloc_events(), start, "churn within capacity is allocation-free");
    }

    #[test]
    fn slab_growth_is_counted() {
        let mut slab = Slab::new();
        assert_eq!(slab.alloc_events(), 0);
        for i in 0..100 {
            slab.insert(i);
        }
        assert!(slab.alloc_events() > 0);
    }

    #[test]
    fn index_matches_btreemap_on_mixed_ops() {
        let mut index: InFlightIndex<u64> = InFlightIndex::with_span(16);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut seq = 0u64;
        // Interleave inserts, removes-at-floor (retire), and squashes.
        for round in 0..50u64 {
            for _ in 0..3 {
                *index.get_or_default(seq) += seq;
                *model.entry(seq).or_default() += seq;
                seq += 1;
            }
            if round % 4 == 3 {
                let from = seq - 2;
                let mut squashed = Vec::new();
                index.squash_from(from, |s, v| squashed.push((s, v)));
                let keys: Vec<u64> = model.range(from..).map(|(&s, _)| s).collect();
                let expect: Vec<(u64, u64)> =
                    keys.iter().map(|k| (*k, model.remove(k).unwrap())).collect();
                assert_eq!(squashed, expect, "squash order/content diverges");
                seq = from;
            }
            if round % 3 == 2 {
                if let Some((&oldest, _)) = model.iter().next() {
                    assert_eq!(index.remove(oldest), model.remove(&oldest));
                }
            }
            let mut got = Vec::new();
            index.for_each(|s, v| got.push((s, *v)));
            let expect: Vec<(u64, u64)> = model.iter().map(|(&s, &v)| (s, v)).collect();
            assert_eq!(got, expect, "iteration diverges after round {round}");
        }
    }

    #[test]
    fn index_grows_when_span_is_undersized_and_counts_it() {
        let mut index: InFlightIndex<u64> = InFlightIndex::with_span(2);
        let before = index.alloc_events();
        for seq in 0..32 {
            *index.get_or_default(seq) = seq;
        }
        assert!(index.alloc_events() > before, "collisions must grow the ring");
        for seq in 0..32 {
            assert_eq!(index.get(seq), Some(&seq));
        }
    }

    #[test]
    fn index_sized_to_span_never_allocates_after_construction() {
        let mut index: InFlightIndex<u64> = InFlightIndex::with_span(64);
        assert_eq!(index.alloc_events(), 1);
        let mut floor = 0u64;
        for seq in 0..10_000u64 {
            *index.get_or_default(seq) = seq;
            // Keep the live span under 64, retiring from the floor.
            if seq >= 63 {
                assert_eq!(index.remove(floor), Some(floor));
                floor += 1;
            }
        }
        assert_eq!(index.alloc_events(), 1, "steady state is allocation-free");
    }

    #[test]
    fn squash_clamps_tail_so_seqs_can_be_reissued() {
        let mut index: InFlightIndex<u64> = InFlightIndex::with_span(8);
        for seq in 0..6 {
            *index.get_or_default(seq) = seq;
        }
        index.squash_from(3, |_, _| {});
        assert_eq!(index.tail(), 3);
        // Refetched seqs land in the now-empty slots.
        *index.get_or_default(3) = 99;
        assert_eq!(index.get(3), Some(&99));
        let mut seqs = Vec::new();
        index.for_each(|s, _| seqs.push(s));
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn clear_resets_bounds() {
        let mut index: InFlightIndex<u64> = InFlightIndex::with_span(8);
        for seq in 0..5 {
            *index.get_or_default(seq) = seq;
        }
        index.clear();
        assert!(index.is_empty());
        assert_eq!(index.tail(), 0);
        *index.get_or_default(0) = 7;
        assert_eq!(index.get(0), Some(&7));
    }
}
