//! Register identifiers and register classes.
//!
//! The simulated architecture exposes 128 integer registers, 128
//! floating-point registers and 64 predicate registers to the instruction
//! set, matching the machine evaluated in the paper (§4). Integer register
//! `r0` reads as zero and predicate register `p0` reads as true, mirroring
//! the Itanium convention; writes to either are ignored.

use std::fmt;

/// Number of architecturally visible integer registers.
pub const NUM_INT_REGS: usize = 128;
/// Number of architecturally visible floating-point registers.
pub const NUM_FP_REGS: usize = 128;
/// Number of architecturally visible predicate registers.
pub const NUM_PRED_REGS: usize = 64;

/// Register class: which of the three architectural files a register lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General-purpose integer register file (`r0..r127`).
    Int,
    /// Floating-point register file (`f0..f127`).
    Fp,
    /// Single-bit predicate register file (`p0..p63`).
    Pred,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
            RegClass::Pred => write!(f, "pred"),
        }
    }
}

/// An architectural register identifier: a class plus an index within the
/// class's file.
///
/// # Examples
///
/// ```
/// use ff_isa::{Reg, RegClass};
/// let r = Reg::int(17);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.index(), 17);
/// assert!(!r.is_hardwired());
/// assert!(Reg::int(0).is_hardwired());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    class: RegClass,
    index: u8,
}

impl Reg {
    /// Creates an integer register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_INT_REGS`.
    pub fn int(index: u8) -> Self {
        assert!((index as usize) < NUM_INT_REGS, "integer register index {index} out of range");
        Reg { class: RegClass::Int, index }
    }

    /// Creates a floating-point register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_FP_REGS`.
    pub fn fp(index: u8) -> Self {
        assert!((index as usize) < NUM_FP_REGS, "fp register index {index} out of range");
        Reg { class: RegClass::Fp, index }
    }

    /// Creates a predicate register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_PRED_REGS`.
    pub fn pred(index: u8) -> Self {
        assert!((index as usize) < NUM_PRED_REGS, "predicate register index {index} out of range");
        Reg { class: RegClass::Pred, index }
    }

    /// The register's class.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// The register's index within its class's file.
    pub fn index(&self) -> u8 {
        self.index
    }

    /// Whether this register is a hardwired constant (`r0` = 0, `p0` = true).
    /// Writes to hardwired registers are ignored by all models.
    pub fn is_hardwired(&self) -> bool {
        self.index == 0 && matches!(self.class, RegClass::Int | RegClass::Pred)
    }

    /// A dense index over all three register files, useful for flat
    /// scoreboard / A-bit vectors: integer registers occupy `0..128`,
    /// floating-point `128..256`, predicates `256..320`.
    pub fn flat_index(&self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_INT_REGS + self.index as usize,
            RegClass::Pred => NUM_INT_REGS + NUM_FP_REGS + self.index as usize,
        }
    }

    /// Total number of flat register slots (see [`Reg::flat_index`]).
    pub const FLAT_COUNT: usize = NUM_INT_REGS + NUM_FP_REGS + NUM_PRED_REGS;

    /// Reconstructs a register from its [`Reg::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `flat >= Reg::FLAT_COUNT`.
    pub fn from_flat_index(flat: usize) -> Self {
        if flat < NUM_INT_REGS {
            Reg::int(flat as u8)
        } else if flat < NUM_INT_REGS + NUM_FP_REGS {
            Reg::fp((flat - NUM_INT_REGS) as u8)
        } else if flat < Self::FLAT_COUNT {
            Reg::pred((flat - NUM_INT_REGS - NUM_FP_REGS) as u8)
        } else {
            panic!("flat register index {flat} out of range");
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
            RegClass::Pred => write!(f, "p{}", self.index),
        }
    }
}

/// The always-true qualifying predicate `p0`.
pub const P0: Reg = Reg { class: RegClass::Pred, index: 0 };

/// The always-zero integer register `r0`.
pub const R0: Reg = Reg { class: RegClass::Int, index: 0 };

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_round_trips() {
        for flat in 0..Reg::FLAT_COUNT {
            let r = Reg::from_flat_index(flat);
            assert_eq!(r.flat_index(), flat);
        }
    }

    #[test]
    fn hardwired_registers() {
        assert!(Reg::int(0).is_hardwired());
        assert!(Reg::pred(0).is_hardwired());
        assert!(!Reg::fp(0).is_hardwired());
        assert!(!Reg::int(1).is_hardwired());
        assert!(!Reg::pred(63).is_hardwired());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg::int(5).to_string(), "r5");
        assert_eq!(Reg::fp(12).to_string(), "f12");
        assert_eq!(Reg::pred(3).to_string(), "p3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pred_index_out_of_range_panics() {
        let _ = Reg::pred(64);
    }

    #[test]
    fn constants_match_constructors() {
        assert_eq!(P0, Reg::pred(0));
        assert_eq!(R0, Reg::int(0));
    }

    #[test]
    fn flat_classes_are_disjoint() {
        assert_eq!(Reg::int(127).flat_index(), 127);
        assert_eq!(Reg::fp(0).flat_index(), 128);
        assert_eq!(Reg::fp(127).flat_index(), 255);
        assert_eq!(Reg::pred(0).flat_index(), 256);
        assert_eq!(Reg::pred(63).flat_index(), 319);
        assert_eq!(Reg::FLAT_COUNT, 320);
    }
}
