//! Intra-block dependence DAG construction.

use ff_isa::Inst;

/// Kind of dependence between two instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write: the consumer must issue at least the producer's
    /// latency later.
    Raw,
    /// Write-after-write: the later writer must issue in a strictly later
    /// issue group (no dynamic renaming in an EPIC pipeline).
    Waw,
    /// Write-after-read: the writer may share the reader's issue group
    /// (group reads happen before writes) but not precede it.
    War,
    /// Memory ordering between possibly aliasing accesses.
    Mem,
    /// Control ordering: everything precedes the block-terminating branch.
    Control,
}

/// A dependence edge `from -> to` over block-local instruction indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Producer index within the block.
    pub from: usize,
    /// Consumer index within the block.
    pub to: usize,
    /// Kind of dependence.
    pub kind: DepKind,
    /// Minimum issue-cycle separation: `cycle(to) >= cycle(from) + min_delay`.
    pub min_delay: u32,
}

/// Dependence DAG over the instructions of one basic block.
///
/// Edges point from producers to consumers with the minimum issue-cycle
/// separation implied by the dependence kind and the producer's latency.
/// Memory dependences use the alias regions the front end carries
/// ([`Inst::may_alias`]); load→load pairs are always independent.
#[derive(Clone, Debug)]
pub struct DepDag {
    n: usize,
    edges: Vec<DepEdge>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl DepDag {
    /// Builds the DAG for a block of instructions in source order.
    pub fn build(block: &[Inst]) -> Self {
        let n = block.len();
        let mut edges = Vec::new();
        for (j, bj) in block.iter().enumerate() {
            #[allow(clippy::needless_range_loop)] // i is also an edge index
            for i in 0..j {
                let bi = &block[i];
                let mut push = |kind: DepKind, min_delay: u32| {
                    edges.push(DepEdge { from: i, to: j, kind, min_delay });
                };
                // RAW: i writes a register j reads.
                if let Some(w) = bi.writes() {
                    if bj.reads().any(|r| r == w) {
                        push(DepKind::Raw, bi.op().latency());
                    }
                    // WAW: both write the same register.
                    if bj.writes() == Some(w) {
                        push(DepKind::Waw, 1);
                    }
                }
                // WAR: i reads a register j writes.
                if let Some(w) = bj.writes() {
                    if bi.reads().any(|r| r == w) {
                        push(DepKind::War, 0);
                    }
                }
                // Memory ordering (store involved, may-alias).
                if bi.may_alias(bj) && (bi.op().is_store() || bj.op().is_store()) {
                    let delay = if bi.op().is_store() && bj.op().is_load() {
                        1 // store -> load: forwardable only in a later group
                    } else if bi.op().is_load() && bj.op().is_store() {
                        0 // load -> store: may share a group (reads first)
                    } else {
                        1 // store -> store order
                    };
                    push(DepKind::Mem, delay);
                }
                // Control: branches anchor the end of the block.
                if bj.op().is_branch() && !bi.op().is_branch() {
                    push(DepKind::Control, 0);
                }
                if bi.op().is_branch() && !bj.op().is_branch() {
                    // Nothing may move across a branch (blocks end with
                    // branches in well-formed input, but be safe).
                    push(DepKind::Control, 1);
                }
                if bi.op().is_branch() && bj.op().is_branch() {
                    push(DepKind::Control, 1);
                }
            }
        }
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (e, edge) in edges.iter().enumerate() {
            succs[edge.from].push(e);
            preds[edge.to].push(e);
        }
        DepDag { n, edges, succs, preds }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Edges whose producer is `i`.
    pub fn succ_edges(&self, i: usize) -> impl Iterator<Item = &DepEdge> + '_ {
        self.succs[i].iter().map(move |&e| &self.edges[e])
    }

    /// Edges whose consumer is `i`.
    pub fn pred_edges(&self, i: usize) -> impl Iterator<Item = &DepEdge> + '_ {
        self.preds[i].iter().map(move |&e| &self.edges[e])
    }

    /// Longest-path priority of every node: the maximum accumulated
    /// `min_delay` (plus own latency contribution through RAW chains) from
    /// the node to any sink. Used as the list-scheduling priority.
    pub fn critical_path_priorities(&self) -> Vec<u32> {
        let mut prio = vec![0u32; self.n];
        // Nodes in source order form a topological order (edges only go
        // forward), so a reverse sweep computes longest paths.
        for i in (0..self.n).rev() {
            let mut best = 0;
            for e in self.succ_edges(i) {
                best = best.max(e.min_delay + prio[e.to]);
            }
            prio[i] = best;
        }
        prio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::{Op, Reg};

    fn add(d: u8, a: u8, b: u8) -> Inst {
        Inst::new(Op::Add).dst(Reg::int(d)).src(Reg::int(a)).src(Reg::int(b))
    }

    #[test]
    fn raw_edge_carries_latency() {
        let block = vec![
            Inst::new(Op::Mul).dst(Reg::int(1)).src(Reg::int(2)).src(Reg::int(3)),
            add(4, 1, 1),
        ];
        let dag = DepDag::build(&block);
        let raw: Vec<_> = dag.edges().iter().filter(|e| e.kind == DepKind::Raw).collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].min_delay, 5); // Mul latency
    }

    #[test]
    fn waw_and_war_edges() {
        let block = vec![add(1, 2, 3), add(4, 1, 1), add(1, 5, 5)];
        let dag = DepDag::build(&block);
        assert!(dag
            .edges()
            .iter()
            .any(|e| e.kind == DepKind::Waw && e.from == 0 && e.to == 2 && e.min_delay == 1));
        assert!(dag
            .edges()
            .iter()
            .any(|e| e.kind == DepKind::War && e.from == 1 && e.to == 2 && e.min_delay == 0));
    }

    #[test]
    fn disjoint_regions_have_no_mem_edge() {
        let block = vec![
            Inst::new(Op::Store).src(Reg::int(1)).src(Reg::int(2)).region(0),
            Inst::new(Op::Load).dst(Reg::int(3)).src(Reg::int(4)).region(1),
        ];
        let dag = DepDag::build(&block);
        assert!(!dag.edges().iter().any(|e| e.kind == DepKind::Mem));
    }

    #[test]
    fn aliasing_store_load_ordered() {
        let block = vec![
            Inst::new(Op::Store).src(Reg::int(1)).src(Reg::int(2)),
            Inst::new(Op::Load).dst(Reg::int(3)).src(Reg::int(4)),
        ];
        let dag = DepDag::build(&block);
        let mem: Vec<_> = dag.edges().iter().filter(|e| e.kind == DepKind::Mem).collect();
        assert_eq!(mem.len(), 1);
        assert_eq!(mem[0].min_delay, 1);
    }

    #[test]
    fn loads_never_order_with_loads() {
        let block = vec![
            Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(2)),
            Inst::new(Op::Load).dst(Reg::int(3)).src(Reg::int(4)),
        ];
        let dag = DepDag::build(&block);
        assert!(!dag.edges().iter().any(|e| e.kind == DepKind::Mem));
    }

    #[test]
    fn everything_precedes_the_branch() {
        let block = vec![add(1, 2, 3), Inst::new(Op::Br { target: ff_isa::program::BlockId(0) })];
        let dag = DepDag::build(&block);
        assert!(dag.edges().iter().any(|e| e.kind == DepKind::Control && e.from == 0 && e.to == 1));
    }

    #[test]
    fn priorities_reflect_chains() {
        // mul (lat 5) -> add (lat 1) -> add
        let block = vec![
            Inst::new(Op::Mul).dst(Reg::int(1)).src(Reg::int(2)).src(Reg::int(3)),
            add(4, 1, 1),
            add(5, 4, 4),
            add(9, 8, 8), // independent
        ];
        let dag = DepDag::build(&block);
        let prio = dag.critical_path_priorities();
        assert_eq!(prio[0], 6); // 5 (mul) + 1 (add)
        assert_eq!(prio[1], 1);
        assert_eq!(prio[2], 0);
        assert_eq!(prio[3], 0);
    }
}
