//! `ff-campaign` — the campaign runner CLI.
//!
//! ```text
//! ff-campaign run --all --scale test --jobs 4
//! ff-campaign run --filter model=MP --filter bench=mcf
//! ff-campaign resume --all
//! ff-campaign list --all --scale paper
//! ff-campaign status
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ff_engine::TickMode;
use ff_experiments::{HierKind, ModelKind, UnknownBenchmark};
use ff_harness::{
    full_grid, job::parse_scale, job::scale_name, read_manifest, render_all, run_campaign,
    write_manifest, ArtifactStore, CampaignOptions, JobFilter, JobSpec,
};
use ff_workloads::{Scale, Workload};

const USAGE: &str = "\
ff-campaign — parallel experiment campaign runner

USAGE:
    ff-campaign run    [OPTIONS]   execute the campaign (resumes from checkpoint)
    ff-campaign resume [OPTIONS]   alias for `run`
    ff-campaign list   [OPTIONS]   print the job plan without running it
    ff-campaign status [--out DIR] summarize the last run's manifest

OPTIONS:
    --all                 the full grid + seed-sensitivity + report jobs (default)
    --filter KEY=VALUE    keep only matching sim jobs; repeatable; keys:
                          model, hier, bench, seed (e.g. --filter model=MP)
    --scale test|paper    workload scale (default: test)
    --jobs N              worker threads (default: available parallelism)
    --retries N           extra attempts per failed job (default: 0)
    --cycle-budget N      per-job watchdog: abort a simulation after N cycles
    --sentinels           run every simulation under the ff-sentinel invariant
                          checkers; a violation fails the job
    --tick polling|event  how models advance simulated time (default: event).
                          Both modes produce byte-identical artifacts; polling
                          is the reference semantics for cross-checking the
                          event-driven fast path
    --quarantine-after N  skip jobs that failed N consecutive prior runs
                          (ledger: <out>/quarantine.json; --force bypasses)
    --out DIR             artifact directory (default: results/campaign/<scale>)
    --results DIR         where `run` renders the results files (default: results)
    --force               re-run jobs even when a valid artifact exists, and
                          retry quarantined jobs
    --no-render           skip rendering the results files after the run
    --quiet               suppress per-job progress lines
    --help                this text

Failed simulations leave a replayable crash bundle under <out>/bundles/;
replay one with `cargo run --release --example compare_divergence -- --bundle <path>`.

`run` exits 0 when every job succeeded (or was cached), 1 when any job
failed or was quarantined, and 2 on usage errors.";

struct Cli {
    cmd: String,
    scale: Scale,
    jobs: usize,
    retries: u32,
    cycle_budget: Option<u64>,
    sentinels: bool,
    tick: TickMode,
    quarantine_after: Option<u32>,
    out: Option<PathBuf>,
    results: PathBuf,
    force: bool,
    render: bool,
    quiet: bool,
    filter: JobFilter,
}

fn usage_err(msg: &str) -> String {
    format!("{msg}\n\n{USAGE}")
}

fn parse_filter(filter: &mut JobFilter, kv: &str) -> Result<(), String> {
    let (key, value) = kv
        .split_once('=')
        .ok_or_else(|| usage_err(&format!("bad --filter `{kv}` (want KEY=VALUE)")))?;
    match key {
        "model" => filter.models.push(ModelKind::parse(value).ok_or_else(|| {
            let names: Vec<&str> = ModelKind::ALL.iter().map(|m| m.name()).collect();
            usage_err(&format!("unknown model {value:?}; valid names: {}", names.join(", ")))
        })?),
        "hier" => filter.hiers.push(HierKind::parse(value).ok_or_else(|| {
            let names: Vec<&str> = HierKind::ALL.iter().map(|h| h.name()).collect();
            usage_err(&format!("unknown hierarchy {value:?}; valid names: {}", names.join(", ")))
        })?),
        "bench" => {
            // Validate up front so a typo fails before hours of simulation.
            if !Workload::NAMES.contains(&value) {
                return Err(usage_err(&UnknownBenchmark { name: value.to_string() }.to_string()));
            }
            filter.benches.push(value.to_string());
        }
        "seed" => {
            filter.seeds.push(value.parse().map_err(|_| usage_err(&format!("bad seed `{value}`")))?)
        }
        other => return Err(usage_err(&format!("unknown filter key `{other}`"))),
    }
    Ok(())
}

fn parse_cli(argv: &[String]) -> Result<Cli, String> {
    let cmd = argv.first().cloned().unwrap_or_default();
    if cmd.is_empty() || cmd == "--help" || cmd == "-h" || cmd == "help" {
        return Err(USAGE.to_string());
    }
    if !matches!(cmd.as_str(), "run" | "resume" | "list" | "status") {
        return Err(usage_err(&format!("unknown command `{cmd}`")));
    }
    let mut cli = Cli {
        cmd,
        scale: Scale::Test,
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        retries: 0,
        cycle_budget: None,
        sentinels: false,
        tick: TickMode::default(),
        quarantine_after: None,
        out: None,
        results: PathBuf::from("results"),
        force: false,
        render: true,
        quiet: false,
        filter: JobFilter::default(),
    };
    let mut it = argv[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| usage_err(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--all" => {} // the default plan; accepted for explicitness
            "--filter" => parse_filter(&mut cli.filter, &value("--filter")?)?,
            "--scale" => {
                let v = value("--scale")?;
                cli.scale = parse_scale(&v)
                    .ok_or_else(|| usage_err(&format!("bad --scale `{v}` (want test|paper)")))?;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                cli.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| usage_err(&format!("bad --jobs `{v}`")))?;
            }
            "--retries" => {
                let v = value("--retries")?;
                cli.retries = v.parse().map_err(|_| usage_err(&format!("bad --retries `{v}`")))?;
            }
            "--cycle-budget" => {
                let v = value("--cycle-budget")?;
                cli.cycle_budget =
                    Some(v.parse().map_err(|_| usage_err(&format!("bad --cycle-budget `{v}`")))?);
            }
            "--sentinels" => cli.sentinels = true,
            "--tick" => {
                let v = value("--tick")?;
                cli.tick = match v.as_str() {
                    "polling" => TickMode::Polling,
                    "event" => TickMode::EventDriven,
                    _ => return Err(usage_err(&format!("bad --tick `{v}` (want polling|event)"))),
                };
            }
            "--quarantine-after" => {
                let v = value("--quarantine-after")?;
                cli.quarantine_after = Some(
                    v.parse::<u32>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| usage_err(&format!("bad --quarantine-after `{v}`")))?,
                );
            }
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--results" => cli.results = PathBuf::from(value("--results")?),
            "--force" => cli.force = true,
            "--no-render" => cli.render = false,
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(usage_err(&format!("unknown option `{other}`"))),
        }
    }
    Ok(cli)
}

fn plan(cli: &Cli) -> Vec<JobSpec> {
    full_grid(cli.scale).into_iter().filter(|j| cli.filter.matches(j)).collect()
}

fn out_dir(cli: &Cli) -> PathBuf {
    cli.out.clone().unwrap_or_else(|| PathBuf::from("results/campaign").join(scale_name(cli.scale)))
}

fn cmd_list(cli: &Cli) -> ExitCode {
    let jobs = plan(cli);
    for j in &jobs {
        println!("{}  {:016x}", j.id(), j.config_hash());
    }
    eprintln!("{} jobs at {} scale", jobs.len(), scale_name(cli.scale));
    ExitCode::SUCCESS
}

fn cmd_status(cli: &Cli) -> ExitCode {
    let dir = out_dir(cli);
    match read_manifest(&dir) {
        Ok(m) => {
            println!(
                "campaign at {}: scale {}, {} workers, git {}, wall {:.1}s",
                dir.display(),
                m.scale,
                m.workers,
                m.git,
                m.wall_s
            );
            println!(
                "jobs: {} ok, {} cached, {} failed, {} quarantined",
                m.ok, m.cached, m.failed, m.quarantined
            );
            for id in &m.failed_ids {
                println!("  failed: {id}");
            }
            if m.failed + m.quarantined > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("ff-campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(cli: &Cli) -> ExitCode {
    let jobs = plan(cli);
    if jobs.is_empty() {
        eprintln!("ff-campaign: the filter matches no jobs");
        return ExitCode::from(2);
    }
    let dir = out_dir(cli);
    let mut opts = CampaignOptions::new(cli.scale, &dir);
    opts.workers = cli.jobs;
    opts.attempts = cli.retries + 1;
    opts.cycle_budget = cli.cycle_budget;
    opts.force = cli.force;
    opts.progress = !cli.quiet;
    opts.sentinels = cli.sentinels;
    opts.tick = cli.tick;
    opts.quarantine_after = cli.quarantine_after;
    if !cli.quiet {
        eprintln!(
            "ff-campaign: {} jobs at {} scale on {} workers -> {}",
            jobs.len(),
            scale_name(cli.scale),
            opts.workers,
            dir.display()
        );
    }
    let report = match run_campaign(&jobs, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ff-campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_manifest(&dir, &report) {
        eprintln!("ff-campaign: writing manifest: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "ff-campaign: {} ok, {} cached, {} failed, {} quarantined in {:.1}s",
        report.ok(),
        report.cached(),
        report.failed(),
        report.quarantined(),
        report.wall_s
    );
    for f in report.failures() {
        let err = f.error.as_ref().map_or_else(|| "unknown".to_string(), |e| e.to_string());
        eprintln!("  failed: {} ({err})", f.spec.id());
    }
    for q in report.quarantined_jobs() {
        eprintln!("  quarantined: {}", q.spec.id());
    }
    if report.failed() + report.quarantined() > 0 {
        return ExitCode::FAILURE;
    }
    // Rendering needs the complete artifact set; a filtered run keeps its
    // artifacts but cannot regenerate the aggregate results files.
    if cli.render && cli.filter.is_empty() {
        let mut store = ArtifactStore::new(&dir, cli.scale);
        match render_all(&mut store, &cli.results, report.wall_s) {
            Ok(written) => {
                if !cli.quiet {
                    eprintln!("ff-campaign: rendered {} results files", written.len());
                }
            }
            Err(e) => {
                eprintln!("ff-campaign: rendering results: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if cli.render && !cli.quiet {
        eprintln!("ff-campaign: filtered run; skipping results rendering");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&argv) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match cli.cmd.as_str() {
        "run" | "resume" => cmd_run(&cli),
        "list" => cmd_list(&cli),
        "status" => cmd_status(&cli),
        _ => unreachable!("parse_cli validated the command"),
    }
}
