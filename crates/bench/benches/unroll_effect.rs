//! Quantifies the static cross-iteration ILP that compiler loop unrolling
//! buys the in-order pipelines — the effect (together with modulo
//! scheduling) that lets the paper's OpenIMPACT baseline sit much closer to
//! ideal out-of-order execution than naive code does. See EXPERIMENTS.md,
//! deviation 1. The report itself lives in `ff_experiments::reports` so
//! `ff-campaign` can regenerate it too.

fn main() {
    print!("{}", ff_experiments::reports::unroll_effect());
}
