//! The fetch engine and instruction buffer.
//!
//! [`FetchUnit`] walks the predicted path of a program, up to `width`
//! instructions per cycle, through the L1I, and appends [`FetchedInst`]s to
//! a bounded FIFO buffer. Backends address buffer entries by *sequence
//! number* — a monotonically increasing id over the speculative dynamic
//! instruction stream — which is exactly what the multipass DEQ/PEEK
//! pointers of the paper's Figure 2 need.

use std::collections::VecDeque;

use ff_isa::{Op, Pc, Program};
use ff_mem::{AccessKind, MemAccess, MemorySystem};

use crate::gshare::Gshare;

/// One instruction in the speculative fetch stream.
#[derive(Clone, Debug)]
pub struct FetchedInst {
    /// Position in the speculative dynamic stream (0-based, monotonic).
    pub seq: u64,
    /// Static location of the instruction.
    pub pc: Pc,
    /// The operation (a plain `Copy` — backends that need operand registers
    /// re-read the full [`Inst`] via `program.inst(pc)`, which avoids
    /// cloning the register arrays through every buffered entry).
    pub op: Op,
    /// Whether the instruction carries a non-trivial qualifying predicate.
    pub predicated: bool,
    /// The pc the fetch stream continued at after this instruction
    /// (`None` after `Halt`). Branch resolution compares the actual
    /// successor against this.
    pub predicted_next: Option<Pc>,
    /// For conditional branches: the predicted direction.
    pub predicted_taken: bool,
    /// For conditional branches: the gshare history snapshot at prediction.
    pub history_snapshot: u16,
    /// Cycle at which this instruction became available to the backend.
    pub fetched_at: u64,
}

impl FetchedInst {
    /// Whether this entry is a conditional branch that consulted gshare.
    pub fn used_predictor(&self) -> bool {
        matches!(self.op, Op::Br { .. }) && self.predicated
    }
}

/// Fetch engine plus instruction buffer.
///
/// Timing rules:
/// * at most one I-cache access per cycle, covering up to `width`
///   sequential instructions;
/// * an L1I miss blocks fetch until the miss completes;
/// * a predicted-taken branch ends the fetch group; fetch resumes at the
///   target next cycle (one redirect bubble);
/// * the buffer is bounded; fetch stalls when full;
/// * a backend-initiated flush ([`FetchUnit::flush_after`]) squashes younger
///   entries and blocks fetch for the supplied refill penalty.
#[derive(Clone, Debug)]
pub struct FetchUnit {
    buffer: VecDeque<FetchedInst>,
    predictor: Gshare,
    fetch_pc: Option<Pc>,
    next_seq: u64,
    head_seq: u64,
    capacity: usize,
    width: usize,
    blocked_until: u64,
    fetched_halt: bool,
    stat_fetched: u64,
    stat_icache_stall_cycles: u64,
    stat_squashed: u64,
}

impl FetchUnit {
    /// Creates a fetch unit positioned at the entry of `program`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `width` is zero.
    pub fn new(program: &Program, capacity: usize, width: usize, predictor: Gshare) -> Self {
        assert!(capacity > 0 && width > 0, "capacity and width must be positive");
        FetchUnit {
            buffer: VecDeque::with_capacity(capacity),
            predictor,
            fetch_pc: program.first_pc_from(ff_isa::program::BlockId(0)),
            next_seq: 0,
            head_seq: 0,
            capacity,
            width,
            blocked_until: 0,
            fetched_halt: false,
            stat_fetched: 0,
            stat_icache_stall_cycles: 0,
            stat_squashed: 0,
        }
    }

    /// Advances fetch by one cycle, possibly appending up to `width`
    /// instructions fetched at cycle `now`.
    pub fn tick(&mut self, program: &Program, mem: &mut MemorySystem, now: u64) {
        if now < self.blocked_until || self.fetched_halt {
            return;
        }
        let mut pc = match self.fetch_pc {
            Some(pc) => pc,
            None => return,
        };
        if self.buffer.len() >= self.capacity {
            return;
        }
        // One I-cache access for the whole fetch group.
        match mem.access(pc.fetch_address(), AccessKind::InstFetch, now) {
            MemAccess::Done { complete_at, .. } => {
                if complete_at > now + 1 {
                    // L1I miss: group delivered when the miss returns.
                    self.stat_icache_stall_cycles += complete_at - (now + 1);
                    self.blocked_until = complete_at;
                    return;
                }
            }
            MemAccess::Retry => {
                self.blocked_until = now + 1;
                return;
            }
        }

        for _ in 0..self.width {
            if self.buffer.len() >= self.capacity {
                break;
            }
            let inst = match program.inst(pc) {
                Some(i) => i,
                None => {
                    self.fetch_pc = None;
                    return;
                }
            };
            let mut predicted_taken = false;
            let mut history_snapshot = 0;
            let mut redirect = false;
            let predicted_next = match inst.op() {
                Op::Halt => {
                    self.fetched_halt = true;
                    None
                }
                Op::Br { target } => {
                    if inst.is_predicated() {
                        let (taken, snap) = self.predictor.predict(pc);
                        predicted_taken = taken;
                        history_snapshot = snap;
                        if taken {
                            redirect = true;
                            program.first_pc_from(*target)
                        } else {
                            program.next_pc(pc)
                        }
                    } else {
                        // Unconditional: statically taken, no predictor use.
                        predicted_taken = true;
                        redirect = true;
                        program.first_pc_from(*target)
                    }
                }
                _ => program.next_pc(pc),
            };
            self.buffer.push_back(FetchedInst {
                seq: self.next_seq,
                pc,
                op: *inst.op(),
                predicated: inst.is_predicated(),
                predicted_next,
                predicted_taken,
                history_snapshot,
                fetched_at: now + 1,
            });
            self.next_seq += 1;
            self.stat_fetched += 1;
            if self.fetched_halt {
                self.fetch_pc = None;
                return;
            }
            match predicted_next {
                Some(next) => {
                    pc = next;
                    self.fetch_pc = Some(next);
                    if redirect {
                        // Taken branch ends the group with a redirect bubble.
                        self.blocked_until = now + 2;
                        return;
                    }
                }
                None => {
                    self.fetch_pc = None;
                    return;
                }
            }
        }
    }

    /// The entry with sequence number `seq`, if it is currently buffered.
    pub fn get(&self, seq: u64) -> Option<&FetchedInst> {
        if seq < self.head_seq {
            return None;
        }
        self.buffer.get((seq - self.head_seq) as usize)
    }

    /// Sequence number of the oldest buffered instruction.
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// Sequence number the next fetched instruction will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of buffered instructions.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Whether the buffer is full (fetch is stalling on backpressure).
    pub fn is_full(&self) -> bool {
        self.buffer.len() >= self.capacity
    }

    /// Whether a `Halt` has been fetched (fetch has stopped).
    pub fn halted(&self) -> bool {
        self.fetched_halt
    }

    /// Whether fetch is currently blocked (I-miss, redirect, or flush
    /// penalty) at cycle `now`.
    pub fn blocked_at(&self, now: u64) -> bool {
        now < self.blocked_until
    }

    /// If [`FetchUnit::tick`] at cycle `now` would be a pure no-op (no
    /// I-cache access, no buffered instruction, no stat change), the
    /// earliest future cycle at which the passage of time alone could
    /// change that — `u64::MAX` when only a backend action (a pop after
    /// a full buffer, a flush) can re-enable fetch. `None` when fetch is
    /// active at `now`.
    ///
    /// This is the fetch unit's wake event for the event-driven tick. A
    /// full buffer reports `u64::MAX` even while an I-miss is pending,
    /// because within a quiescent window nothing pops the buffer; the
    /// first pop ends the window and re-polls.
    pub fn quiescent_until(&self, now: u64) -> Option<u64> {
        if self.fetched_halt || self.fetch_pc.is_none() || self.buffer.len() >= self.capacity {
            return Some(u64::MAX);
        }
        if now < self.blocked_until {
            return Some(self.blocked_until);
        }
        None
    }

    /// Pops the oldest instruction (architectural consumption).
    pub fn pop_front(&mut self) -> Option<FetchedInst> {
        let e = self.buffer.pop_front();
        if e.is_some() {
            self.head_seq += 1;
        }
        e
    }

    /// Squashes every buffered instruction with `seq > after_seq`, restarts
    /// fetch at `new_pc`, charges the front-end refill penalty (fetch
    /// resumes at `resume_at`), and repairs the branch predictor's global
    /// history from `snapshot`/`actual_taken`. This is the mispredict-
    /// recovery path used by every backend.
    pub fn flush_after(
        &mut self,
        after_seq: u64,
        new_pc: Option<Pc>,
        resume_at: u64,
        snapshot: u16,
        actual_taken: bool,
    ) {
        while let Some(back) = self.buffer.back() {
            if back.seq > after_seq {
                self.buffer.pop_back();
                self.next_seq -= 1;
                self.stat_squashed += 1;
            } else {
                break;
            }
        }
        // next_seq may have been reduced; keep monotonicity with head.
        debug_assert!(self.next_seq >= self.head_seq);
        self.fetch_pc = new_pc;
        self.fetched_halt = self.buffer.iter().any(|f| matches!(f.op, Op::Halt));
        self.blocked_until = self.blocked_until.max(resume_at);
        self.predictor.repair(snapshot, actual_taken);
    }

    /// Mutable access to the predictor (resolution-time training).
    pub fn predictor_mut(&mut self) -> &mut Gshare {
        &mut self.predictor
    }

    /// Shared access to the predictor.
    pub fn predictor(&self) -> &Gshare {
        &self.predictor
    }

    /// Total instructions fetched.
    pub fn fetched(&self) -> u64 {
        self.stat_fetched
    }

    /// Total instructions squashed by flushes.
    pub fn squashed(&self) -> u64 {
        self.stat_squashed
    }

    /// Cycles fetch was blocked by L1I misses.
    pub fn icache_stall_cycles(&self) -> u64 {
        self.stat_icache_stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::{program::BlockId, Inst, Reg};
    use ff_mem::HierarchyConfig;

    fn straightline(n: usize) -> Program {
        let mut p = Program::new();
        let b = p.add_block();
        for i in 0..n {
            p.push(b, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(i as i64));
        }
        p.push(b, Inst::new(Op::Halt));
        p
    }

    fn unit(p: &Program, cap: usize) -> (FetchUnit, MemorySystem) {
        (
            FetchUnit::new(p, cap, 6, Gshare::new(1024)),
            MemorySystem::new(HierarchyConfig::itanium2_base()),
        )
    }

    /// Runs fetch until the buffer holds `want` entries or `max_cycles` pass.
    fn fill(f: &mut FetchUnit, p: &Program, m: &mut MemorySystem, want: usize, max_cycles: u64) {
        let mut now = 0;
        while f.len() < want && now < max_cycles {
            f.tick(p, m, now);
            now += 1;
        }
    }

    #[test]
    fn fetches_up_to_width_per_cycle_after_warmup() {
        let p = straightline(20);
        let (mut f, mut m) = unit(&p, 64);
        // Cycle 0: cold I-miss blocks the first group.
        f.tick(&p, &mut m, 0);
        assert_eq!(f.len(), 0);
        assert!(f.icache_stall_cycles() > 0);
        fill(&mut f, &p, &mut m, 6, 1_000);
        assert!(f.len() >= 6);
        assert_eq!(f.get(0).unwrap().pc, Pc::ENTRY);
    }

    #[test]
    fn stops_at_halt() {
        let p = straightline(3);
        let (mut f, mut m) = unit(&p, 64);
        fill(&mut f, &p, &mut m, 4, 1_000);
        assert!(f.halted());
        assert_eq!(f.len(), 4); // 3 adds + halt
        let last = f.get(3).unwrap();
        assert!(matches!(last.op, Op::Halt));
        assert_eq!(last.predicted_next, None);
        // Further ticks fetch nothing.
        let n = f.len();
        for c in 2_000..2_010 {
            f.tick(&p, &mut m, c);
        }
        assert_eq!(f.len(), n);
    }

    #[test]
    fn capacity_backpressure() {
        let p = straightline(100);
        let (mut f, mut m) = unit(&p, 8);
        fill(&mut f, &p, &mut m, 8, 1_000);
        assert_eq!(f.len(), 8);
        assert!(f.is_full());
        f.tick(&p, &mut m, 5_000);
        assert_eq!(f.len(), 8);
        // Consuming two frees room.
        f.pop_front();
        f.pop_front();
        assert_eq!(f.head_seq(), 2);
        fill(&mut f, &p, &mut m, 8, 10_000);
        assert_eq!(f.len(), 8);
        assert!(f.get(1).is_none()); // popped entries are gone
        assert!(f.get(2).is_some());
    }

    #[test]
    fn unconditional_branch_redirects_with_bubble() {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::Br { target: b2 }));
        p.push(b1, Inst::new(Op::Nop));
        p.push(b2, Inst::new(Op::Halt));
        let (mut f, mut m) = unit(&p, 64);
        fill(&mut f, &p, &mut m, 2, 1_000);
        let br = f.get(0).unwrap();
        assert!(br.predicted_taken);
        assert_eq!(br.predicted_next, Some(Pc::new(BlockId(2), 0)));
        let next = f.get(1).unwrap();
        assert_eq!(next.pc, Pc::new(BlockId(2), 0));
        // The redirect bubble means the target was fetched a cycle later.
        assert!(next.fetched_at > br.fetched_at);
    }

    #[test]
    fn conditional_branch_uses_predictor() {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        p.push(b0, Inst::new(Op::CmpEq).dst(Reg::pred(1)).src(Reg::int(0)).src(Reg::int(0)));
        p.push(b0, Inst::new(Op::Br { target: b0 }).qp(Reg::pred(1)));
        p.push(b1, Inst::new(Op::Halt));
        let (mut f, mut m) = unit(&p, 64);
        fill(&mut f, &p, &mut m, 3, 1_000);
        let br = f.get(1).unwrap();
        assert!(br.used_predictor());
        // Untrained predictor says weakly not-taken: fall through to halt.
        assert!(!br.predicted_taken);
        assert_eq!(br.predicted_next, Some(Pc::new(BlockId(1), 0)));
    }

    #[test]
    fn flush_after_squashes_younger_and_redirects() {
        let p = straightline(50);
        let (mut f, mut m) = unit(&p, 64);
        fill(&mut f, &p, &mut m, 12, 1_000);
        let before = f.len() as u64;
        f.flush_after(3, Some(Pc::new(BlockId(0), 30)), 200, 0, true);
        assert_eq!(f.len(), 4); // seqs 0..=3 survive
        assert_eq!(f.next_seq(), 4);
        assert_eq!(f.squashed(), before - 4);
        assert!(f.blocked_at(199));
        assert!(!f.blocked_at(200));
        // Refetch resumes at the redirected pc.
        let mut now = 200;
        while f.len() < 5 && now < 1_000 {
            f.tick(&p, &mut m, now);
            now += 1;
        }
        assert_eq!(f.get(4).unwrap().pc, Pc::new(BlockId(0), 30));
        assert!(!f.halted());
    }

    #[test]
    fn flush_during_icache_miss_extends_the_block() {
        let p = straightline(50);
        let (mut f, mut m) = unit(&p, 64);
        // Cycle 0 starts a cold I-miss (blocked until ~145).
        f.tick(&p, &mut m, 0);
        assert!(f.blocked_at(100));
        // A flush with a later resume keeps the later block.
        f.flush_after(u64::MAX, Some(Pc::ENTRY), 300, 0, false);
        assert!(f.blocked_at(299));
        assert!(!f.blocked_at(300));
    }

    #[test]
    fn predictor_training_changes_fetch_direction() {
        // A loop branch: untrained gshare predicts not-taken (falls
        // through); after training, fetch follows the backedge.
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        p.push(b0, Inst::new(Op::Nop));
        p.push(b0, Inst::new(Op::Br { target: b0 }).qp(Reg::pred(1)));
        p.push(b1, Inst::new(Op::Halt));
        let (mut f, mut m) = unit(&p, 16);
        fill(&mut f, &p, &mut m, 3, 1_000);
        let br = f.get(1).unwrap();
        assert!(!br.predicted_taken);
        // Flush to refetch, then train the branch taken at the history the
        // refetched prediction will actually use (gshare is
        // history-indexed).
        let pc = br.pc;
        let snap = br.history_snapshot;
        f.flush_after(0, Some(Pc::new(BlockId(0), 1)), 2_000, snap, true);
        let refetch_history = f.predictor().history();
        for _ in 0..20 {
            f.predictor_mut().update(pc, refetch_history, true);
        }
        let mut now = 2_000;
        while f.len() < 3 && now < 3_000 {
            f.tick(&p, &mut m, now);
            now += 1;
        }
        let br2 = f.get(1).unwrap();
        assert!(matches!(br2.op, Op::Br { .. }));
        assert!(br2.predicted_taken, "trained branch should fetch the backedge");
        assert_eq!(f.get(2).unwrap().pc, Pc::new(BlockId(0), 0));
    }

    #[test]
    fn flush_preserving_halt_keeps_halted_flag() {
        let p = straightline(2); // 2 adds + halt = seqs 0,1,2
        let (mut f, mut m) = unit(&p, 64);
        fill(&mut f, &p, &mut m, 3, 1_000);
        assert!(f.halted());
        f.flush_after(2, None, 50, 0, false);
        assert!(f.halted(), "halt is still buffered");
        f.flush_after(1, Some(Pc::ENTRY), 60, 0, false);
        assert!(!f.halted(), "halt was squashed");
    }
}
