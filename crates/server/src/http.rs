//! A hand-rolled HTTP/1.1 server layer over `std::net`.
//!
//! The build environment is offline (no hyper, no tokio), and the
//! campaign service needs exactly four routes with small JSON bodies, so
//! this implements the minimal subset the `ff-harness` client speaks:
//! `Content-Length` bodies, `Connection: close` per request, a fixed
//! accept-thread + worker-thread model. No keep-alive, no chunked
//! encoding, no TLS — additions the protocol does not need.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection read/write timeout: a stalled client must never wedge
/// an HTTP worker for good.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Largest accepted request body (a full-grid campaign request is < 2 KiB;
/// anything near this bound is hostile or corrupt).
const MAX_BODY: usize = 1 << 20;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Decoded body (empty when absent).
    pub body: String,
}

/// A response: status code plus JSON body text.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body text (already-rendered JSON).
    pub body: String,
}

impl Response {
    /// A 200 response with `body`.
    pub fn ok(body: String) -> Response {
        Response { status: 200, body }
    }

    /// An error response with a `{"error": msg}` body.
    pub fn error(status: u16, msg: &str) -> Response {
        let body = ff_harness::json::Json::obj(vec![(
            "error",
            ff_harness::json::Json::Str(msg.to_string()),
        )])
        .render();
        Response { status, body }
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// On a malformed request line, an oversized body, or an IO failure; the
/// connection is simply dropped in that case.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_ascii_uppercase();
    let target = parts.next().ok_or("request line missing target")?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| e.to_string())?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| "bad Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds the {MAX_BODY} limit"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    let body = String::from_utf8(body).map_err(|_| "non-UTF-8 body".to_string())?;
    Ok(Request { method, path, body })
}

/// Writes `response` to `stream` (best effort: a vanished client is not
/// an error worth propagating).
pub fn write_response(stream: &mut TcpStream, response: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.body.len(),
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

/// The accept thread plus a fixed pool of HTTP worker threads. Accepted
/// connections queue on an mpsc channel; each worker reads one request,
/// calls the handler, writes the response, and closes.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread plus `threads` HTTP workers dispatching to `handler`.
    ///
    /// # Errors
    ///
    /// On failure to bind.
    pub fn start<H>(addr: &str, threads: usize, handler: H) -> std::io::Result<HttpServer>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || loop {
                    // Holding the receiver lock only while dequeuing keeps
                    // workers independent once they own a connection.
                    let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    let Ok(mut stream) = next else { return };
                    match read_request(&mut stream) {
                        Ok(request) => {
                            let response = handler(&request);
                            write_response(&mut stream, &response);
                        }
                        Err(msg) => {
                            write_response(&mut stream, &Response::error(400, &msg));
                        }
                    }
                })
            })
            .collect();
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // Dropping `tx` lets every idle worker's recv() fail and exit.
        });
        Ok(HttpServer { addr: local, stop, accept: Some(accept), workers })
    }

    /// The bound address (reports the real port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins every thread.
    /// In-flight requests complete; queued connections are dropped.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a throwaway connection to
        // ourselves unblocks it so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
