//! The repeat-failure quarantine ledger.
//!
//! A config that fails every campaign run (a genuinely wedged grid point,
//! a panic-inducing model bug) would otherwise burn its full watchdog
//! budget on every resume. With `--quarantine-after N`, the campaign
//! keeps a `quarantine.json` ledger of *consecutive* failed runs per job
//! id; a job at or past the threshold is skipped as
//! [`crate::JobStatus::Quarantined`] instead of executed. Any successful
//! (or cached) run clears a job's strikes, and `--force` bypasses the
//! quarantine to give a fixed config its retrial.

use std::collections::BTreeMap;
use std::path::Path;

use crate::json::Json;

/// The ledger file name inside the campaign output directory.
pub const QUARANTINE_NAME: &str = "quarantine.json";

/// Consecutive-failure strikes per job id, persisted across campaign runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Quarantine {
    strikes: BTreeMap<String, u64>,
}

impl Quarantine {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads the ledger from `dir`. A missing or corrupt file is an empty
    /// ledger — quarantine degrades gracefully, it never blocks a run.
    pub fn load(dir: &Path) -> Quarantine {
        let Ok(text) = std::fs::read_to_string(dir.join(QUARANTINE_NAME)) else {
            return Quarantine::new();
        };
        let Ok(doc) = Json::parse(&text) else {
            return Quarantine::new();
        };
        let mut strikes = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = doc.get("strikes") {
            for (id, count) in pairs {
                if let Some(n) = count.as_u64() {
                    strikes.insert(id.clone(), n);
                }
            }
        }
        Quarantine { strikes }
    }

    /// Consecutive failed runs recorded for `id`.
    pub fn strikes(&self, id: &str) -> u64 {
        self.strikes.get(id).copied().unwrap_or(0)
    }

    /// Whether `id` has accumulated at least `threshold` consecutive
    /// failures and should be skipped.
    pub fn blocks(&self, id: &str, threshold: u32) -> bool {
        self.strikes(id) >= u64::from(threshold.max(1))
    }

    /// Records one run of `id`: a failure adds a strike, anything else
    /// clears them.
    pub fn record(&mut self, id: &str, failed: bool) {
        if failed {
            *self.strikes.entry(id.to_string()).or_insert(0) += 1;
        } else {
            self.strikes.remove(id);
        }
    }

    /// Writes the ledger into `dir`.
    ///
    /// # Errors
    ///
    /// On failure to write the file.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let pairs: Vec<(String, Json)> =
            self.strikes.iter().map(|(id, n)| (id.clone(), Json::U64(*n))).collect();
        let doc = Json::obj(vec![("format", Json::U64(1)), ("strikes", Json::Obj(pairs))]);
        std::fs::write(dir.join(QUARANTINE_NAME), doc.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strikes_accumulate_and_clear() {
        let mut q = Quarantine::new();
        q.record("a", true);
        q.record("a", true);
        q.record("b", true);
        assert_eq!(q.strikes("a"), 2);
        assert!(q.blocks("a", 2));
        assert!(!q.blocks("a", 3));
        assert!(!q.blocks("b", 2));
        q.record("a", false);
        assert_eq!(q.strikes("a"), 0);
        assert!(!q.blocks("a", 1));
    }

    #[test]
    fn ledger_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("ff-quarantine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut q = Quarantine::new();
        q.record("mcf/MP/base/s0@test", true);
        q.record("mcf/MP/base/s0@test", true);
        q.save(&dir).unwrap();
        let back = Quarantine::load(&dir);
        assert_eq!(back, q);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_or_corrupt_ledger_is_empty() {
        let dir = std::env::temp_dir().join(format!("ff-quarantine-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Quarantine::load(&dir), Quarantine::new());
        std::fs::write(dir.join(QUARANTINE_NAME), "not json").unwrap();
        assert_eq!(Quarantine::load(&dir), Quarantine::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
