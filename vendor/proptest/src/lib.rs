//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate reimplements the subset of proptest the workspace uses:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `boxed`, ranges,
//!   tuples, and [`collection::vec`];
//! * `any::<T>()` for primitive types;
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros;
//! * a [`test_runner::TestRunner`] that replays `*.proptest-regressions`
//!   seed files (the standard `cc <64-hex-digit seed>` format) before
//!   generating fresh cases, and appends a seed line when a new failure is
//!   found.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case is reported verbatim (with its seed
//!   persisted); the `ff-debug` divergence triage subsystem is the intended
//!   minimization aid in this repository.
//! * **Deterministic case generation.** Fresh cases derive from a seed
//!   hashed from the test's source path and name, so CI runs are
//!   reproducible. Set `PROPTEST_RNG_SEED=<u64>` to perturb the stream.
//! * **Seed replay is self-consistent, not stream-compatible.** A seed
//!   recorded by real proptest replays as *some* deterministic case, not
//!   bit-for-bit the case real proptest would generate.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` inner attribute followed by `fn` items whose
/// arguments are either `name in strategy` bindings or plain `name: Type`
/// arguments (sugar for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                file!(),
                stringify!($name),
            );
            let outcome = runner.run(&($($strat,)+), |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(message) = outcome {
                panic!("{}", message);
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($config)
            $(#[$meta])*
            fn $name($($arg in $crate::arbitrary::any::<$ty>()),+) $body
            $($rest)*
        );
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fails the
/// current test case without panicking (the runner reports the case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// `prop_assume!(cond)` — rejects (skips) the current case when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
/// Supports the unweighted form only: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
