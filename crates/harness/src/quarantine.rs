//! The repeat-failure quarantine ledger.
//!
//! A config that fails every campaign run (a genuinely wedged grid point,
//! a panic-inducing model bug) would otherwise burn its full watchdog
//! budget on every resume. With `--quarantine-after N`, the campaign
//! keeps a `quarantine.json` ledger of *consecutive* failed runs per
//! **config hash**; a config at or past the threshold is skipped as
//! [`crate::JobStatus::Quarantined`] instead of executed. Any successful
//! (or cached) run clears a config's strikes, and `--force` bypasses the
//! quarantine to give a fixed config its retrial.
//!
//! Keying by config hash (not by per-campaign job index or id string)
//! makes the ledger multi-tenant: when several campaigns share one
//! artifact store — the `ff-server` case — a config quarantined by one
//! campaign is skipped, and reported as quarantined rather than failed,
//! when any other campaign resubmits the same grid point.

use std::collections::BTreeMap;
use std::path::Path;

use crate::job::JobSpec;
use crate::json::Json;

/// The ledger file name inside the campaign output directory.
pub const QUARANTINE_NAME: &str = "quarantine.json";

/// The ledger format version. Version 1 keyed strikes by job-id string;
/// version 2 keys them by config hash. A v1 ledger loads as empty (the
/// ledger is advisory and degrades gracefully; at worst a previously
/// quarantined config gets one more trial).
pub const QUARANTINE_FORMAT: u64 = 2;

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Entry {
    strikes: u64,
    /// Human-readable job id of the last recorded failure, kept so
    /// operators can read the ledger without reverse-hashing.
    id: String,
}

/// Consecutive-failure strikes per config hash, persisted across campaign
/// runs (and across campaigns: any campaign touching the same store sees
/// the same ledger).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Quarantine {
    strikes: BTreeMap<u64, Entry>,
}

impl Quarantine {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads the ledger from `dir`. A missing, corrupt, or pre-v2 file is
    /// an empty ledger — quarantine degrades gracefully, it never blocks
    /// a run.
    pub fn load(dir: &Path) -> Quarantine {
        let Ok(text) = std::fs::read_to_string(dir.join(QUARANTINE_NAME)) else {
            return Quarantine::new();
        };
        let Ok(doc) = Json::parse(&text) else {
            return Quarantine::new();
        };
        if doc.get("format").and_then(Json::as_u64) != Some(QUARANTINE_FORMAT) {
            return Quarantine::new();
        }
        let mut strikes = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = doc.get("strikes") {
            for (hash_hex, entry) in pairs {
                let Ok(hash) = u64::from_str_radix(hash_hex, 16) else { continue };
                let Some(n) = entry.get("strikes").and_then(Json::as_u64) else { continue };
                let id = entry.get("id").and_then(Json::as_str).unwrap_or("").to_string();
                strikes.insert(hash, Entry { strikes: n, id });
            }
        }
        Quarantine { strikes }
    }

    /// Consecutive failed runs recorded for `spec`'s config hash.
    pub fn strikes(&self, spec: &JobSpec) -> u64 {
        self.strikes_for_hash(spec.config_hash())
    }

    /// Consecutive failed runs recorded for a raw config hash.
    pub fn strikes_for_hash(&self, hash: u64) -> u64 {
        self.strikes.get(&hash).map_or(0, |e| e.strikes)
    }

    /// Whether `spec`'s config has accumulated at least `threshold`
    /// consecutive failures and should be skipped.
    pub fn blocks(&self, spec: &JobSpec, threshold: u32) -> bool {
        self.strikes(spec) >= u64::from(threshold.max(1))
    }

    /// Records one run of `spec`: a failure adds a strike, anything else
    /// clears them.
    pub fn record(&mut self, spec: &JobSpec, failed: bool) {
        if failed {
            let entry = self.strikes.entry(spec.config_hash()).or_default();
            entry.strikes += 1;
            entry.id = spec.id();
        } else {
            self.strikes.remove(&spec.config_hash());
        }
    }

    /// Writes the ledger into `dir`, durably (tmp + fsync + rename): a
    /// crash mid-save leaves the previous ledger intact, never a torn
    /// one.
    ///
    /// # Errors
    ///
    /// On failure to write the file.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let pairs: Vec<(String, Json)> = self
            .strikes
            .iter()
            .map(|(hash, e)| {
                (
                    format!("{hash:016x}"),
                    Json::obj(vec![
                        ("strikes", Json::U64(e.strikes)),
                        ("id", Json::Str(e.id.clone())),
                    ]),
                )
            })
            .collect();
        let doc = Json::obj(vec![
            ("format", Json::U64(QUARANTINE_FORMAT)),
            ("strikes", Json::Obj(pairs)),
        ]);
        crate::store::durable_write(&dir.join(QUARANTINE_NAME), &doc.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_experiments::{HierKind, ModelKind};
    use ff_workloads::Scale;

    fn spec(bench: &'static str) -> JobSpec {
        JobSpec::sim(ModelKind::Multipass, HierKind::Base, bench, 0, Scale::Test)
    }

    #[test]
    fn strikes_accumulate_and_clear() {
        let mut q = Quarantine::new();
        let a = spec("mcf");
        let b = spec("gzip");
        q.record(&a, true);
        q.record(&a, true);
        q.record(&b, true);
        assert_eq!(q.strikes(&a), 2);
        assert!(q.blocks(&a, 2));
        assert!(!q.blocks(&a, 3));
        assert!(!q.blocks(&b, 2));
        q.record(&a, false);
        assert_eq!(q.strikes(&a), 0);
        assert!(!q.blocks(&a, 1));
    }

    #[test]
    fn keyed_by_config_hash_not_campaign_position() {
        // The same grid point submitted by two different campaigns (any
        // job index, any plan order) shares one strike counter.
        let mut q = Quarantine::new();
        let campaign_one_job_7 = spec("mcf");
        let campaign_two_job_0 =
            JobSpec::sim(ModelKind::Multipass, HierKind::Base, "mcf", 0, Scale::Test);
        q.record(&campaign_one_job_7, true);
        q.record(&campaign_one_job_7, true);
        assert!(q.blocks(&campaign_two_job_0, 2), "hash-keyed strikes must cross campaigns");
        assert_eq!(q.strikes_for_hash(campaign_two_job_0.config_hash()), 2);
    }

    #[test]
    fn ledger_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("ff-quarantine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut q = Quarantine::new();
        q.record(&spec("mcf"), true);
        q.record(&spec("mcf"), true);
        q.save(&dir).unwrap();
        let back = Quarantine::load(&dir);
        assert_eq!(back, q);
        // The persisted form names the offender for human readers.
        let text = std::fs::read_to_string(dir.join(QUARANTINE_NAME)).unwrap();
        assert!(text.contains("mcf/MP/base/s0@test"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_corrupt_or_v1_ledger_is_empty() {
        let dir = std::env::temp_dir().join(format!("ff-quarantine-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Quarantine::load(&dir), Quarantine::new());
        std::fs::write(dir.join(QUARANTINE_NAME), "not json").unwrap();
        assert_eq!(Quarantine::load(&dir), Quarantine::new());
        // A v1 (id-keyed) ledger loads as empty rather than mis-keying.
        let v1 = "{\n  \"format\": 1,\n  \"strikes\": {\n    \"mcf/MP/base/s0@test\": 3\n  }\n}\n";
        std::fs::write(dir.join(QUARANTINE_NAME), v1).unwrap();
        assert_eq!(Quarantine::load(&dir), Quarantine::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
