//! Golden functional interpreter.
//!
//! [`Interpreter`] executes a [`Program`] with no timing model at all. Every
//! cycle-level pipeline in the workspace must finish in an architectural
//! state [`ArchState::semantically_eq`] to the interpreter's — this is the
//! primary correctness oracle of the repository.

use std::fmt;

use crate::eval::{alu, branch_taken, effective_address};
use crate::op::Op;
use crate::program::{Pc, Program};
use crate::state::ArchState;

/// Why an interpreter run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A `Halt` instruction executed.
    Halted,
    /// The step budget was exhausted before `Halt`.
    OutOfFuel,
}

/// Error produced when the interpreted program is malformed at run time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpretError {
    /// Control reached a pc with no instruction (fell off the program).
    InvalidPc(Pc),
}

impl fmt::Display for InterpretError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpretError::InvalidPc(pc) => write!(f, "control reached invalid pc {pc}"),
        }
    }
}

impl std::error::Error for InterpretError {}

/// A straightforward fetch–execute interpreter over a [`Program`].
///
/// # Examples
///
/// ```
/// use ff_isa::{Inst, Op, Program, Reg, interp::Interpreter};
/// let mut p = Program::new();
/// let b = p.add_block();
/// p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(5));
/// p.push(b, Inst::new(Op::Halt));
/// let mut i = Interpreter::new(&p);
/// i.run(100).unwrap();
/// assert_eq!(i.state().int(1), 5);
/// ```
#[derive(Debug)]
pub struct Interpreter<'a> {
    program: &'a Program,
    state: ArchState,
    pc: Option<Pc>,
    retired: u64,
    halted: bool,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter positioned at the program entry with zeroed
    /// architectural state.
    pub fn new(program: &'a Program) -> Self {
        Self::with_state(program, ArchState::new())
    }

    /// Creates an interpreter with a pre-initialized architectural state
    /// (e.g. a workload's data memory image).
    pub fn with_state(program: &'a Program, state: ArchState) -> Self {
        Interpreter {
            program,
            state,
            pc: program.first_pc_from(crate::program::BlockId(0)),
            retired: 0,
            halted: false,
        }
    }

    /// The current architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Consumes the interpreter, returning the final architectural state.
    pub fn into_state(self) -> ArchState {
        self.state
    }

    /// Dynamic instructions retired so far (predicated-false instructions
    /// count: they occupy the dynamic stream).
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether a `Halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The pc of the next instruction to execute (`None` only for invalid
    /// programs whose control escaped).
    pub fn pc(&self) -> Option<Pc> {
        if self.halted {
            None
        } else {
            self.pc
        }
    }

    /// Executes one dynamic instruction.
    ///
    /// Returns `Ok(true)` if the program is still running, `Ok(false)` once
    /// halted.
    ///
    /// # Errors
    ///
    /// Returns [`InterpretError::InvalidPc`] if control escapes the program
    /// (which [`Program::validate`] rules out for well-formed programs).
    pub fn step(&mut self) -> Result<bool, InterpretError> {
        if self.halted {
            return Ok(false);
        }
        let pc = match self.pc {
            Some(pc) => pc,
            None => {
                return Err(InterpretError::InvalidPc(Pc::new(
                    crate::program::BlockId(u32::MAX),
                    0,
                )))
            }
        };
        let inst = self.program.inst(pc).ok_or(InterpretError::InvalidPc(pc))?;
        let qp = self.state.read(inst.qp_reg()) != 0;
        let mut next = self.program.next_pc(pc);
        if qp {
            match inst.op() {
                Op::Halt => {
                    self.halted = true;
                    self.retired += 1;
                    return Ok(false);
                }
                Op::Br { target } => {
                    if branch_taken(qp) {
                        next = self.program.first_pc_from(*target);
                    }
                }
                Op::Load | Op::LoadFp => {
                    let base = self.state.read(inst.src_n(0).expect("load has base"));
                    let addr = effective_address(base, inst.imm_val());
                    let v = self.state.mem.load(addr);
                    if let Some(d) = inst.writes() {
                        self.state.write(d, v);
                    }
                }
                Op::Store => {
                    let base = self.state.read(inst.src_n(0).expect("store has base"));
                    let data = self.state.read(inst.src_n(1).expect("store has data"));
                    let addr = effective_address(base, inst.imm_val());
                    self.state.mem.store(addr, data);
                }
                Op::Nop | Op::Restart => {}
                op => {
                    let a = inst.src_n(0).map(|r| self.state.read(r)).unwrap_or(0);
                    let b = inst.src_n(1).map(|r| self.state.read(r)).unwrap_or(0);
                    let v = alu(op, a, b, inst.imm_val());
                    if let Some(d) = inst.writes() {
                        self.state.write(d, v);
                    }
                }
            }
        }
        self.retired += 1;
        self.pc = next;
        if self.pc.is_none() {
            // Only reachable for invalid programs; surface it on next step.
            self.pc = Some(Pc::new(crate::program::BlockId(u32::MAX), 0));
        }
        Ok(true)
    }

    /// Runs until `Halt` or until `fuel` dynamic instructions have executed.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpretError`] from [`Interpreter::step`].
    pub fn run(&mut self, fuel: u64) -> Result<StopReason, InterpretError> {
        for _ in 0..fuel {
            if !self.step()? {
                return Ok(StopReason::Halted);
            }
        }
        Ok(if self.halted { StopReason::Halted } else { StopReason::OutOfFuel })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::reg::Reg;

    /// Loop: r1 = 10; r2 = 0; do { r2 += r1; r1 -= 1 } while (r1 != 0)
    fn loop_program() -> Program {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(10));
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(0));
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(2)).src(Reg::int(2)).src(Reg::int(1)));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(-1));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)));
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
        p.push(b2, Inst::new(Op::Halt));
        p
    }

    #[test]
    fn loop_sums_correctly() {
        let p = loop_program();
        assert!(p.validate().is_ok());
        let mut i = Interpreter::new(&p);
        assert_eq!(i.run(10_000).unwrap(), StopReason::Halted);
        assert_eq!(i.state().int(2), 55);
        assert_eq!(i.state().int(1), 0);
    }

    #[test]
    fn fuel_limits_execution() {
        let p = loop_program();
        let mut i = Interpreter::new(&p);
        assert_eq!(i.run(3).unwrap(), StopReason::OutOfFuel);
        assert!(!i.is_halted());
        assert_eq!(i.retired(), 3);
    }

    #[test]
    fn memory_ops_round_trip() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x2000));
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(77));
        p.push(b, Inst::new(Op::Store).src(Reg::int(1)).src(Reg::int(2)).imm(8));
        p.push(b, Inst::new(Op::Load).dst(Reg::int(3)).src(Reg::int(1)).imm(8));
        p.push(b, Inst::new(Op::Halt));
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.state().int(3), 77);
        assert_eq!(i.state().mem.load(0x2008), 77);
    }

    #[test]
    fn predicated_false_is_noop_but_retires() {
        let mut p = Program::new();
        let b = p.add_block();
        // p1 stays false, so the guarded write must not happen.
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(1).qp(Reg::pred(1)));
        p.push(b, Inst::new(Op::Halt));
        let mut i = Interpreter::new(&p);
        i.run(10).unwrap();
        assert_eq!(i.state().int(1), 0);
        assert_eq!(i.retired(), 2);
    }

    #[test]
    fn restart_is_architectural_noop() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(4));
        p.push(b, Inst::new(Op::Restart).src(Reg::int(1)));
        p.push(b, Inst::new(Op::Halt));
        let mut i = Interpreter::new(&p);
        i.run(10).unwrap();
        assert_eq!(i.state().int(1), 4);
        assert!(i.is_halted());
    }

    #[test]
    fn step_after_halt_is_false() {
        let p = loop_program();
        let mut i = Interpreter::new(&p);
        i.run(10_000).unwrap();
        assert!(!i.step().unwrap());
    }
}
