//! Reproduces Table 1 at test scale: runs the out-of-order and multipass
//! models over the benchmark suite, collects per-structure activity, and
//! prints the Wattch-style peak and average power ratios.
//!
//! ```sh
//! cargo run --release --example power_report
//! ```

use flea_flicker::experiments::{table1_experiment, Suite};
use flea_flicker::power::{multipass_structures, out_of_order_structures};
use flea_flicker::workloads::Scale;

fn main() {
    // Structure inventory with peak power in model units.
    println!("out-of-order structures:");
    for set in out_of_order_structures() {
        for s in &set.structures {
            println!("  [{:<15}] {:<48} peak {:>10.0}", set.group, s.name, s.peak);
        }
    }
    println!("multipass structures:");
    for set in multipass_structures() {
        for s in &set.structures {
            println!("  [{:<15}] {:<48} peak {:>10.0}", set.group, s.name, s.peak);
        }
    }

    // Table 1 with measured activity.
    let mut suite = Suite::new(Scale::Test);
    let rows = table1_experiment(&mut suite);
    println!("\nTable 1 (ratios > 1 favor multipass):\n");
    println!("{}", flea_flicker::power::table1::render(&rows));
}
