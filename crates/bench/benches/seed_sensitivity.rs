//! Seed-sensitivity study: the headline result (multipass mean speedup over
//! in-order) must not be an artifact of one workload-generator seed. Runs
//! the full suite under several seeds and reports per-seed means and the
//! spread.

use ff_baselines::InOrder;
use ff_bench::scale_from_env;
use ff_engine::{ExecutionModel, MachineConfig, SimCase};
use ff_multipass::Multipass;
use ff_workloads::Workload;

fn main() {
    let scale = scale_from_env();
    let machine = MachineConfig::itanium2_base();
    println!("=== Seed sensitivity of the Figure 6 headline ({scale:?} scale) ===\n");
    let mut means = Vec::new();
    for seed in 0..4u64 {
        let mut total = 0.0;
        let mut n = 0.0;
        for name in Workload::NAMES {
            let w = Workload::by_name_seeded(name, scale, seed).expect("known benchmark");
            let case = SimCase::new(&w.program, w.mem.clone());
            let base = InOrder::new(machine).run(&case).stats.cycles as f64;
            let mp = Multipass::new(machine).run(&case).stats.cycles as f64;
            total += base / mp;
            n += 1.0;
        }
        let mean = total / n;
        println!("seed {seed}: mean MP speedup {mean:.3}x");
        means.push(mean);
    }
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = means.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nspread across seeds: {lo:.3}x .. {hi:.3}x ({:.1}% relative)",
        100.0 * (hi - lo) / lo
    );
}
