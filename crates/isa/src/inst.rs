//! Instruction encoding: opcode, operands, qualifying predicate, stop bit.

use std::fmt;

use crate::op::Op;
use crate::reg::{Reg, P0};

/// Maximum number of register sources an instruction can name.
pub const MAX_SRCS: usize = 2;

/// A single EPIC instruction.
///
/// Instructions are built with a lightweight builder style:
///
/// ```
/// use ff_isa::{Inst, Op, Reg};
/// let i = Inst::new(Op::Add)
///     .dst(Reg::int(3))
///     .src(Reg::int(1))
///     .src(Reg::int(2))
///     .stop(); // ends the compiler issue group
/// assert_eq!(i.srcs().count(), 2);
/// assert!(i.ends_group());
/// ```
///
/// Every instruction carries a *qualifying predicate* (default `p0`, always
/// true); when the predicate evaluates false at run time the instruction is
/// architecturally a no-op but still occupies an issue slot, as on Itanium.
/// The `stop` flag marks the end of a compiler-formed issue group (the EPIC
/// stop bit): the baseline in-order pipeline never issues instructions from
/// different groups in the same cycle, while multipass regrouping (paper
/// §3.2) may dynamically merge groups without reordering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inst {
    op: Op,
    qp: Reg,
    dst: Option<Reg>,
    srcs: [Option<Reg>; MAX_SRCS],
    imm: i64,
    stop: bool,
    alias_region: Option<u16>,
}

impl Inst {
    /// Creates an instruction with the given opcode, qualified by `p0`
    /// (always executed), with no operands and no stop bit.
    pub fn new(op: Op) -> Self {
        Inst {
            op,
            qp: P0,
            dst: None,
            srcs: [None; MAX_SRCS],
            imm: 0,
            stop: false,
            alias_region: None,
        }
    }

    /// Tags a memory instruction with an alias region — the result of the
    /// compile-time points-to analysis the paper relies on ("interprocedural
    /// points-to analysis was used to determine independence of load and
    /// store instructions", §5.1). Two memory operations with *different*
    /// regions are guaranteed disjoint; same or unknown regions may alias.
    /// Builder-style.
    #[must_use]
    pub fn region(mut self, region: u16) -> Self {
        self.alias_region = Some(region);
        self
    }

    /// The alias region, if the compiler proved one.
    pub fn alias_region(&self) -> Option<u16> {
        self.alias_region
    }

    /// Whether this instruction's memory access may alias `other`'s.
    /// Non-memory instructions never alias anything.
    pub fn may_alias(&self, other: &Inst) -> bool {
        let mem = |i: &Inst| i.op().is_load() || i.op().is_store();
        if !mem(self) || !mem(other) {
            return false;
        }
        match (self.alias_region, other.alias_region) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        }
    }

    /// Sets the destination register. Builder-style.
    #[must_use]
    pub fn dst(mut self, r: Reg) -> Self {
        self.dst = Some(r);
        self
    }

    /// Appends a source register. Builder-style.
    ///
    /// # Panics
    ///
    /// Panics if the instruction already has [`MAX_SRCS`] sources.
    #[must_use]
    pub fn src(mut self, r: Reg) -> Self {
        let slot = self
            .srcs
            .iter_mut()
            .find(|s| s.is_none())
            .expect("instruction already has the maximum number of sources");
        *slot = Some(r);
        self
    }

    /// Sets the immediate operand. Builder-style.
    #[must_use]
    pub fn imm(mut self, imm: i64) -> Self {
        self.imm = imm;
        self
    }

    /// Sets the qualifying predicate register. Builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `qp` is not a predicate register.
    #[must_use]
    pub fn qp(mut self, qp: Reg) -> Self {
        assert_eq!(
            qp.class(),
            crate::reg::RegClass::Pred,
            "qualifying predicate must be a predicate register"
        );
        self.qp = qp;
        self
    }

    /// Sets the stop bit, ending the compiler issue group after this
    /// instruction. Builder-style.
    #[must_use]
    pub fn stop(mut self) -> Self {
        self.stop = true;
        self
    }

    /// Sets or clears the stop bit in place (used by the scheduler).
    pub fn set_stop(&mut self, stop: bool) {
        self.stop = stop;
    }

    /// The operation.
    pub fn op(&self) -> &Op {
        &self.op
    }

    /// The qualifying predicate register (`p0` when unconditional).
    pub fn qp_reg(&self) -> Reg {
        self.qp
    }

    /// Whether the instruction is guarded by a non-trivial predicate.
    pub fn is_predicated(&self) -> bool {
        self.qp != P0
    }

    /// The destination register, if any.
    pub fn dst_reg(&self) -> Option<Reg> {
        self.dst
    }

    /// Iterates over the register sources in operand order.
    pub fn srcs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// The `n`-th source register, if present.
    pub fn src_n(&self, n: usize) -> Option<Reg> {
        self.srcs.get(n).copied().flatten()
    }

    /// The immediate operand.
    pub fn imm_val(&self) -> i64 {
        self.imm
    }

    /// Whether this instruction ends its compiler issue group.
    pub fn ends_group(&self) -> bool {
        self.stop
    }

    /// All registers read at run time: the qualifying predicate (when
    /// non-trivial) plus the named sources.
    pub fn reads(&self) -> impl Iterator<Item = Reg> + '_ {
        let qp = if self.is_predicated() { Some(self.qp) } else { None };
        qp.into_iter().chain(self.srcs())
    }

    /// Registers written, excluding hardwired destinations (which writes
    /// silently drop).
    pub fn writes(&self) -> Option<Reg> {
        self.dst.filter(|d| !d.is_hardwired())
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_predicated() {
            write!(f, "({}) ", self.qp)?;
        }
        write!(f, "{}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d} =")?;
        }
        for s in self.srcs() {
            write!(f, " {s}")?;
        }
        if self.imm != 0 || matches!(self.op, Op::MovImm | Op::AddImm) {
            write!(f, " #{}", self.imm)?;
        }
        if let Some(r) = self.alias_region {
            write!(f, " @{r}")?;
        }
        if self.stop {
            write!(f, " ;;")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::BlockId;

    #[test]
    fn builder_assembles_operands() {
        let i = Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(1)).src(Reg::int(2));
        assert_eq!(i.dst_reg(), Some(Reg::int(3)));
        let srcs: Vec<_> = i.srcs().collect();
        assert_eq!(srcs, vec![Reg::int(1), Reg::int(2)]);
        assert_eq!(i.src_n(0), Some(Reg::int(1)));
        assert_eq!(i.src_n(1), Some(Reg::int(2)));
        assert_eq!(i.src_n(2), None);
    }

    #[test]
    #[should_panic(expected = "maximum number of sources")]
    fn too_many_sources_panics() {
        let _ = Inst::new(Op::Add).src(Reg::int(1)).src(Reg::int(2)).src(Reg::int(3));
    }

    #[test]
    fn reads_include_nontrivial_predicate() {
        let unpred = Inst::new(Op::Add).src(Reg::int(1));
        assert_eq!(unpred.reads().count(), 1);
        let pred = Inst::new(Op::Add).src(Reg::int(1)).qp(Reg::pred(5));
        let reads: Vec<_> = pred.reads().collect();
        assert_eq!(reads, vec![Reg::pred(5), Reg::int(1)]);
    }

    #[test]
    fn hardwired_writes_are_dropped() {
        let i = Inst::new(Op::MovImm).dst(Reg::int(0)).imm(9);
        assert_eq!(i.writes(), None);
        let j = Inst::new(Op::MovImm).dst(Reg::int(1)).imm(9);
        assert_eq!(j.writes(), Some(Reg::int(1)));
    }

    #[test]
    fn stop_bit_round_trips() {
        let mut i = Inst::new(Op::Nop).stop();
        assert!(i.ends_group());
        i.set_stop(false);
        assert!(!i.ends_group());
    }

    #[test]
    fn display_shows_predication_and_stop() {
        let i = Inst::new(Op::Br { target: BlockId(2) }).qp(Reg::pred(4)).stop();
        assert_eq!(i.to_string(), "(p4) br B2 ;;");
    }

    #[test]
    #[should_panic(expected = "predicate register")]
    fn qp_must_be_predicate() {
        let _ = Inst::new(Op::Add).qp(Reg::int(3));
    }

    #[test]
    fn alias_regions_decide_independence() {
        let ld_a = Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(2)).region(0);
        let st_a = Inst::new(Op::Store).src(Reg::int(2)).src(Reg::int(3)).region(0);
        let st_b = Inst::new(Op::Store).src(Reg::int(4)).src(Reg::int(3)).region(1);
        let st_unknown = Inst::new(Op::Store).src(Reg::int(4)).src(Reg::int(3));
        let add = Inst::new(Op::Add).dst(Reg::int(5));
        assert!(ld_a.may_alias(&st_a), "same region aliases");
        assert!(!ld_a.may_alias(&st_b), "proven-disjoint regions do not alias");
        assert!(ld_a.may_alias(&st_unknown), "unknown region is conservative");
        assert!(!ld_a.may_alias(&add), "non-memory ops never alias");
    }
}
