//! Diagnostic: dump detailed model statistics for one workload.
//!
//! ```sh
//! cargo run --release -p flea-flicker --example inspect_workload [bench] [test|paper]
//! ```

use flea_flicker::baselines::{InOrder, OutOfOrder, Runahead};
use flea_flicker::engine::{ExecutionModel, MachineConfig, RunResult, SimCase};
use flea_flicker::multipass::{Multipass, MultipassConfig};
use flea_flicker::workloads::{Scale, Workload};

fn dump(name: &str, r: &RunResult, base_cycles: u64) {
    let s = &r.stats;
    println!(
        "{name:<14} cycles {:>9} ({:.3}x)  exec {:>8} front {:>7} other {:>7} load {:>9}",
        s.cycles,
        base_cycles as f64 / s.cycles as f64,
        s.breakdown.execution,
        s.breakdown.front_end,
        s.breakdown.other,
        s.breakdown.load
    );
    println!(
        "{:<14} episodes {} restarts {} rs_reuses {} regroups {} flushes {} spec_reads {} mshr_peak - early_br {}",
        "",
        s.spec_mode_entries,
        s.advance_restarts,
        s.rs_reuses,
        s.regroup_merges,
        s.value_flushes,
        r.mem_stats.speculative_reads,
        s.early_resolved_mispredicts,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map(String::as_str).unwrap_or("mcf");
    let scale = match args.get(2).map(String::as_str) {
        Some("paper") => Scale::Paper,
        _ => Scale::Test,
    };
    let w = Workload::by_name(bench, scale).expect("known benchmark");
    let machine = MachineConfig::itanium2_base();
    let case = SimCase::new(&w.program, w.mem.clone());

    let base = InOrder::new(machine).run(&case);
    println!("== {bench} ({scale:?}) ==");
    dump("inorder", &base, base.stats.cycles);
    dump("runahead", &Runahead::new(machine).run(&case), base.stats.cycles);
    dump("MP", &Multipass::new(machine).run(&case), base.stats.cycles);
    dump(
        "MP-norestart",
        &Multipass::with_config(MultipassConfig::without_restart(machine)).run(&case),
        base.stats.cycles,
    );
    dump(
        "MP-noregroup",
        &Multipass::with_config(MultipassConfig::without_regrouping(machine)).run(&case),
        base.stats.cycles,
    );
    dump("OOO", &OutOfOrder::new(machine).run(&case), base.stats.cycles);
    dump("OOO-real", &OutOfOrder::realistic(machine).run(&case), base.stats.cycles);
}
