//! Visualizes the multipass mode choreography of the paper's Figure 4:
//! architectural execution, the switch to advance preexecution when a load
//! interlocks, pass restarts, and the rally back to architectural state.
//!
//! ```sh
//! cargo run --release -p flea-flicker --example mode_timeline
//! ```

use flea_flicker::engine::{MachineConfig, SimCase};
use flea_flicker::isa::{Inst, MemoryImage, Op, Program, Reg};
use flea_flicker::multipass::{Mode, Multipass};

fn main() {
    // The Figure 1 scenario in miniature: a long-miss load, a stall-on-use,
    // and independent work behind it.
    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    let b2 = p.add_block();
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(5)).imm(0x80_0000).stop());
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(8).stop());
    // loop: chase + restart + use, then an independent miss stream.
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).region(0).stop());
    p.push(b1, Inst::new(Op::Restart).src(Reg::int(1)).stop());
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(4)).src(Reg::int(1)).src(Reg::int(0)).stop());
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(6)).src(Reg::int(5)).region(1));
    p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(5)).src(Reg::int(5)).imm(4096).stop());
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(6)));
    p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1).stop());
    p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)).stop());
    p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
    p.push(b2, Inst::new(Op::Halt).stop());

    let mut mem = MemoryImage::new();
    for i in 0..8u64 {
        let a = 0x10_0000 + i * 128 * 1024;
        let next = if i == 7 { 0x10_0000 } else { a + 128 * 1024 };
        mem.store(a, next);
        mem.store(0x80_0000 + i * 4096, i + 1);
    }

    let case = SimCase::new(&p, mem);
    let (result, trace) = Multipass::new(MachineConfig::itanium2_base()).run_traced(&case);

    println!("cycle  mode          (total {} cycles)", result.stats.cycles);
    let mut prev_cycle = 0;
    for (cycle, mode) in &trace {
        let label = match mode {
            Mode::Architectural => "ARCHITECTURAL",
            Mode::Advance => "ADVANCE",
            Mode::Rally => "RALLY",
        };
        println!("{cycle:>5}  {label:<13} (+{} cycles in previous mode)", cycle - prev_cycle);
        prev_cycle = *cycle;
    }
    println!();
    println!("advance episodes : {}", result.stats.spec_mode_entries);
    println!("pass restarts    : {}", result.stats.advance_restarts);
    println!("advance cycles   : {}", result.stats.spec_mode_cycles);
    println!("rally cycles     : {}", result.stats.rally_cycles);
    println!("results reused   : {}", result.stats.rs_reuses);
}
