//! Steady-state simulator throughput with a tracked perf trajectory.
//!
//! Custom harness (no criterion): measurement needs a warm-up phase keyed
//! to retirement counts and a machine-readable `BENCH_*.json` output that
//! CI diffs against the committed baseline. See
//! [`ff_bench::throughput`] for the protocol and the `measure`/`check`
//! subcommands.
//!
//! ```text
//! cargo bench -p ff-bench --bench sim_throughput                       # measure
//! cargo bench -p ff-bench --bench sim_throughput -- check \
//!     --baseline BENCH_main.json                                       # perf gate
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ff_bench::throughput::cli_main(&args));
}
