//! `ff-sentinel` — invariant-checked smoke runs and fault-detection proofs.
//!
//! ```text
//! ff-sentinel clean [--scale test|paper]
//!     Run every execution model over every workload with the full checker
//!     set; exit nonzero on any violation.
//!
//! ff-sentinel fault <class|all> [--seed N]
//!     Prove the named fault class (or all five) is caught: index 0 must
//!     fire and be detected by the expected checker, and every seeded
//!     fault site that perturbs the run must be detected too.
//! ```

use std::process::ExitCode;

use ff_baselines::{InOrder, OutOfOrder, Runahead};
use ff_engine::{ExecutionModel, MachineConfig};
use ff_multipass::{Multipass, MultipassConfig};
use ff_sentinel::{check_model, detected, run_faulted, FaultClass, FaultInjector};
use ff_workloads::{Scale, Workload};

const USAGE: &str = "usage: ff-sentinel <clean [--scale test|paper] | fault <class|all> [--seed N]>
fault classes: reg-flip dropped-wakeup warp-latency lost-mshr stale-asc";

/// The seven execution models, mirroring the experiment suite's roster.
fn models() -> Vec<Box<dyn ExecutionModel>> {
    let m = MachineConfig::default();
    vec![
        Box::new(InOrder::new(m)),
        Box::new(Runahead::new(m)),
        Box::new(OutOfOrder::new(m)),
        Box::new(OutOfOrder::realistic(m)),
        Box::new(Multipass::new(m)),
        Box::new(Multipass::with_config(MultipassConfig::without_regrouping(m))),
        Box::new(Multipass::with_config(MultipassConfig::without_restart(m))),
    ]
}

fn cmd_clean(scale: Scale) -> ExitCode {
    let workloads = Workload::all(scale);
    let mut runs = 0u64;
    let mut bad = 0u64;
    for model in &mut models() {
        for w in &workloads {
            let report = check_model(model.as_mut(), &w.sim_case());
            runs += 1;
            if let Err(e) = &report.outcome {
                bad += 1;
                println!("FAIL {model} / {bench}: {e}", model = model.name(), bench = w.name);
            }
            for v in report.violations.iter() {
                bad += 1;
                println!("FAIL {model} / {bench}: {v}", model = model.name(), bench = w.name);
            }
        }
    }
    if bad > 0 {
        println!("clean sweep: {bad} violation(s) across {runs} runs");
        return ExitCode::FAILURE;
    }
    println!("clean sweep: {runs} runs, zero violations");
    ExitCode::SUCCESS
}

fn prove_class(class: FaultClass, seed: u64) -> bool {
    // Index 0 is guaranteed to fire on the class's demo kernel: it must be
    // caught by the expected checker.
    let report = run_faulted(class, 0);
    if !detected(class, &report) {
        println!(
            "MISSED {}[0]: expected {:?} to fire; violations: {:?}",
            class.name(),
            class.expected_sentinels(),
            report.violations
        );
        return false;
    }
    let v = report
        .violations
        .iter()
        .find(|v| class.expected_sentinels().contains(&v.sentinel))
        .expect("detected implies a matching violation");
    println!("caught {}[0] by [{}] at cycle {}", class.name(), v.sentinel, v.cycle);

    // Seeded sites: any site that actually perturbs the run must be
    // detected; sites past the event stream leave the run clean.
    let mut inj = FaultInjector::new(seed);
    for _ in 0..8 {
        let (c, index) = inj.next_fault();
        if c != class {
            continue;
        }
        let r = run_faulted(c, index);
        if r.is_clean() {
            continue; // fault site never reached
        }
        if !detected(c, &r) {
            println!(
                "MISSED {}[{index}]: run perturbed but expected {:?} silent; violations: {:?}",
                c.name(),
                c.expected_sentinels(),
                r.violations
            );
            return false;
        }
        println!("caught {}[{index}]", c.name());
    }
    true
}

fn cmd_fault(class_arg: &str, seed: u64) -> ExitCode {
    let classes: Vec<FaultClass> = if class_arg == "all" {
        FaultClass::ALL.to_vec()
    } else {
        match FaultClass::parse(class_arg) {
            Some(c) => vec![c],
            None => {
                eprintln!("unknown fault class `{class_arg}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    };
    let ok = classes.into_iter().all(|c| prove_class(c, seed));
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("clean") => {
            let mut scale = Scale::Test;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--scale" => match it.next().map(String::as_str) {
                        Some("test") => scale = Scale::Test,
                        Some("paper") => scale = Scale::Paper,
                        _ => {
                            eprintln!("--scale needs `test` or `paper`\n{USAGE}");
                            return ExitCode::FAILURE;
                        }
                    },
                    other => {
                        eprintln!("unknown flag `{other}`\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            cmd_clean(scale)
        }
        Some("fault") => {
            let Some(class_arg) = args.get(1) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let mut seed = 0xf1ea;
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                        Some(s) => seed = s,
                        None => {
                            eprintln!("--seed needs an integer\n{USAGE}");
                            return ExitCode::FAILURE;
                        }
                    },
                    other => {
                        eprintln!("unknown flag `{other}`\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            cmd_fault(class_arg, seed)
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
