//! Parallel experiment campaign runner for the flea-flicker simulator.
//!
//! `ff-harness` turns the (model × hierarchy × benchmark × scale × seed)
//! experiment space into independent jobs and runs them on a
//! work-stealing pool of scoped threads, with:
//!
//! * **checkpoint/resume** — each completed job is a content-addressed
//!   JSON artifact ([`job::JobSpec::config_hash`]); re-running a campaign
//!   skips jobs whose artifact already exists for the same configuration;
//! * **watchdogs** — a per-job cycle budget aborts runaway simulations as
//!   `failed: timeout` instead of hanging the campaign
//!   ([`ff_engine::RunError::CycleBudgetExceeded`]);
//! * **retries** — transient failures re-attempt up to `--retries` times;
//! * **panic isolation** — a panicking job is caught at the job boundary
//!   ([`pool::run_jobs`]), classified as [`error::JobErrorKind::Panic`],
//!   and recorded in the manifest; the other workers keep running;
//! * **sentinels** — `--sentinels` runs every simulation under the full
//!   `ff-sentinel` invariant-checker set, failing jobs whose runs violate
//!   a pipeline invariant even when they produce plausible numbers;
//! * **quarantine** — `--quarantine-after N` skips configs that failed
//!   `N` consecutive prior runs ([`quarantine::Quarantine`]), so one
//!   wedged grid point cannot burn its watchdog budget on every resume;
//! * **crash bundles** — every terminal simulation failure writes a
//!   replayable [`bundle::CrashBundle`] (grid coordinates, classified
//!   error, last retirements) consumable by the `ff-debug` triage flow;
//! * **reproducible manifests** — `manifest.json` records config hashes,
//!   seeds, scale, git revision, per-job wall time, and worker count;
//! * **a sharded, memoizing artifact store** — artifacts are
//!   content-addressed by config hash and sharded across 256 directories
//!   by hash prefix ([`store`]), with transparent read-fallback to the
//!   legacy flat layout and a one-shot `ff-campaign migrate-store`;
//! * **artifact-backed rendering** — [`store::ArtifactStore`] implements
//!   [`ff_experiments::ResultSource`], so every figure/table under
//!   `results/` re-renders from checkpointed artifacts without
//!   re-simulating ([`render_results::render_all`]);
//! * **a service protocol** — [`remote`] holds the `ff-server` wire
//!   protocol, a std-only HTTP client, and [`remote::RemoteSource`], a
//!   [`ff_experiments::ResultSource`] that renders results straight from
//!   a campaign server's memoization store.
//!
//! The `ff-campaign` binary is the CLI front end; the long-running
//! service lives in the `ff-server` crate, which reuses [`attempt_job`]
//! so a served artifact is byte-identical to a CLI-produced one. See
//! `EXPERIMENTS.md`.
//!
//! Artifacts are byte-deterministic: a `--jobs 4` campaign produces
//! bit-for-bit the same files as `--jobs 1` (pinned by the
//! `parallel_equals_serial` integration test). Determinism comes from job
//! independence — workers race only for *which* job to pull next, never
//! over a job's inputs or outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod bundle;
pub mod campaign;
pub mod chaos;
pub mod error;
pub mod integrity;
pub mod job;
pub mod json;
pub mod manifest;
pub mod pool;
pub mod quarantine;
pub mod remote;
pub mod render_results;
pub mod store;

pub use bundle::{list_bundles, CrashBundle};
pub use campaign::{
    artifact_is_current, attempt_job, full_grid, run_campaign, Attempt, CampaignOptions,
    CampaignReport, ExecOptions, FailureInjection, JobContext, JobFilter, JobOutcome, JobStatus,
};
pub use error::{JobError, JobErrorKind};
pub use integrity::FsckReport;
pub use job::{JobKind, JobSpec, FORMAT_VERSION};
pub use manifest::{read_manifest, write_manifest, ManifestSummary};
pub use quarantine::Quarantine;
pub use remote::{CampaignRequest, CampaignStatus, RemoteSource, RetryPolicy, ServerUrl};
pub use render_results::render_all;
pub use store::{
    durable_write, migrate_flat, parse_hash16, sweep_tmp, ArtifactStore, ShardedStore,
};
