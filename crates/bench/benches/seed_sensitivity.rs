//! Seed-sensitivity study: the headline result (multipass mean speedup over
//! in-order) must not be an artifact of one workload-generator seed. Runs
//! the full suite under several seeds and reports per-seed means and the
//! spread. The report itself lives in `ff_experiments::reports` so
//! `ff-campaign` can regenerate it from checkpointed artifacts too.

use ff_bench::scale_from_env;
use ff_experiments::reports::{seed_sensitivity, seeded_cycles};

fn main() {
    let scale = scale_from_env();
    print!(
        "{}",
        seed_sensitivity(scale, &[0, 1, 2, 3], |model, bench, seed| {
            seeded_cycles(model, bench, scale, seed)
        })
    );
}
