//! The `ff-server` binary: a long-running campaign service.
//!
//! Listens for campaign submissions over HTTP/JSON, drains them on a
//! panic-isolated simulation worker pool, and memoizes every artifact in
//! a sharded store. `SIGTERM`/`SIGINT` (or `POST /shutdown`) triggers a
//! graceful exit: in-flight simulations finish and every campaign's
//! progress is checkpointed as a manifest; restarting against the same
//! store resumes them with zero re-simulation.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use ff_engine::TickMode;
use ff_harness::campaign::ExecOptions;
use ff_server::{SchedulerOptions, Server};

const USAGE: &str = "\
ff-server: the campaign service daemon

USAGE:
    ff-server [OPTIONS]

OPTIONS:
    --addr HOST:PORT      listen address (default 127.0.0.1:7878; port 0
                          picks an ephemeral port)
    --store DIR           artifact store root (default results/store)
    --jobs N              simulation worker threads (default: cores)
    --retries N           extra attempts per failed job (default 0)
    --cycle-budget N      per-job watchdog: fail a simulation after N cycles
    --sentinels           run simulations under the invariant checker set
    --tick MODE           polling | event (default event)
    --quarantine-after N  skip configs with N consecutive recorded failures
    --port-file PATH      write the bound port to PATH once listening
                          (for scripts using --addr with port 0)
    --help                print this help
";

struct Cli {
    addr: String,
    store: String,
    jobs: Option<usize>,
    retries: u32,
    cycle_budget: Option<u64>,
    sentinels: bool,
    tick: TickMode,
    quarantine_after: Option<u32>,
    port_file: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        addr: "127.0.0.1:7878".to_string(),
        store: "results/store".to_string(),
        jobs: None,
        retries: 0,
        cycle_budget: None,
        sentinels: false,
        tick: TickMode::default(),
        quarantine_after: None,
        port_file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => cli.addr = value("--addr")?,
            "--store" => cli.store = value("--store")?,
            "--jobs" => {
                cli.jobs = Some(value("--jobs")?.parse().map_err(|_| "--jobs needs a number")?);
            }
            "--retries" => {
                cli.retries =
                    value("--retries")?.parse().map_err(|_| "--retries needs a number")?;
            }
            "--cycle-budget" => {
                cli.cycle_budget = Some(
                    value("--cycle-budget")?
                        .parse()
                        .map_err(|_| "--cycle-budget needs a number")?,
                );
            }
            "--sentinels" => cli.sentinels = true,
            "--tick" => {
                cli.tick = match value("--tick")?.as_str() {
                    "polling" => TickMode::Polling,
                    "event" => TickMode::EventDriven,
                    other => return Err(format!("unknown tick mode `{other}`")),
                };
            }
            "--quarantine-after" => {
                cli.quarantine_after = Some(
                    value("--quarantine-after")?
                        .parse()
                        .map_err(|_| "--quarantine-after needs a number")?,
                );
            }
            "--port-file" => cli.port_file = Some(value("--port-file")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    Ok(cli)
}

/// Set by the SIGTERM/SIGINT handler; polled by the main loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // The build environment is offline, so no signal crate: bind libc's
    // signal(2) directly. The handler only stores to an atomic, which is
    // async-signal-safe. Confined to the binary — the library crates all
    // forbid unsafe code.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("ff-server: {msg}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_handlers();
    let opts = SchedulerOptions {
        workers: cli
            .jobs
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        attempts: cli.retries + 1,
        exec: ExecOptions {
            cycle_budget: cli.cycle_budget,
            sentinels: cli.sentinels,
            tick: cli.tick,
        },
        quarantine_after: cli.quarantine_after,
    };
    let workers = opts.workers;
    let server = match Server::start(&cli.addr, &cli.store, opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ff-server: could not start on {}: {e}", cli.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    if let Some(path) = &cli.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!("ff-server: could not write port file {path}: {e}");
            server.shutdown();
            return ExitCode::FAILURE;
        }
    }
    println!("ff-server: listening on http://{addr} (store {}, {workers} workers)", cli.store);
    while !SIGNALLED.load(Ordering::SeqCst) && !server.wants_shutdown() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("ff-server: shutting down (checkpointing campaigns)");
    server.shutdown();
    println!("ff-server: checkpoint complete");
    ExitCode::SUCCESS
}
