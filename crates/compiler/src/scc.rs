//! Strongly connected components of the loop dataflow graph.
//!
//! The paper's advance-restart heuristic (§3.3) is driven by SCCs of the
//! dataflow graph: "strongly connected components (SCCs) of the data-flow
//! graph are found: these components represent loop-carried data flow."
//! This module finds them for *single-block loops* (a block whose
//! terminating branch targets itself — the shape of every hot loop emitted
//! by `ff-workloads`), using intra-iteration RAW edges plus loop-carried
//! RAW edges from each register's last writer back to earlier readers.

use ff_isa::{program::BlockId, Inst, Program};

/// A non-trivial SCC found in the dataflow graph of a loop block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopScc {
    /// The loop block.
    pub block: BlockId,
    /// Block-local indices of the SCC members.
    pub members: Vec<usize>,
    /// The subset of members that are loads.
    pub loads: Vec<usize>,
    /// Count of variable-latency instructions (loads and multi-cycle ops)
    /// strictly downstream of the SCC within one iteration.
    pub downstream_variable: usize,
    /// Count of variable-latency instructions strictly upstream of the SCC
    /// within one iteration.
    pub upstream_variable: usize,
}

/// Whether `block` is a single-block loop: some branch in it targets the
/// block itself.
pub fn is_self_loop(block_id: BlockId, block: &[Inst]) -> bool {
    block.iter().any(|i| matches!(i.op(), ff_isa::Op::Br { target } if *target == block_id))
}

/// Builds the dataflow successor lists for a loop block: intra-iteration
/// RAW edges `i -> j` (`i < j`) and loop-carried RAW edges `last_writer ->
/// reader` for every register live around the back edge.
fn dataflow_succs(block: &[Inst]) -> Vec<Vec<usize>> {
    let n = block.len();
    let mut succs = vec![Vec::new(); n];
    // Intra-iteration RAW.
    for i in 0..n {
        if let Some(w) = block[i].writes() {
            // Value from i reaches j if no redefinition of w in (i, j).
            let mut killed = false;
            for (j, bj) in block.iter().enumerate().skip(i + 1) {
                if !killed && bj.reads().any(|r| r == w) {
                    succs[i].push(j);
                }
                if bj.writes() == Some(w) {
                    killed = true;
                }
            }
        }
    }
    // Loop-carried RAW: the last writer of each register reaches readers at
    // the top of the next iteration (up to the first redefinition).
    for i in 0..n {
        if let Some(w) = block[i].writes() {
            let is_last_writer = block[(i + 1)..].iter().all(|b| b.writes() != Some(w));
            if !is_last_writer {
                continue;
            }
            for (j, bj) in block.iter().enumerate() {
                if bj.reads().any(|r| r == w) {
                    succs[i].push(j);
                }
                if bj.writes() == Some(w) {
                    break; // redefinition kills the carried value
                }
            }
        }
    }
    for s in &mut succs {
        s.sort_unstable();
        s.dedup();
    }
    succs
}

/// Iterative Tarjan SCC. Returns components as lists of node indices.
fn tarjan(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS stack: (node, next child position).
    let mut dfs: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        dfs.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if *ci < succs[v].len() {
                let w = succs[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

fn is_variable_latency(inst: &Inst) -> bool {
    inst.op().is_load() || inst.op().is_multicycle()
}

/// Reachability closure from a seed set over successor lists.
fn reachable(succs: &[Vec<usize>], seeds: &[usize]) -> Vec<bool> {
    let mut seen = vec![false; succs.len()];
    let mut work: Vec<usize> = seeds.to_vec();
    while let Some(v) = work.pop() {
        for &w in &succs[v] {
            if !seen[w] {
                seen[w] = true;
                work.push(w);
            }
        }
    }
    seen
}

/// Finds the non-trivial SCCs (size > 1, or a single node with a self
/// edge) of every single-block loop in `program`, with the
/// upstream/downstream variable-latency counts the restart heuristic needs.
pub fn loop_sccs(program: &Program) -> Vec<LoopScc> {
    let mut out = Vec::new();
    for b in 0..program.num_blocks() {
        let block_id = BlockId(b as u32);
        let block = match program.block(block_id) {
            Some(x) if !x.is_empty() => x,
            _ => continue,
        };
        if !is_self_loop(block_id, block) {
            continue;
        }
        let succs = dataflow_succs(block);
        let preds = invert(&succs);
        for comp in tarjan(&succs) {
            let nontrivial =
                comp.len() > 1 || (comp.len() == 1 && succs[comp[0]].contains(&comp[0]));
            if !nontrivial {
                continue;
            }
            let mut members = comp.clone();
            members.sort_unstable();
            let loads: Vec<usize> =
                members.iter().copied().filter(|&i| block[i].op().is_load()).collect();
            let down = reachable(&succs, &members);
            let up = reachable(&preds, &members);
            let count = |flags: &[bool]| {
                flags
                    .iter()
                    .enumerate()
                    .filter(|&(i, &f)| {
                        f && members.binary_search(&i).is_err() && is_variable_latency(&block[i])
                    })
                    .count()
            };
            let downstream_variable = count(&down);
            let upstream_variable = count(&up);
            out.push(LoopScc {
                block: block_id,
                members,
                loads,
                downstream_variable,
                upstream_variable,
            });
        }
    }
    out
}

fn invert(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); succs.len()];
    for (i, ss) in succs.iter().enumerate() {
        for &j in ss {
            preds[j].push(i);
        }
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::{Op, Reg};

    /// Pointer-chase loop: r1 = load r1; r2 = load (r1+8); r3 = r2+r3;
    /// cmp; br self.
    fn chase_loop() -> Program {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x1000));
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)));
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(1)).imm(8));
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(2)));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)));
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
        let b2 = p.add_block();
        p.push(b2, Inst::new(Op::Halt));
        p
    }

    #[test]
    fn finds_pointer_chase_scc() {
        let sccs = loop_sccs(&chase_loop());
        // r1 = load r1 forms a self-SCC containing one load; the r3
        // accumulator forms another SCC with no load.
        let with_load: Vec<_> = sccs.iter().filter(|s| !s.loads.is_empty()).collect();
        assert_eq!(with_load.len(), 1);
        let s = with_load[0];
        assert_eq!(s.block, BlockId(1));
        assert_eq!(s.loads, vec![0]); // the chase load is inst 0 of block 1
                                      // Downstream of the chase: the second load (variable latency).
        assert!(s.downstream_variable >= 1);
        assert_eq!(s.upstream_variable, 0);
    }

    #[test]
    fn accumulator_scc_has_no_loads() {
        let sccs = loop_sccs(&chase_loop());
        assert!(sccs.iter().any(|s| s.loads.is_empty()), "accumulator SCC expected");
    }

    #[test]
    fn non_loop_blocks_are_ignored() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)));
        p.push(b, Inst::new(Op::Halt));
        assert!(loop_sccs(&p).is_empty());
    }

    #[test]
    fn redefinition_kills_carried_value() {
        // r1 is rewritten from scratch each iteration -> no SCC through r1.
        let mut p = Program::new();
        let b0 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x40));
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(1)));
        p.push(b0, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)));
        p.push(b0, Inst::new(Op::Br { target: b0 }).qp(Reg::pred(1)));
        let b1 = p.add_block();
        p.push(b1, Inst::new(Op::Halt));
        let sccs = loop_sccs(&p);
        assert!(sccs.iter().all(|s| s.loads.is_empty()), "{sccs:?}");
    }

    #[test]
    fn multi_node_scc() {
        // r1 -> r2 -> r1 chain across the back edge.
        let mut p = Program::new();
        let b0 = p.add_block();
        p.push(b0, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(1)).imm(1));
        p.push(b0, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(2)).imm(1));
        p.push(b0, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)));
        p.push(b0, Inst::new(Op::Br { target: b0 }).qp(Reg::pred(1)));
        let b1 = p.add_block();
        p.push(b1, Inst::new(Op::Halt));
        let sccs = loop_sccs(&p);
        assert!(sccs.iter().any(|s| s.members == vec![0, 1]));
    }
}
