//! The twelve SPEC CPU2000-like kernel generators.
//!
//! Each generator documents which behavioural signature of its SPEC
//! counterpart it reproduces. All programs are built in straight dependence
//! order and then compiled through `ff-compiler` (list scheduling into EPIC
//! issue groups, plus critical-SCC RESTART insertion), exactly as the
//! paper's binaries went through OpenIMPACT.
//!
//! Footprints, hot/cold access mixtures, and per-iteration instruction
//! mixes are calibrated so the *baseline* stall composition lands in the
//! neighbourhood of the paper's Figure 6 bars: most benchmarks are
//! substantially cache-resident with moderate load-stall fractions, mcf is
//! the pathological pointer-chaser, mesa is FP-latency bound, and twolf is
//! branchy. Streams *wrap* over power-of-two windows so they become
//! cache-resident after the first lap (the simulator has no hardware
//! prefetcher, so unbounded streams would overstate compulsory misses).

use ff_compiler::{compile, CompilerOptions};
use ff_isa::{program::BlockId, Inst, MemoryImage, Op, Program, Reg};
use rand::Rng;

use crate::builder::{
    clustered_ring, fill_array, fill_indices_mixed, kernel_rng, random_f64_bits, shuffled_ring,
};
use crate::{Scale, Workload};

// Memory-map bases (one per logical array; also used as alias regions).
const R0_BASE: u64 = 0x0100_0000;
const R1_BASE: u64 = 0x0400_0000;
const R2_BASE: u64 = 0x0800_0000;

fn scale_tag(scale: Scale) -> u64 {
    match scale {
        Scale::Test => 0,
        Scale::Paper => 1,
    }
}

/// `scale.pick(test_value, paper_value)`.
fn pick(scale: Scale, test: u64, paper: u64) -> u64 {
    match scale {
        Scale::Test => test,
        Scale::Paper => paper,
    }
}

fn finish(workload_name: &'static str, is_fp: bool, p: Program, mem: MemoryImage) -> Workload {
    let program = compile(&p, &CompilerOptions::default());
    debug_assert!(program.validate().is_ok(), "{workload_name}: invalid program");
    debug_assert!(
        ff_compiler::verify_schedule(&program).is_ok(),
        "{workload_name}: schedule violates EPIC group rules: {:?}",
        ff_compiler::verify_schedule(&program)
    );
    Workload { name: workload_name, is_fp, program, mem }
}

/// Appends `ctr -= 1; p1 = ctr != 0; (p1) br target` to `block`.
fn counter_tail(p: &mut Program, block: BlockId, ctr: u8, target: BlockId) {
    p.push(block, Inst::new(Op::AddImm).dst(Reg::int(ctr)).src(Reg::int(ctr)).imm(-1));
    p.push(block, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(ctr)).src(Reg::int(0)));
    p.push(block, Inst::new(Op::Br { target }).qp(Reg::pred(1)));
}

fn mov(p: &mut Program, b: BlockId, r: u8, v: u64) {
    p.push(b, Inst::new(Op::MovImm).dst(Reg::int(r)).imm(v as i64));
}

/// Appends `n` independent single-cycle ALU operations over the ballast
/// registers r40..r47 — the surrounding integer work real loop bodies
/// carry, which the list scheduler packs into issue groups alongside the
/// memory operations.
fn ballast(p: &mut Program, b: BlockId, n: usize) {
    const OPS: [Op; 4] = [Op::Add, Op::Xor, Op::Sub, Op::Or];
    for k in 0..n {
        let d = 40 + (k % 4) as u8;
        let s = 44 + (k % 4) as u8;
        p.push(b, Inst::new(OPS[k % OPS.len()]).dst(Reg::int(d)).src(Reg::int(d)).src(Reg::int(s)));
    }
}

/// Appends `n` independent FP adds over f40..f43 (FP ballast).
fn fp_ballast(p: &mut Program, b: BlockId, n: usize) {
    for k in 0..n {
        let d = 40 + (k % 4) as u8;
        p.push(b, Inst::new(Op::FAdd).dst(Reg::fp(d)).src(Reg::fp(d)).src(Reg::fp(44)));
    }
}

/// Appends a wrapped-pointer advance: `ptr = base + ((ptr + step) & mask)`,
/// using `off` as a temporary. Streams wrap over a power-of-two window so
/// they stay cache-resident after their first lap.
fn wrap_advance(p: &mut Program, b: BlockId, ptr: u8, base: u8, mask: u8, off: u8, step: i64) {
    p.push(b, Inst::new(Op::AddImm).dst(Reg::int(off)).src(Reg::int(ptr)).imm(step));
    p.push(b, Inst::new(Op::And).dst(Reg::int(off)).src(Reg::int(off)).src(Reg::int(mask)));
    p.push(b, Inst::new(Op::Add).dst(Reg::int(ptr)).src(Reg::int(base)).src(Reg::int(off)));
}

// ======================================================================
// CINT2000-like kernels
// ======================================================================

/// `mcf` — network simplex. The worst cache behaviour in CINT2000: a
/// pointer chase over a 2 MB node pool (main-memory misses on the first
/// lap, L3-latency hops on the second) with *dependent* arc lookups into an
/// 8 MB pool that miss to main memory on every hop. The chase load forms a
/// critical SCC, so the compiler inserts a RESTART after it; because the
/// chase miss is *shorter* than the arc miss it blocks behind, chase
/// results return mid-pass and restart chains arc prefetches across
/// iterations — the Figure 1(d) scenario, making mcf the headline
/// advance-restart benchmark (Figure 8).
pub fn mcf(scale: Scale) -> Workload {
    mcf_seeded(scale, 0)
}

/// Seeded variant of [`mcf`] for sensitivity studies.
pub fn mcf_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("mcf", scale_tag(scale) ^ (seed << 8));
    let nodes = pick(scale, 300, 16_384);
    let trips = pick(scale, 300, 49_152); // three laps: laps 2-3 chase in L3
    let node_bytes = 128; // 2 MB node pool, randomly permuted
    let arc_words = pick(scale, 4_096, 1 << 20); // 8 MB arc pool
    let mut mem = MemoryImage::new();
    let first = shuffled_ring(&mut rng, &mut mem, R0_BASE, nodes, node_bytes, |r, k| {
        if k == 1 {
            R1_BASE + r.gen_range(0..arc_words) * 8
        } else {
            r.gen_range(0..1_000)
        }
    });
    fill_array(&mut rng, &mut mem, R1_BASE, arc_words, |r, _| r.gen_range(0..1_000));

    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    mov(&mut p, b0, 1, first); // node cursor
    mov(&mut p, b0, 3, 0); // cost accumulator
    mov(&mut p, b0, 2, trips);
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).region(0));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(10)).src(Reg::int(1)).imm(8).region(0));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(11)).src(Reg::int(10)).region(1));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(12)).src(Reg::int(10)).imm(8).region(1));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(14)).src(Reg::int(1)).imm(16).region(0));
    p.push(b1, Inst::new(Op::Sub).dst(Reg::int(13)).src(Reg::int(11)).src(Reg::int(12)));
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(13)));
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(14)));
    ballast(&mut p, b1, 3);
    counter_tail(&mut p, b1, 2, b1);
    let b2 = p.add_block();
    p.push(b2, Inst::new(Op::Halt));
    finish("mcf", false, p, mem)
}

/// `gap` — group theory interpreter. A bag-of-pointers traversal with
/// *segment locality* (runs of nearby nodes punctuated by long jumps) over
/// a 1 MB pool, with dependent member lookups that are mostly
/// cache-resident but sometimes cold. The chase SCC is critical and
/// receives a RESTART (gap benefits from advance restart in Figure 8).
pub fn gap(scale: Scale) -> Workload {
    gap_seeded(scale, 0)
}

/// Seeded variant of [`gap`] for sensitivity studies.
pub fn gap_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("gap", scale_tag(scale) ^ (seed << 8));
    let nodes = pick(scale, 300, 4_096);
    let trips = pick(scale, 300, 32_768); // eight laps: warm after lap one
    let node_bytes = 32; // 128 KB pool, 2 nodes per L1 line
    let hot_words = 1 << 13; // 64 KB hot member region
    let member_words = pick(scale, 4_096, 1 << 16); // 512 KB member pool
    let mut mem = MemoryImage::new();
    let first = clustered_ring(&mut rng, &mut mem, R0_BASE, nodes, node_bytes, 32, |r, k| {
        if k == 1 {
            let idx = if r.gen_range(0..100) < 90 {
                r.gen_range(0..hot_words.min(member_words))
            } else {
                r.gen_range(0..member_words)
            };
            R1_BASE + idx * 8
        } else {
            r.gen_range(0..64)
        }
    });
    fill_array(&mut rng, &mut mem, R1_BASE, member_words, |r, _| r.gen_range(0..256));

    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    mov(&mut p, b0, 1, first);
    mov(&mut p, b0, 3, 0);
    mov(&mut p, b0, 2, trips);
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).region(0));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(10)).src(Reg::int(1)).imm(8).region(0));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(11)).src(Reg::int(10)).region(1));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(12)).src(Reg::int(10)).imm(16).region(1));
    p.push(b1, Inst::new(Op::Xor).dst(Reg::int(13)).src(Reg::int(11)).src(Reg::int(12)));
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(13)));
    ballast(&mut p, b1, 5);
    counter_tail(&mut p, b1, 2, b1);
    let b2 = p.add_block();
    p.push(b2, Inst::new(Op::Halt));
    finish("gap", false, p, mem)
}

/// `bzip2` — block-sorting compression. A suffix-pointer walk with segment
/// locality over a 512 KB pool whose hops feed dependent bucket loads *and*
/// multi-cycle multiplies — exposing "other" stalls when the misses are
/// tolerated, as the paper observes. The SCC is critical (RESTART), and the
/// data-dependent work is if-converted into predication, OpenIMPACT
/// hyperblock-style.
pub fn bzip2(scale: Scale) -> Workload {
    bzip2_seeded(scale, 0)
}

/// Seeded variant of [`bzip2`] for sensitivity studies.
pub fn bzip2_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("bzip2", scale_tag(scale) ^ (seed << 8));
    let nodes = pick(scale, 300, 4_096);
    let trips = pick(scale, 300, 32_768); // eight laps
    let node_bytes = 32; // 128 KB pool
    let hot_words = 1 << 12; // 32 KB hot buckets
    let bucket_words = pick(scale, 2_048, 1 << 16); // 512 KB buckets
    let mut mem = MemoryImage::new();
    let first = clustered_ring(&mut rng, &mut mem, R0_BASE, nodes, node_bytes, 16, |r, k| {
        if k == 1 {
            let idx = if r.gen_range(0..100) < 90 {
                r.gen_range(0..hot_words.min(bucket_words))
            } else {
                r.gen_range(0..bucket_words)
            };
            R1_BASE + idx * 8
        } else {
            r.gen_range(0..100)
        }
    });
    fill_array(&mut rng, &mut mem, R1_BASE, bucket_words, |r, _| r.gen_range(0..997));

    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    mov(&mut p, b0, 1, first);
    mov(&mut p, b0, 3, 0);
    mov(&mut p, b0, 2, trips);
    mov(&mut p, b0, 9, 50); // predication threshold
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).region(0));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(10)).src(Reg::int(1)).imm(8).region(0));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(11)).src(Reg::int(10)).region(1));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(15)).src(Reg::int(1)).imm(16).region(0));
    // Multi-cycle work dependent on the chase (ranking multiply).
    p.push(b1, Inst::new(Op::Mul).dst(Reg::int(12)).src(Reg::int(11)).src(Reg::int(15)));
    // If-converted data-dependent update (hyperblock predication).
    p.push(b1, Inst::new(Op::CmpLt).dst(Reg::pred(2)).src(Reg::int(15)).src(Reg::int(9)));
    p.push(
        b1,
        Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(12)).qp(Reg::pred(2)),
    );
    p.push(
        b1,
        Inst::new(Op::Xor).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(11)).qp(Reg::pred(2)),
    );
    ballast(&mut p, b1, 4);
    counter_tail(&mut p, b1, 2, b1);
    let b2 = p.add_block();
    p.push(b2, Inst::new(Op::Halt));
    finish("bzip2", false, p, mem)
}

/// `gzip` — LZ77 compression. A wrapped input window hashed into a 32 KB
/// chain table, with a data-dependent match/no-match branch and a table
/// update store. Memory stalls are modest; branches are the interesting
/// part.
pub fn gzip(scale: Scale) -> Workload {
    gzip_seeded(scale, 0)
}

/// Seeded variant of [`gzip`] for sensitivity studies.
pub fn gzip_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("gzip", scale_tag(scale) ^ (seed << 8));
    let trips = pick(scale, 400, 40_000);
    let window_words = pick(scale, 1_024, 1 << 13); // 64 KB input window
    let table_words = pick(scale, 1_024, 1 << 12); // 32 KB hash table
    let mut mem = MemoryImage::new();
    fill_array(&mut rng, &mut mem, R0_BASE, window_words, |r, _| r.gen());
    fill_array(&mut rng, &mut mem, R1_BASE, table_words, |r, _| r.gen_range(0..100));

    let mut p = Program::new();
    let b0 = p.add_block();
    let b_loop = p.add_block();
    let b_then = p.add_block();
    let b_tail = p.add_block();
    let b_done = p.add_block();
    mov(&mut p, b0, 1, R0_BASE); // input cursor
    mov(&mut p, b0, 7, R0_BASE); // window base
    mov(&mut p, b0, 6, (window_words - 1) * 8); // window mask
    mov(&mut p, b0, 2, trips); // counter
    mov(&mut p, b0, 4, R1_BASE); // table base
    mov(&mut p, b0, 5, (table_words - 1) * 8); // table index mask
    mov(&mut p, b0, 9, 30); // match threshold (~30% matches)
    mov(&mut p, b0, 8, 2_654_435_761);
    p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(10)).src(Reg::int(1)).region(0));
    p.push(b_loop, Inst::new(Op::Mul).dst(Reg::int(11)).src(Reg::int(10)).src(Reg::int(8)));
    p.push(b_loop, Inst::new(Op::Shr).dst(Reg::int(11)).src(Reg::int(11)).imm(7));
    p.push(b_loop, Inst::new(Op::And).dst(Reg::int(11)).src(Reg::int(11)).src(Reg::int(5)));
    p.push(b_loop, Inst::new(Op::Add).dst(Reg::int(12)).src(Reg::int(4)).src(Reg::int(11)));
    p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(13)).src(Reg::int(12)).region(1));
    ballast(&mut p, b_loop, 6);
    p.push(b_loop, Inst::new(Op::CmpLt).dst(Reg::pred(2)).src(Reg::int(13)).src(Reg::int(9)));
    p.push(b_loop, Inst::new(Op::Br { target: b_tail }).qp(Reg::pred(2)));
    // then: a match — longer path with a table update.
    p.push(b_then, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(13)));
    p.push(b_then, Inst::new(Op::AddImm).dst(Reg::int(14)).src(Reg::int(13)).imm(1));
    p.push(b_then, Inst::new(Op::Store).src(Reg::int(12)).src(Reg::int(14)).region(1));
    ballast(&mut p, b_then, 3);
    // tail: advance input within the window, count down.
    wrap_advance(&mut p, b_tail, 1, 7, 6, 30, 8);
    counter_tail(&mut p, b_tail, 2, b_loop);
    p.push(b_done, Inst::new(Op::Halt));
    finish("gzip", false, p, mem)
}

/// `vpr` — placement/routing. A wrapped net stream gathers from two 1 MB
/// cost tables with a 75% hot / 25% cold mixture (mostly L1/L2 hits, some
/// L3/memory), a semi-predictable accept/reject branch, and an in-place
/// cost update store.
pub fn vpr(scale: Scale) -> Workload {
    vpr_seeded(scale, 0)
}

/// Seeded variant of [`vpr`] for sensitivity studies.
pub fn vpr_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("vpr", scale_tag(scale) ^ (seed << 8));
    let trips = pick(scale, 400, 30_000);
    let stream_words = pick(scale, 1_024, 1 << 14); // 128 KB index stream
    let hot_words = 1 << 12; // 32 KB hot region
    let table_words = pick(scale, 4_096, 1 << 16); // 512 KB per table
    let mut mem = MemoryImage::new();
    fill_indices_mixed(
        &mut rng,
        &mut mem,
        R0_BASE,
        stream_words,
        hot_words.min(table_words),
        table_words,
        88,
    );
    fill_array(&mut rng, &mut mem, R1_BASE, table_words, |r, _| r.gen_range(0..1_000));
    fill_array(&mut rng, &mut mem, R2_BASE, table_words, |r, _| r.gen_range(0..1_000));

    let mut p = Program::new();
    let b0 = p.add_block();
    let b_loop = p.add_block();
    let b_then = p.add_block();
    let b_tail = p.add_block();
    let b_done = p.add_block();
    mov(&mut p, b0, 1, R0_BASE);
    mov(&mut p, b0, 7, R0_BASE); // stream base
    mov(&mut p, b0, 6, (stream_words - 1) * 8); // stream mask
    mov(&mut p, b0, 2, trips);
    mov(&mut p, b0, 4, R1_BASE);
    mov(&mut p, b0, 5, R2_BASE);
    p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(10)).src(Reg::int(1)).region(0));
    p.push(b_loop, Inst::new(Op::Shl).dst(Reg::int(11)).src(Reg::int(10)).imm(3));
    p.push(b_loop, Inst::new(Op::Add).dst(Reg::int(12)).src(Reg::int(4)).src(Reg::int(11)));
    p.push(b_loop, Inst::new(Op::Add).dst(Reg::int(13)).src(Reg::int(5)).src(Reg::int(11)));
    p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(14)).src(Reg::int(12)).region(1));
    p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(15)).src(Reg::int(13)).region(2));
    ballast(&mut p, b_loop, 6);
    p.push(b_loop, Inst::new(Op::CmpLt).dst(Reg::pred(2)).src(Reg::int(14)).src(Reg::int(15)));
    p.push(b_loop, Inst::new(Op::Br { target: b_tail }).qp(Reg::pred(2)));
    // then: accept the move — swap-ish update.
    p.push(b_then, Inst::new(Op::Add).dst(Reg::int(16)).src(Reg::int(14)).src(Reg::int(15)));
    p.push(b_then, Inst::new(Op::Shr).dst(Reg::int(16)).src(Reg::int(16)).imm(1));
    p.push(b_then, Inst::new(Op::Store).src(Reg::int(12)).src(Reg::int(16)).region(1));
    p.push(b_then, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(16)));
    wrap_advance(&mut p, b_tail, 1, 7, 6, 30, 8);
    counter_tail(&mut p, b_tail, 2, b_loop);
    p.push(b_done, Inst::new(Op::Halt));
    finish("vpr", false, p, mem)
}

/// `parser` — link grammar. A short dictionary chase (128 KB,
/// L2-resident) per input token with an unpredictable hash-compare branch;
/// misses are shorter and more diffuse than mcf's.
pub fn parser(scale: Scale) -> Workload {
    parser_seeded(scale, 0)
}

/// Seeded variant of [`parser`] for sensitivity studies.
pub fn parser_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("parser", scale_tag(scale) ^ (seed << 8));
    let trips = pick(scale, 400, 30_000);
    let window_words = pick(scale, 1_024, 1 << 13); // 64 KB token window
    let dict_words = pick(scale, 4_096, 1 << 14); // 128 KB dictionary
    let mut mem = MemoryImage::new();
    fill_array(&mut rng, &mut mem, R0_BASE, window_words, |r, _| r.gen());
    let entries = dict_words / 4;
    for e in 0..entries {
        let a = R1_BASE + e * 32;
        mem.store(a, rng.gen_range(0..1_000));
        let link = R1_BASE + rng.gen_range(0..entries) * 32;
        mem.store(a + 8, link);
        mem.store(a + 16, rng.gen_range(0..100));
    }

    let mut p = Program::new();
    let b0 = p.add_block();
    let b_loop = p.add_block();
    let b_then = p.add_block();
    let b_tail = p.add_block();
    let b_done = p.add_block();
    mov(&mut p, b0, 1, R0_BASE);
    mov(&mut p, b0, 7, R0_BASE); // window base
    mov(&mut p, b0, 6, (window_words - 1) * 8); // window mask
    mov(&mut p, b0, 2, trips);
    mov(&mut p, b0, 4, R1_BASE);
    mov(&mut p, b0, 5, (entries - 1) * 32);
    mov(&mut p, b0, 9, 500);
    p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(10)).src(Reg::int(1)).region(0));
    p.push(b_loop, Inst::new(Op::And).dst(Reg::int(11)).src(Reg::int(10)).src(Reg::int(5)));
    p.push(b_loop, Inst::new(Op::Shr).dst(Reg::int(11)).src(Reg::int(11)).imm(5));
    p.push(b_loop, Inst::new(Op::Shl).dst(Reg::int(11)).src(Reg::int(11)).imm(5));
    p.push(b_loop, Inst::new(Op::Add).dst(Reg::int(12)).src(Reg::int(4)).src(Reg::int(11)));
    p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(14)).src(Reg::int(12)).region(1));
    ballast(&mut p, b_loop, 5);
    p.push(b_loop, Inst::new(Op::CmpLt).dst(Reg::pred(2)).src(Reg::int(14)).src(Reg::int(9)));
    p.push(b_loop, Inst::new(Op::Br { target: b_tail }).qp(Reg::pred(2)));
    p.push(b_then, Inst::new(Op::Load).dst(Reg::int(15)).src(Reg::int(12)).imm(16).region(1));
    p.push(b_then, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(15)));
    wrap_advance(&mut p, b_tail, 1, 7, 6, 30, 8);
    counter_tail(&mut p, b_tail, 2, b_loop);
    p.push(b_done, Inst::new(Op::Halt));
    finish("parser", false, p, mem)
}

/// `vortex` — object database. A wrapped object stream drives three-level
/// indirection (object table → attribute block → value) where attribute
/// pointers are 70% hot / 30% cold over a 1 MB heap: chained short misses,
/// but no loop-carried load SCC, so no RESTART.
pub fn vortex(scale: Scale) -> Workload {
    vortex_seeded(scale, 0)
}

/// Seeded variant of [`vortex`] for sensitivity studies.
pub fn vortex_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("vortex", scale_tag(scale) ^ (seed << 8));
    let trips = pick(scale, 400, 12_500); // x4 unroll => 50k lookups
    let stream_words = pick(scale, 1_024, 1 << 13); // 64 KB object stream
    let hot_attr = 1 << 13; // 64 KB hot attribute region
    let attr_words = pick(scale, 4_096, 1 << 15); // 256 KB attribute heap
    let mut mem = MemoryImage::new();
    fill_array(&mut rng, &mut mem, R0_BASE, stream_words, |r, _| {
        let idx = if r.gen_range(0..100) < 85 {
            r.gen_range(0..hot_attr.min(attr_words))
        } else {
            r.gen_range(0..attr_words)
        };
        R1_BASE + idx * 8
    });
    fill_array(&mut rng, &mut mem, R1_BASE, attr_words, |r, _| r.gen_range(0..10_000));

    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    mov(&mut p, b0, 1, R0_BASE);
    mov(&mut p, b0, 7, R0_BASE); // stream base
    mov(&mut p, b0, 6, (stream_words - 1) * 8); // stream mask
    mov(&mut p, b0, 2, trips);
    // Unrolled x4: four independent object lookups per iteration
    // (object pointer from the stream, then two attribute words).
    for lane in 0..4u8 {
        let t = 10 + lane * 5;
        p.push(
            b1,
            Inst::new(Op::Load).dst(Reg::int(t)).src(Reg::int(1)).imm(8 * lane as i64).region(0),
        );
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(t + 2)).src(Reg::int(t)).region(1));
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(t + 3)).src(Reg::int(t)).imm(8).region(1));
        ballast(&mut p, b1, 1);
        p.push(
            b1,
            Inst::new(Op::Add).dst(Reg::int(t + 4)).src(Reg::int(t + 2)).src(Reg::int(t + 3)),
        );
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(t + 4)));
    }
    ballast(&mut p, b1, 6);
    wrap_advance(&mut p, b1, 1, 7, 6, 30, 32);
    counter_tail(&mut p, b1, 2, b1);
    let b2 = p.add_block();
    p.push(b2, Inst::new(Op::Halt));
    finish("vortex", false, p, mem)
}

/// `twolf` — standard-cell placement. Cache-resident cell reads drive
/// *highly unpredictable* branches while a mixed hot/cold net table
/// supplies the longer misses: the benchmark where multipass's advance
/// branch resolution cuts front-end stalls (the paper reports a 29%
/// front-end reduction). The branch-deciding loads hit the L1/L2, so
/// advance execution resolves the branches while a net-table miss is
/// outstanding.
pub fn twolf(scale: Scale) -> Workload {
    twolf_seeded(scale, 0)
}

/// Seeded variant of [`twolf`] for sensitivity studies.
pub fn twolf_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("twolf", scale_tag(scale) ^ (seed << 8));
    let trips = pick(scale, 400, 30_000);
    let stream_words = pick(scale, 1_024, 1 << 13); // 64 KB net stream
    let cell_words = pick(scale, 1_024, 1 << 13); // 64 KB cell pool (hot)
    let hot_net = 1 << 12; // 32 KB hot nets
    let net_words = pick(scale, 2_048, 1 << 17); // 1 MB net table
    let mut mem = MemoryImage::new();
    fill_indices_mixed(
        &mut rng,
        &mut mem,
        R2_BASE,
        stream_words,
        hot_net.min(net_words),
        net_words,
        80,
    );
    fill_array(&mut rng, &mut mem, R0_BASE, cell_words, |r, _| r.gen_range(0..100));
    fill_array(&mut rng, &mut mem, R1_BASE, net_words, |r, _| r.gen_range(0..1_000));

    let mut p = Program::new();
    let b0 = p.add_block();
    let b_loop = p.add_block();
    let b_then = p.add_block();
    let b_tail = p.add_block();
    let b_done = p.add_block();
    mov(&mut p, b0, 1, R0_BASE); // cell pool base
    mov(&mut p, b0, 2, trips);
    mov(&mut p, b0, 4, R1_BASE); // net table base
    mov(&mut p, b0, 5, (cell_words - 1) * 8);
    mov(&mut p, b0, 9, 50);
    mov(&mut p, b0, 20, R2_BASE); // net stream cursor
    mov(&mut p, b0, 21, R2_BASE); // net stream base
    mov(&mut p, b0, 22, (stream_words - 1) * 8); // net stream mask
                                                 // Cold-ish gather from the net table (the miss feeding the trigger).
    p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(17)).src(Reg::int(20)).region(2));
    p.push(b_loop, Inst::new(Op::Shl).dst(Reg::int(17)).src(Reg::int(17)).imm(3));
    p.push(b_loop, Inst::new(Op::Add).dst(Reg::int(18)).src(Reg::int(4)).src(Reg::int(17)));
    p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(19)).src(Reg::int(18)).region(1));
    p.push(b_loop, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(19)));
    // Hot cell read deciding a 50/50 branch (L1/L2 resident).
    p.push(b_loop, Inst::new(Op::Shl).dst(Reg::int(10)).src(Reg::int(2)).imm(4));
    p.push(b_loop, Inst::new(Op::And).dst(Reg::int(10)).src(Reg::int(10)).src(Reg::int(5)));
    p.push(b_loop, Inst::new(Op::Add).dst(Reg::int(11)).src(Reg::int(1)).src(Reg::int(10)));
    p.push(b_loop, Inst::new(Op::Load).dst(Reg::int(12)).src(Reg::int(11)).region(0));
    ballast(&mut p, b_loop, 3);
    p.push(b_loop, Inst::new(Op::CmpLt).dst(Reg::pred(2)).src(Reg::int(12)).src(Reg::int(9)));
    p.push(b_loop, Inst::new(Op::Br { target: b_tail }).qp(Reg::pred(2)));
    // then: extra integer work on the fall-through path.
    p.push(b_then, Inst::new(Op::Mul).dst(Reg::int(13)).src(Reg::int(12)).src(Reg::int(12)));
    p.push(b_then, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(13)));
    ballast(&mut p, b_then, 2);
    p.push(b_tail, Inst::new(Op::AddImm).dst(Reg::int(3)).src(Reg::int(3)).imm(1));
    wrap_advance(&mut p, b_tail, 20, 21, 22, 30, 8);
    counter_tail(&mut p, b_tail, 2, b_loop);
    p.push(b_done, Inst::new(Op::Halt));
    finish("twolf", false, p, mem)
}

// ======================================================================
// CFP2000-like kernels
// ======================================================================

/// `art` — neural-network image recognition. Two FP streams strided over
/// 1 MB windows (every access opens a new L1 line; the first lap misses to
/// memory, later laps hit the L3): abundant *independent* misses with
/// multiply-accumulate work and an output store stream. High memory-level
/// parallelism bounded by the 16 MSHRs.
pub fn art(scale: Scale) -> Workload {
    art_seeded(scale, 0)
}

/// Seeded variant of [`art`] for sensitivity studies.
pub fn art_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("art", scale_tag(scale) ^ (seed << 8));
    let trips = pick(scale, 400, 12_000); // x4 unroll => 48k elements
    let stride = 64u64;
    let elems = pick(scale, 512, 1 << 10); // 64 KB window per stream
    let mut mem = MemoryImage::new();
    for i in 0..elems {
        mem.store(R0_BASE + i * stride, random_f64_bits(&mut rng));
        mem.store(R1_BASE + i * stride, random_f64_bits(&mut rng));
    }

    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    mov(&mut p, b0, 1, R0_BASE);
    mov(&mut p, b0, 7, R0_BASE);
    mov(&mut p, b0, 4, R1_BASE);
    mov(&mut p, b0, 8, R1_BASE);
    mov(&mut p, b0, 6, elems * stride - 1); // stream mask
    mov(&mut p, b0, 5, R2_BASE);
    mov(&mut p, b0, 21, R2_BASE);
    mov(&mut p, b0, 22, (1u64 << 16) - 1); // 64 KB output window mask
    mov(&mut p, b0, 2, trips);
    // Unrolled x4, as the EPIC compiler would: four independent elements
    // per iteration give the in-order pipe cross-element ILP.
    for lane in 0..4u8 {
        let f = 1 + lane * 10;
        let off = (lane as i64) * stride as i64;
        p.push(b1, Inst::new(Op::LoadFp).dst(Reg::fp(f)).src(Reg::int(1)).imm(off).region(0));
        p.push(b1, Inst::new(Op::LoadFp).dst(Reg::fp(f + 1)).src(Reg::int(4)).imm(off).region(1));
        p.push(b1, Inst::new(Op::FMul).dst(Reg::fp(f + 2)).src(Reg::fp(f)).src(Reg::fp(f + 1)));
        p.push(b1, Inst::new(Op::FAdd).dst(Reg::fp(f + 3)).src(Reg::fp(f + 3)).src(Reg::fp(f + 2)));
        p.push(b1, Inst::new(Op::FCvt).dst(Reg::int(10 + lane)).src(Reg::fp(f + 2)));
        p.push(
            b1,
            Inst::new(Op::Store)
                .src(Reg::int(5))
                .src(Reg::int(10 + lane))
                .imm(8 * lane as i64)
                .region(2),
        );
    }
    fp_ballast(&mut p, b1, 2);
    wrap_advance(&mut p, b1, 1, 7, 6, 30, 4 * stride as i64);
    wrap_advance(&mut p, b1, 4, 8, 6, 31, 4 * stride as i64);
    wrap_advance(&mut p, b1, 5, 21, 22, 32, 32);
    counter_tail(&mut p, b1, 2, b1);
    let b2 = p.add_block();
    p.push(b2, Inst::new(Op::Halt));
    finish("art", true, p, mem)
}

/// `equake` — earthquake FEM. Sparse matrix-vector product: a wrapped
/// index stream gathers 65% hot / 35% cold from a 512 KB FP vector with an
/// FP reduction per element.
pub fn equake(scale: Scale) -> Workload {
    equake_seeded(scale, 0)
}

/// Seeded variant of [`equake`] for sensitivity studies.
pub fn equake_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("equake", scale_tag(scale) ^ (seed << 8));
    let trips = pick(scale, 400, 13_500); // x4 unroll => 54k elements
    let stream_words = pick(scale, 1_024, 1 << 13); // 64 KB index stream
    let hot_words = 1 << 12; // 32 KB hot vector region
    let vec_words = pick(scale, 4_096, 1 << 16); // 512 KB FP vector
    let mut mem = MemoryImage::new();
    fill_indices_mixed(
        &mut rng,
        &mut mem,
        R0_BASE,
        stream_words,
        hot_words.min(vec_words),
        vec_words,
        90,
    );
    fill_array(&mut rng, &mut mem, R1_BASE, vec_words, |r, _| random_f64_bits(r));
    fill_array(&mut rng, &mut mem, R2_BASE, stream_words, |r, _| random_f64_bits(r));

    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    mov(&mut p, b0, 1, R0_BASE); // index stream cursor
    mov(&mut p, b0, 7, R0_BASE);
    mov(&mut p, b0, 6, (stream_words - 1) * 8);
    mov(&mut p, b0, 4, R1_BASE); // gather vector
    mov(&mut p, b0, 5, R2_BASE); // value stream cursor
    mov(&mut p, b0, 8, R2_BASE);
    mov(&mut p, b0, 2, trips);
    // Unrolled x4: four independent gather+reduce lanes per iteration.
    for lane in 0..4u8 {
        let f = 1 + lane * 5;
        let t = 10 + lane * 3;
        p.push(
            b1,
            Inst::new(Op::Load).dst(Reg::int(t)).src(Reg::int(1)).imm(8 * lane as i64).region(0),
        );
        p.push(b1, Inst::new(Op::Shl).dst(Reg::int(t + 1)).src(Reg::int(t)).imm(3));
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(t + 2)).src(Reg::int(4)).src(Reg::int(t + 1)));
        p.push(b1, Inst::new(Op::LoadFp).dst(Reg::fp(f)).src(Reg::int(t + 2)).region(1));
        p.push(
            b1,
            Inst::new(Op::LoadFp)
                .dst(Reg::fp(f + 1))
                .src(Reg::int(5))
                .imm(8 * lane as i64)
                .region(2),
        );
        p.push(b1, Inst::new(Op::FMul).dst(Reg::fp(f + 2)).src(Reg::fp(f)).src(Reg::fp(f + 1)));
        p.push(b1, Inst::new(Op::FAdd).dst(Reg::fp(f + 3)).src(Reg::fp(f + 3)).src(Reg::fp(f + 2)));
    }
    fp_ballast(&mut p, b1, 2);
    ballast(&mut p, b1, 3);
    wrap_advance(&mut p, b1, 1, 7, 6, 30, 32);
    wrap_advance(&mut p, b1, 5, 8, 6, 31, 32);
    counter_tail(&mut p, b1, 2, b1);
    let b2 = p.add_block();
    p.push(b2, Inst::new(Op::Halt));
    finish("equake", true, p, mem)
}

/// `mesa` — software 3D rendering. A sequential vertex stream over a
/// 256 KB working set with four *independent*, shallow FP chains per
/// unrolled iteration (the generator unrolls by four, as OpenIMPACT
/// would): performance is bound by FP latency ("other" stalls) and static
/// ILP, not by the memory system.
pub fn mesa(scale: Scale) -> Workload {
    mesa_seeded(scale, 0)
}

/// Seeded variant of [`mesa`] for sensitivity studies.
pub fn mesa_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("mesa", scale_tag(scale) ^ (seed << 8));
    let trips = pick(scale, 100, 12_288); // unrolled x8 => 8x elements
    let ws_words = pick(scale, 1_024, 1 << 12); // 32 KB working set
    let mut mem = MemoryImage::new();
    fill_array(&mut rng, &mut mem, R0_BASE, ws_words, |r, _| random_f64_bits(r));

    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    mov(&mut p, b0, 1, R0_BASE);
    mov(&mut p, b0, 7, R0_BASE);
    mov(&mut p, b0, 6, (ws_words - 1) * 8);
    mov(&mut p, b0, 2, trips);
    // Eight unrolled lanes, each: load, square (fmul), accumulate (fadd).
    for lane in 0..8u8 {
        let f = 1 + lane * 3;
        p.push(
            b1,
            Inst::new(Op::LoadFp).dst(Reg::fp(f)).src(Reg::int(1)).imm(8 * lane as i64).region(0),
        );
        p.push(b1, Inst::new(Op::FMul).dst(Reg::fp(f + 1)).src(Reg::fp(f)).src(Reg::fp(f)));
        p.push(
            b1,
            Inst::new(Op::FAdd).dst(Reg::fp(30 + lane)).src(Reg::fp(30 + lane)).src(Reg::fp(f + 1)),
        );
    }
    ballast(&mut p, b1, 2);
    wrap_advance(&mut p, b1, 1, 7, 6, 30, 64);
    counter_tail(&mut p, b1, 2, b1);
    let b2 = p.add_block();
    p.push(b2, Inst::new(Op::Halt));
    finish("mesa", true, p, mem)
}

/// `ammp` — molecular dynamics. A segment-local atom-list chase (1 MB
/// pool) whose payload indexes a separate neighbour table (60% hot / 40%
/// cold over 2 MB) — a second, overlappable miss per hop — followed by FP
/// force computation.
pub fn ammp(scale: Scale) -> Workload {
    ammp_seeded(scale, 0)
}

/// Seeded variant of [`ammp`] for sensitivity studies.
pub fn ammp_seeded(scale: Scale, seed: u64) -> Workload {
    let mut rng = kernel_rng("ammp", scale_tag(scale) ^ (seed << 8));
    let nodes = pick(scale, 300, 4_096);
    let trips = pick(scale, 300, 32_768); // eight laps
    let node_bytes = 32; // 128 KB atom pool
    let hot_words = 1 << 13; // 64 KB hot neighbours
    let nbr_words = pick(scale, 4_096, 1 << 16); // 512 KB neighbour table
    let mut mem = MemoryImage::new();
    let first = clustered_ring(&mut rng, &mut mem, R0_BASE, nodes, node_bytes, 32, |r, k| {
        if k == 1 {
            let idx = if r.gen_range(0..100) < 90 {
                r.gen_range(0..hot_words.min(nbr_words))
            } else {
                r.gen_range(0..nbr_words)
            };
            R1_BASE + idx * 8
        } else {
            random_f64_bits(r)
        }
    });
    fill_array(&mut rng, &mut mem, R1_BASE, nbr_words, |r, _| random_f64_bits(r));

    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    mov(&mut p, b0, 1, first);
    mov(&mut p, b0, 2, trips);
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).region(0));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(10)).src(Reg::int(1)).imm(8).region(0));
    p.push(b1, Inst::new(Op::LoadFp).dst(Reg::fp(1)).src(Reg::int(1)).imm(16).region(0));
    p.push(b1, Inst::new(Op::LoadFp).dst(Reg::fp(2)).src(Reg::int(10)).region(1));
    p.push(b1, Inst::new(Op::FMul).dst(Reg::fp(3)).src(Reg::fp(1)).src(Reg::fp(2)));
    p.push(b1, Inst::new(Op::FAdd).dst(Reg::fp(4)).src(Reg::fp(4)).src(Reg::fp(3)));
    fp_ballast(&mut p, b1, 2);
    ballast(&mut p, b1, 2);
    counter_tail(&mut p, b1, 2, b1);
    let b2 = p.add_block();
    p.push(b2, Inst::new(Op::Halt));
    finish("ammp", true, p, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::interp::Interpreter;

    fn run_to_halt(w: &Workload) -> ff_isa::ArchState {
        let mut s = ff_isa::ArchState::new();
        s.mem = w.mem.clone();
        let mut i = Interpreter::with_state(&w.program, s);
        let stop = i.run(50_000_000).unwrap();
        assert_eq!(stop, ff_isa::interp::StopReason::Halted, "{} hung", w.name);
        i.into_state()
    }

    #[test]
    fn mcf_walks_the_whole_ring() {
        let w = mcf(Scale::Test);
        let s = run_to_halt(&w);
        assert_ne!(s.int(1), 0, "ring cursor stays valid");
        assert_eq!(s.int(2), 0, "trip counter exhausted");
        assert_ne!(s.int(3), 0, "accumulator should be non-zero");
    }

    #[test]
    fn gzip_updates_its_hash_table() {
        let w = gzip(Scale::Test);
        let before = w.mem.clone();
        let s = run_to_halt(&w);
        assert!(!s.mem.semantically_eq(&before), "gzip should have written table updates");
    }

    #[test]
    fn art_accumulates_fp() {
        let w = art(Scale::Test);
        let s = run_to_halt(&w);
        assert!(s.fp(4) > 0.0, "dot product should be positive");
    }

    #[test]
    fn equake_gathers_within_bounds() {
        let w = equake(Scale::Test);
        let s = run_to_halt(&w);
        assert!(s.fp(4).is_finite());
        assert!(s.fp(4) > 0.0);
    }

    #[test]
    fn mesa_fp_lanes_are_finite() {
        let w = mesa(Scale::Test);
        let s = run_to_halt(&w);
        for lane in 0..8 {
            assert!(s.fp(30 + lane).is_finite());
            assert!(s.fp(30 + lane) > 0.0);
        }
    }

    #[test]
    fn ammp_chases_and_computes() {
        let w = ammp(Scale::Test);
        let s = run_to_halt(&w);
        assert_ne!(s.int(1), 0, "ring cursor stays valid");
        assert!(s.fp(4).is_finite());
        assert!(s.fp(4) != 0.0);
    }

    #[test]
    fn twolf_branches_both_ways() {
        let w = twolf(Scale::Test);
        let s = run_to_halt(&w);
        assert!(s.int(3) > 400, "then-path never executed?");
    }

    #[test]
    fn paper_scale_is_bigger_than_test_scale() {
        let t = mcf(Scale::Test);
        let p = mcf(Scale::Paper);
        assert!(p.mem.written_words() > 10 * t.mem.written_words());
    }

    #[test]
    fn wrapped_streams_stay_in_their_windows() {
        // gzip's input cursor must never leave the 64 KB window: all loads
        // must target initialized regions (would read zeros otherwise and
        // break the hash distribution).
        let w = gzip(Scale::Test);
        let s = run_to_halt(&w);
        // r1 ends inside [R0_BASE, R0_BASE + window).
        let r1 = s.int(1);
        assert!((0x0100_0000..0x0100_0000 + (1 << 13) * 8).contains(&r1), "r1 = {r1:#x}");
    }
}
