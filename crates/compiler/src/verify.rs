//! Static verification of scheduled EPIC code.
//!
//! The pipeline models trust the compiler's issue groups: an instruction
//! group must fit the machine's functional-unit budget and contain no
//! intra-group read-after-write or write-after-write hazards (EPIC group
//! semantics: all reads happen before all writes, and two writes to the
//! same register in one group are undefined). [`verify_schedule`] checks
//! every group of a compiled program and reports the first violation — the
//! workload generators run it in debug builds, and it is useful to anyone
//! hand-writing kernels with `ff_isa::asm`.

use std::fmt;

use ff_isa::{program::BlockId, Inst, Program};

use crate::sched::FuSlots;

/// A violation of EPIC issue-group rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// A group needs more functional-unit slots than the machine has.
    FuOverflow {
        /// Block containing the group.
        block: BlockId,
        /// Index of the first instruction of the group within the block.
        group_start: usize,
        /// Number of instructions in the group.
        group_len: usize,
    },
    /// An instruction reads a register written earlier in the same group.
    IntraGroupRaw {
        /// Block containing the group.
        block: BlockId,
        /// Index of the producer within the block.
        producer: usize,
        /// Index of the consumer within the block.
        consumer: usize,
    },
    /// Two instructions in one group write the same register.
    IntraGroupWaw {
        /// Block containing the group.
        block: BlockId,
        /// Index of the first writer within the block.
        first: usize,
        /// Index of the second writer within the block.
        second: usize,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::FuOverflow { block, group_start, group_len } => write!(
                f,
                "{block}: group at {group_start} ({group_len} insts) exceeds the FU budget"
            ),
            ScheduleViolation::IntraGroupRaw { block, producer, consumer } => write!(
                f,
                "{block}: instruction {consumer} reads a register written by {producer} in the same group"
            ),
            ScheduleViolation::IntraGroupWaw { block, first, second } => write!(
                f,
                "{block}: instructions {first} and {second} write the same register in one group"
            ),
        }
    }
}

impl std::error::Error for ScheduleViolation {}

fn check_group(
    block_id: BlockId,
    block: &[Inst],
    start: usize,
    end: usize,
) -> Result<(), ScheduleViolation> {
    let mut slots = FuSlots::default();
    for (i, inst) in block[start..end].iter().enumerate() {
        if !slots.try_take(inst) {
            return Err(ScheduleViolation::FuOverflow {
                block: block_id,
                group_start: start,
                group_len: end - start,
            });
        }
        // Intra-group hazards against every earlier member.
        for (j, earlier) in block[start..start + i].iter().enumerate() {
            if let Some(w) = earlier.writes() {
                if inst.reads().any(|r| r == w) {
                    return Err(ScheduleViolation::IntraGroupRaw {
                        block: block_id,
                        producer: start + j,
                        consumer: start + i,
                    });
                }
                if inst.writes() == Some(w) {
                    return Err(ScheduleViolation::IntraGroupWaw {
                        block: block_id,
                        first: start + j,
                        second: start + i,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Verifies every issue group of `program` against EPIC group rules.
///
/// # Errors
///
/// Returns the first [`ScheduleViolation`] found, if any.
pub fn verify_schedule(program: &Program) -> Result<(), ScheduleViolation> {
    for b in 0..program.num_blocks() {
        let block_id = BlockId(b as u32);
        let block = program.block(block_id).expect("block exists");
        let mut start = 0;
        for (i, inst) in block.iter().enumerate() {
            if inst.ends_group() || i + 1 == block.len() {
                check_group(block_id, block, start, i + 1)?;
                start = i + 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompilerOptions};
    use ff_isa::{Op, Reg};

    #[test]
    fn compiled_output_always_verifies() {
        let mut p = Program::new();
        let b0 = p.add_block();
        for i in 1..=20 {
            p.push(b0, Inst::new(Op::AddImm).dst(Reg::int(i)).src(Reg::int(i / 2)).imm(i as i64));
        }
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(30)).src(Reg::int(1)));
        p.push(b0, Inst::new(Op::Mul).dst(Reg::int(31)).src(Reg::int(30)).src(Reg::int(2)));
        p.push(b0, Inst::new(Op::Halt));
        let c = compile(&p, &CompilerOptions::default());
        assert_eq!(verify_schedule(&c), Ok(()));
    }

    #[test]
    fn detects_intra_group_raw() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(1));
        p.push(b, Inst::new(Op::Add).dst(Reg::int(2)).src(Reg::int(1)).src(Reg::int(1)).stop());
        p.push(b, Inst::new(Op::Halt).stop());
        assert!(matches!(
            verify_schedule(&p),
            Err(ScheduleViolation::IntraGroupRaw { producer: 0, consumer: 1, .. })
        ));
    }

    #[test]
    fn detects_intra_group_waw() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(1));
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(2).stop());
        p.push(b, Inst::new(Op::Halt).stop());
        assert!(matches!(
            verify_schedule(&p),
            Err(ScheduleViolation::IntraGroupWaw { first: 0, second: 1, .. })
        ));
    }

    #[test]
    fn detects_fu_overflow() {
        let mut p = Program::new();
        let b = p.add_block();
        // Five loads in one group: only four memory ports exist.
        for i in 1..=5 {
            p.push(b, Inst::new(Op::Load).dst(Reg::int(i)).src(Reg::int(20 + i)));
        }
        if let Some(block) = p.block_mut(ff_isa::program::BlockId(0)) {
            block.last_mut().unwrap().set_stop(true);
        }
        p.push(b, Inst::new(Op::Halt).stop());
        assert!(matches!(
            verify_schedule(&p),
            Err(ScheduleViolation::FuOverflow { group_len: 5, .. })
        ));
    }

    #[test]
    fn unterminated_final_group_is_still_checked() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(1));
        p.push(b, Inst::new(Op::Add).dst(Reg::int(2)).src(Reg::int(1)).src(Reg::int(1)));
        // No stop bits at all: the trailing group still gets validated.
        assert!(verify_schedule(&p).is_err());
    }

    #[test]
    fn violations_render() {
        let v = ScheduleViolation::FuOverflow { block: BlockId(2), group_start: 4, group_len: 7 };
        assert!(v.to_string().contains("B2"));
        assert!(v.to_string().contains("exceeds"));
    }
}
