//! CSV serialization of experiment results, for external plotting.

use crate::figures::{Figure6, Figure6Row, Figure7, Figure8};

/// Figure 6 as CSV: one row per (benchmark, model) with the normalized
/// four-way breakdown.
pub fn figure6(f: &Figure6) -> String {
    let mut out = String::from("bench,model,execution,front_end,other,load,total\n");
    for r in &f.rows {
        for (model, b) in [("base", &r.base), ("MP", &r.mp), ("OOO", &r.ooo)] {
            out.push_str(&format!(
                "{},{},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                r.bench,
                model,
                b[0],
                b[1],
                b[2],
                b[3],
                Figure6Row::total(b)
            ));
        }
    }
    out
}

/// Figure 7 as CSV: one row per (benchmark, hierarchy) with MP and OOO
/// speedups.
pub fn figure7(f: &Figure7) -> String {
    let mut out = String::from("bench,hierarchy,mp_speedup,ooo_speedup\n");
    for c in &f.configs {
        for (bench, mp, ooo) in &c.rows {
            out.push_str(&format!("{bench},{},{mp:.6},{ooo:.6}\n", c.name));
        }
    }
    out
}

/// Figure 8 as CSV.
pub fn figure8(f: &Figure8) -> String {
    let mut out = String::from("bench,pct_without_regrouping,pct_without_restart\n");
    for (bench, nr, ns) in &f.rows {
        out.push_str(&format!("{bench},{nr:.2},{ns:.2}\n"));
    }
    out
}

/// Writes `content` to `$FF_CSV_DIR/<name>.csv` when the `FF_CSV_DIR`
/// environment variable is set; otherwise does nothing. Returns the path
/// written, if any.
pub fn write_if_configured(name: &str, content: &str) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("FF_CSV_DIR")?;
    let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
    match std::fs::write(&path, content) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::suite::Suite;
    use ff_workloads::Scale;

    #[test]
    fn csv_outputs_have_headers_and_rows() {
        let mut s = Suite::new(Scale::Test);
        let f6 = figures::figure6(&mut s);
        let csv6 = figure6(&f6);
        assert!(csv6.starts_with("bench,model,"));
        assert_eq!(csv6.lines().count(), 1 + 12 * 3);
        let f8 = figures::figure8(&mut s);
        let csv8 = figure8(&f8);
        assert_eq!(csv8.lines().count(), 13);
        assert!(csv8.contains("mcf,"));
    }

    #[test]
    fn write_is_noop_without_env() {
        std::env::remove_var("FF_CSV_DIR");
        assert!(write_if_configured("x", "a,b\n").is_none());
    }
}
