//! Generation of the paper's Table 1: power ratios of out-of-order to
//! multipass structures.

use ff_engine::Activity;

use crate::model::ClockGating;
use crate::structures::{multipass_structures, out_of_order_structures};

/// One row group of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Row-group label.
    pub group: &'static str,
    /// Names of the out-of-order structures in the group.
    pub ooo_structures: Vec<&'static str>,
    /// Names of the multipass structures in the group.
    pub multipass_structures: Vec<&'static str>,
    /// Peak power ratio (OOO / multipass), assuming maximum switching.
    pub peak_ratio: f64,
    /// Average power ratio under measured activity and linear clock gating.
    pub average_ratio: f64,
}

/// Computes Table 1 from the activity records of an out-of-order run and a
/// multipass run over the same workload set.
///
/// A ratio greater than one means the out-of-order structures consume more
/// power, as in the paper.
pub fn table1(ooo_activity: &Activity, mp_activity: &Activity) -> Vec<Table1Row> {
    let gating = ClockGating::default();
    let ooo = out_of_order_structures();
    let mp = multipass_structures();
    ooo.iter()
        .zip(mp.iter())
        .map(|(o, m)| {
            let o_avg = o.average(ooo_activity, &gating);
            let m_avg = m.average(mp_activity, &gating);
            Table1Row {
                group: o.group,
                ooo_structures: o.structures.iter().map(|s| s.name).collect(),
                multipass_structures: m.structures.iter().map(|s| s.name).collect(),
                peak_ratio: o.peak() / m.peak(),
                average_ratio: o_avg / m_avg,
            }
        })
        .collect()
}

/// Renders Table 1 rows as aligned text (used by the bench harness).
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<18} {:>12} {:>14}\n", "Structures", "Peak Ratio", "Average Ratio"));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>12.2} {:>14.2}\n",
            r.group, r.peak_ratio, r.average_ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_ooo() -> Activity {
        Activity {
            cycles: 1_000,
            regfile_reads: 8_000,
            regfile_writes: 4_000,
            rat_reads: 10_000,
            rat_writes: 4_000,
            wakeup_broadcasts: 4_000,
            issue_selections: 4_000,
            load_buffer_searches: 1_000,
            store_buffer_searches: 2_000,
            ..Activity::default()
        }
    }

    fn sleepy_mp() -> Activity {
        Activity {
            cycles: 1_000,
            regfile_reads: 8_000,
            regfile_writes: 4_000,
            srf_reads: 500,
            srf_writes: 300,
            rs_reads: 400,
            rs_writes: 400,
            iq_reads: 4_000,
            iq_writes: 4_000,
            smaq_accesses: 100,
            asc_accesses: 120,
            ..Activity::default()
        }
    }

    #[test]
    fn produces_three_rows_with_positive_ratios() {
        let rows = table1(&busy_ooo(), &sleepy_mp());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.peak_ratio > 0.0);
            assert!(r.average_ratio > 0.0);
        }
    }

    #[test]
    fn scheduling_row_strongly_favors_multipass() {
        let rows = table1(&busy_ooo(), &sleepy_mp());
        let sched = rows.iter().find(|r| r.group == "scheduling").unwrap();
        assert!(sched.peak_ratio > 5.0, "peak {}", sched.peak_ratio);
        assert!(sched.average_ratio > 2.0, "avg {}", sched.average_ratio);
    }

    #[test]
    fn idle_multipass_structures_raise_the_average_ratio() {
        // When the MP structures are nearly idle (clock-gated) while the
        // OOO CAMs churn, the average ratio can exceed the peak ratio —
        // exactly the Table 1 memory-ordering row (3.21 peak vs 9.79 avg).
        let rows = table1(&busy_ooo(), &sleepy_mp());
        let memrow = rows.iter().find(|r| r.group == "memory ordering").unwrap();
        assert!(
            memrow.average_ratio > memrow.peak_ratio,
            "avg {} should exceed peak {}",
            memrow.average_ratio,
            memrow.peak_ratio
        );
    }

    #[test]
    fn render_is_nonempty_and_aligned() {
        let rows = table1(&busy_ooo(), &sleepy_mp());
        let s = render(&rows);
        assert!(s.contains("Peak Ratio"));
        assert_eq!(s.lines().count(), 4);
    }
}
