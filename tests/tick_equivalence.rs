//! Tick-mode equivalence: the event-driven scheduler must be a pure
//! simulator-throughput optimization. For every execution model and every
//! workload, a run with [`TickMode::EventDriven`] must be bit-for-bit
//! identical to the reference [`TickMode::Polling`] run — same statistics,
//! same activity counters, same memory counters, same final state, same
//! retirement stream, same probe observation stream, and byte-identical
//! campaign artifacts.

use std::fmt::Write as _;

use flea_flicker::baselines::{InOrder, OutOfOrder, Runahead};
use flea_flicker::engine::probe::{AscForwardObs, CycleObs, MemAccessObs, PipelineProbe};
use flea_flicker::engine::{
    ExecutionModel, MachineConfig, RetireEvent, RetireHook, RunResult, SimCase, TickMode,
};
use flea_flicker::harness::artifact::render_sim_artifact;
use flea_flicker::harness::JobSpec;
use flea_flicker::isa::Reg;
use flea_flicker::multipass::{Multipass, MultipassConfig};
use flea_flicker::workloads::{Scale, Workload};

fn models(machine: MachineConfig) -> Vec<(&'static str, Box<dyn ExecutionModel>)> {
    vec![
        ("inorder", Box::new(InOrder::new(machine))),
        ("runahead", Box::new(Runahead::new(machine))),
        ("ooo", Box::new(OutOfOrder::new(machine))),
        ("ooo-realistic", Box::new(OutOfOrder::realistic(machine))),
        ("multipass", Box::new(Multipass::new(machine))),
        (
            "multipass-noregroup",
            Box::new(Multipass::with_config(MultipassConfig::without_regrouping(machine))),
        ),
        (
            "multipass-norestart",
            Box::new(Multipass::with_config(MultipassConfig::without_restart(machine))),
        ),
    ]
}

/// Records the entire retirement stream as rendered lines, so two runs can
/// be compared event-for-event with a readable diff on mismatch.
#[derive(Default)]
struct StreamHook {
    lines: Vec<String>,
}

impl RetireHook for StreamHook {
    fn on_retire(&mut self, event: &RetireEvent<'_>) {
        self.lines.push(event.to_string());
    }
}

fn run_with(
    model: &mut dyn ExecutionModel,
    case: &SimCase<'_>,
    tick: TickMode,
) -> (RunResult, Vec<String>) {
    model.set_tick_mode(tick);
    let mut hook = StreamHook::default();
    let result = model.run_hooked(case, &mut hook);
    (result, hook.lines)
}

fn first_diff(a: &[String], b: &[String]) -> String {
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y {
            return format!("first divergence at event {i}:\n  polling: {x}\n  event:   {y}");
        }
    }
    format!("stream lengths differ: polling={} event={}", a.len(), b.len())
}

/// The acceptance grid: every model x every benchmark, event-driven runs
/// must reproduce the polling runs' results, retirement streams, and
/// rendered campaign artifacts byte for byte.
#[test]
fn event_driven_matches_polling_on_every_grid_point() {
    let machine = MachineConfig::itanium2_base();
    for w in Workload::all(Scale::Test) {
        let case = SimCase::new(&w.program, w.mem.clone());
        for (name, mut model) in models(machine) {
            let (polled, polled_stream) = run_with(&mut *model, &case, TickMode::Polling);
            let (event, event_stream) = run_with(&mut *model, &case, TickMode::EventDriven);
            let at = format!("{name} on {}", w.name);
            assert_eq!(polled.stats, event.stats, "stats diverge: {at}");
            assert_eq!(polled.activity, event.activity, "activity diverges: {at}");
            assert_eq!(polled.mem_stats, event.mem_stats, "mem stats diverge: {at}");
            assert!(
                polled.final_state.semantically_eq(&event.final_state),
                "final state diverges: {at}"
            );
            assert!(
                polled_stream == event_stream,
                "retirement streams diverge: {at}\n{}",
                first_diff(&polled_stream, &event_stream)
            );
        }
    }
}

/// The campaign artifact for a grid point must not depend on the tick
/// mode: artifacts are content-addressed and compared byte-for-byte by
/// resume and by cross-run diffing. Every kernel × every model — the
/// artifact layer deliberately excludes the simulator's
/// self-instrumentation counters, so this also pins the store format
/// against instrumentation changes.
#[test]
fn artifacts_are_byte_identical_across_tick_modes() {
    use flea_flicker::experiments::{HierKind, ModelKind};
    let machine = MachineConfig::itanium2_base();
    for w in Workload::all(Scale::Test) {
        let case = SimCase::new(&w.program, w.mem.clone());
        for model_kind in ModelKind::ALL {
            let spec = JobSpec::sim(model_kind, HierKind::Base, w.name, 0, Scale::Test);
            let render = |tick| {
                let mut model = model_kind.build(machine);
                model.set_tick_mode(tick);
                render_sim_artifact(&spec, &model.run(&case))
            };
            let polled = render(TickMode::Polling);
            let event = render(TickMode::EventDriven);
            assert_eq!(
                polled,
                event,
                "artifact bytes diverge for {} on {}",
                model_kind.name(),
                w.name
            );
        }
    }
}

/// The "zero heap allocation per instruction in steady state" invariant
/// (DESIGN.md §7e): across full runs retiring thousands of instructions,
/// `alloc_count` stays a small warm-up constant — the in-flight
/// containers (OOO ready sets/timers, the runahead register overlay, the
/// multipass seq ring) are sized to their windows up front and never
/// grow on the hot path.
#[test]
fn in_flight_containers_do_not_allocate_in_steady_state() {
    let machine = MachineConfig::itanium2_base();
    let w = Workload::by_name("mcf", Scale::Test).unwrap();
    let case = SimCase::new(&w.program, w.mem.clone());
    for (name, mut model) in models(machine) {
        let result = model.run(&case);
        assert!(
            result.stats.retired > 2_000,
            "{name}: kernel too small to exercise steady state ({} retired)",
            result.stats.retired
        );
        assert!(
            result.activity.alloc_count <= 16,
            "{name}: alloc_count {} over {} retirements — an in-flight container \
             is growing on the hot path",
            result.activity.alloc_count,
            result.stats.retired
        );
    }
}

/// Records every observation a sentinel could see, rendered to strings.
#[derive(Default)]
struct StreamProbe {
    lines: Vec<String>,
}

impl PipelineProbe for StreamProbe {
    fn on_fetch(&mut self, seq: u64, cycle: u64) {
        self.lines.push(format!("fetch seq={seq} cy={cycle}"));
    }

    fn on_issue(&mut self, seq: u64, cycle: u64) {
        self.lines.push(format!("issue seq={seq} cy={cycle}"));
    }

    fn on_writeback(&mut self, seq: u64, reg: Reg, cycle: u64) {
        self.lines.push(format!("wb seq={seq} reg={reg} cy={cycle}"));
    }

    fn on_retire(&mut self, event: &RetireEvent<'_>) {
        self.lines.push(format!("retire {event}"));
    }

    fn on_cycle(&mut self, obs: &CycleObs) {
        self.lines.push(format!("cycle {obs:?}"));
    }

    fn on_mem_access(&mut self, obs: &MemAccessObs) {
        self.lines.push(format!("mem {obs:?}"));
    }

    fn on_asc_forward(&mut self, obs: &AscForwardObs) {
        self.lines.push(format!("asc {obs:?}"));
    }

    fn on_run_end(&mut self, result: &RunResult) {
        let mut line = String::from("end");
        let _ = write!(line, " cycles={} retired={}", result.stats.cycles, result.stats.retired);
        self.lines.push(line);
    }
}

/// Regression guard for the quiescence fast-forward: a probed run forces
/// per-cycle observation, so if the fast-forward ever skipped a cycle with
/// a pending sentinel-visible event (a CycleObs snapshot, a memory
/// completion, an ASC forward), the observation streams would diverge.
#[test]
fn fast_forward_never_skips_a_probe_visible_event() {
    let machine = MachineConfig::itanium2_base();
    for bench in ["mcf", "gap", "art", "equake"] {
        let w = Workload::by_name(bench, Scale::Test).unwrap();
        let case = SimCase::new(&w.program, w.mem.clone());
        let observe = |tick| {
            let mut model = Multipass::new(machine);
            model.set_tick_mode(tick);
            let mut hook = StreamHook::default();
            let mut probe = StreamProbe::default();
            model
                .try_run_probed(&case, &mut hook, &mut probe)
                .expect("test workloads halt within budget");
            probe.lines
        };
        let polled = observe(TickMode::Polling);
        let event = observe(TickMode::EventDriven);
        assert!(
            polled == event,
            "probe streams diverge on {bench}\n{}",
            first_diff(&polled, &event)
        );
    }
}

/// The watchdog path must also be tick-mode independent: when a run is
/// abandoned at a cycle budget, both modes must report the identical cap
/// and retirement count (the fast-forward clamps at the budget instead of
/// warping past it).
#[test]
fn cycle_budget_abandonment_is_tick_mode_independent() {
    let machine = MachineConfig::itanium2_base();
    let w = Workload::by_name("mcf", Scale::Test).unwrap();
    for budget in [100, 1_000, 10_000] {
        let case = SimCase::new(&w.program, w.mem.clone()).with_cycle_budget(budget);
        for (name, mut model) in models(machine) {
            model.set_tick_mode(TickMode::Polling);
            let polled = model.try_run(&case);
            model.set_tick_mode(TickMode::EventDriven);
            let event = model.try_run(&case);
            match (polled, event) {
                (Ok(p), Ok(e)) => assert_eq!(p.stats, e.stats, "{name} @{budget}"),
                (Err(p), Err(e)) => assert_eq!(p, e, "{name} @{budget}"),
                (p, e) => panic!("{name} @{budget}: outcomes diverge: {p:?} vs {e:?}"),
            }
        }
    }
}
