//! Design-choice ablations for the multipass structures, beyond the
//! paper's Figure 8: instruction-queue capacity, advance-store-cache
//! geometry, MSHR count (memory-level-parallelism ceiling), and the
//! compiler-vs-hardware restart mechanism of footnote 1.
//!
//! Sweeps run on a diverse four-benchmark subset (mcf, gap, art, twolf) at
//! the configured scale.

use ff_baselines::InOrder;
use ff_bench::scale_from_env;
use ff_engine::{ExecutionModel, MachineConfig, SimCase};
use ff_multipass::{Multipass, MultipassConfig};
use ff_workloads::Workload;

const BENCHES: [&str; 4] = ["mcf", "gap", "art", "twolf"];

fn mean_speedup(machine: MachineConfig, mp_cfg: MultipassConfig, ws: &[Workload]) -> f64 {
    let mut total = 0.0;
    for w in ws {
        let case = SimCase::new(&w.program, w.mem.clone());
        let base = InOrder::new(machine).run(&case).stats.cycles as f64;
        let mp = Multipass::with_config(mp_cfg).run(&case).stats.cycles as f64;
        total += base / mp;
    }
    total / ws.len() as f64
}

fn main() {
    let scale = scale_from_env();
    let ws: Vec<Workload> =
        BENCHES.iter().map(|n| Workload::by_name(n, scale).expect("known benchmark")).collect();
    println!("=== Multipass structure ablations ({scale:?} scale; mcf/gap/art/twolf) ===\n");

    // ---- instruction-queue capacity (paper: 256 entries) ----
    println!("instruction-queue capacity sweep:");
    for iq in [24usize, 64, 128, 256, 512] {
        let mut machine = MachineConfig::itanium2_base();
        machine.multipass_iq = iq;
        let cfg = MultipassConfig::new(machine);
        println!("  IQ {iq:>4} entries: mean MP speedup {:.3}x", mean_speedup(machine, cfg, &ws));
    }

    // ---- advance-store-cache geometry (paper: 64 entries, 2-way) ----
    println!("\nadvance-store-cache sweep:");
    let machine = MachineConfig::itanium2_base();
    for (entries, assoc) in [(16usize, 2usize), (64, 1), (64, 2), (64, 4), (256, 2)] {
        let mut cfg = MultipassConfig::new(machine);
        cfg.asc_entries = entries;
        cfg.asc_assoc = assoc;
        println!(
            "  ASC {entries:>3} entries / {assoc}-way: mean MP speedup {:.3}x",
            mean_speedup(machine, cfg, &ws)
        );
    }

    // ---- MSHR count (Table 2: 16 outstanding misses) ----
    println!("\noutstanding-miss (MSHR) sweep:");
    for mshrs in [4u32, 8, 16, 32] {
        let mut machine = MachineConfig::itanium2_base();
        machine.hierarchy.max_outstanding = mshrs;
        let cfg = MultipassConfig::new(machine);
        println!("  {mshrs:>2} MSHRs: mean MP speedup {:.3}x", mean_speedup(machine, cfg, &ws));
    }

    // ---- restart mechanism (footnote 1) ----
    println!("\nrestart mechanism:");
    let machine = MachineConfig::itanium2_base();
    let compiler = MultipassConfig::new(machine);
    println!("  compiler RESTART markers : {:.3}x", mean_speedup(machine, compiler, &ws));
    for threshold in [4u32, 8, 16] {
        let hw = MultipassConfig::with_hardware_restart(machine, threshold);
        println!(
            "  hardware detector (run {threshold:>2}): {:.3}x",
            mean_speedup(machine, hw, &ws)
        );
    }
    let none = MultipassConfig::without_restart(machine);
    println!("  no restart               : {:.3}x", mean_speedup(machine, none, &ws));

    // ---- §3.5 WAW policy ----
    println!("\nWAW policy for advance loads that miss the L1:");
    let paper = MultipassConfig::new(machine);
    println!("  skip SRF (paper, simple) : {:.3}x", mean_speedup(machine, paper, &ws));
    let ideal = MultipassConfig::with_ideal_waw(machine);
    println!("  write SRF (idealized)    : {:.3}x", mean_speedup(machine, ideal, &ws));
}
