//! The campaign-service wire protocol and client.
//!
//! `ff-server` accepts campaign specs over HTTP/JSON and serves artifacts
//! from its sharded memoization store; this module is the *client* half
//! plus the protocol types both sides share, so the CLI
//! (`ff-campaign submit/status/fetch/render --server URL`) and the
//! service agree on one spec format and one job-expansion code path
//! ([`CampaignRequest::expand`] is the same `full_grid` + [`JobFilter`]
//! the batch runner uses — identical specs, identical config hashes,
//! identical artifacts).
//!
//! Everything is hand-rolled over `std::net::TcpStream` — the build
//! environment is offline, so no HTTP or serde dependencies.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ff_engine::RunResult;
use ff_experiments::{HierKind, ModelKind, ResultSource};
use ff_workloads::{Scale, Workload};

use crate::artifact::{parse_report_artifact, parse_sim_artifact};
use crate::campaign::{full_grid, JobFilter};
use crate::job::{parse_scale, scale_name, JobKind, JobSpec};
use crate::json::Json;

/// A campaign submission: which slice of the experiment grid to run, at
/// which scale. This is the `POST /campaigns` body, and also exactly what
/// `ff-campaign run` expands locally — one spec format for both paths.
#[derive(Clone, Debug)]
pub struct CampaignRequest {
    /// Workload scale.
    pub scale: Scale,
    /// Sim-grid filter; empty lists match everything.
    pub filter: JobFilter,
    /// Include the standalone report jobs (only meaningful with an
    /// unconstrained filter, matching [`JobFilter::matches`]).
    pub reports: bool,
}

fn str_arr(values: &[String]) -> Json {
    Json::Arr(values.iter().map(|s| Json::Str(s.clone())).collect())
}

impl CampaignRequest {
    /// Expands the request into its job plan — the same
    /// `full_grid` + filter expansion `ff-campaign run` performs, so a
    /// submitted campaign's config hashes match a local run's exactly.
    pub fn expand(&self) -> Vec<JobSpec> {
        full_grid(self.scale)
            .into_iter()
            .filter(|j| self.filter.matches(j))
            .filter(|j| self.reports || !matches!(j.kind, JobKind::Report { .. }))
            .collect()
    }

    /// Renders the request as its wire JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scale", Json::Str(scale_name(self.scale).into())),
            ("reports", Json::Bool(self.reports)),
            (
                "filter",
                Json::obj(vec![
                    (
                        "models",
                        str_arr(
                            &self
                                .filter
                                .models
                                .iter()
                                .map(|m| m.name().to_string())
                                .collect::<Vec<_>>(),
                        ),
                    ),
                    (
                        "hiers",
                        str_arr(
                            &self
                                .filter
                                .hiers
                                .iter()
                                .map(|h| h.name().to_string())
                                .collect::<Vec<_>>(),
                        ),
                    ),
                    ("benches", str_arr(&self.filter.benches)),
                    ("seeds", Json::Arr(self.filter.seeds.iter().map(|&s| Json::U64(s)).collect())),
                ]),
            ),
        ])
    }

    /// Parses a wire-JSON campaign request.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field (bad scale,
    /// unknown model/hierarchy/benchmark name, malformed seed).
    pub fn from_json(doc: &Json) -> Result<CampaignRequest, String> {
        let scale_str =
            doc.get("scale").and_then(Json::as_str).ok_or("missing string field `scale`")?;
        let scale = parse_scale(scale_str).ok_or_else(|| format!("bad scale `{scale_str}`"))?;
        let reports = match doc.get("reports") {
            Some(Json::Bool(b)) => *b,
            None => false,
            Some(_) => return Err("`reports` must be a boolean".to_string()),
        };
        let mut filter = JobFilter::default();
        if let Some(f) = doc.get("filter") {
            for m in f.get("models").and_then(Json::as_arr).unwrap_or(&[]) {
                let name = m.as_str().ok_or("`filter.models` entries must be strings")?;
                filter
                    .models
                    .push(ModelKind::parse(name).ok_or_else(|| format!("unknown model `{name}`"))?);
            }
            for h in f.get("hiers").and_then(Json::as_arr).unwrap_or(&[]) {
                let name = h.as_str().ok_or("`filter.hiers` entries must be strings")?;
                filter
                    .hiers
                    .push(HierKind::parse(name).ok_or_else(|| format!("unknown hier `{name}`"))?);
            }
            for b in f.get("benches").and_then(Json::as_arr).unwrap_or(&[]) {
                let name = b.as_str().ok_or("`filter.benches` entries must be strings")?;
                if !Workload::NAMES.contains(&name) {
                    return Err(format!("unknown benchmark `{name}`"));
                }
                filter.benches.push(name.to_string());
            }
            for s in f.get("seeds").and_then(Json::as_arr).unwrap_or(&[]) {
                filter.seeds.push(s.as_u64().ok_or("`filter.seeds` entries must be integers")?);
            }
        }
        Ok(CampaignRequest { scale, filter, reports })
    }
}

/// One job's line in a `GET /campaigns/{id}` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobBrief {
    /// Human-readable job id.
    pub id: String,
    /// 16-hex config hash (the `GET /jobs/{hash}` address).
    pub hash: String,
    /// Server-side job status: `queued`, `running`, `ok`, `hit`,
    /// `dedup`, `failed`, or `quarantined`.
    pub status: String,
    /// Error text for failed/quarantined jobs.
    pub error: Option<String>,
}

/// A parsed `GET /campaigns/{id}` response.
#[derive(Clone, Debug, Default)]
pub struct CampaignStatus {
    /// The campaign id.
    pub id: String,
    /// Whether every job reached a terminal state.
    pub done: bool,
    /// Workload scale.
    pub scale: String,
    /// Per-status job counts.
    pub counts: BTreeMap<String, u64>,
    /// Every job with its current status.
    pub jobs: Vec<JobBrief>,
}

impl CampaignStatus {
    /// Parses a campaign status document.
    ///
    /// # Errors
    ///
    /// On a structurally invalid document.
    pub fn from_json(doc: &Json) -> Result<CampaignStatus, String> {
        let id = doc.get("id").and_then(Json::as_str).ok_or("missing `id`")?.to_string();
        let done = matches!(doc.get("done"), Some(Json::Bool(true)));
        let scale = doc.get("scale").and_then(Json::as_str).unwrap_or("unknown").to_string();
        let mut counts = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = doc.get("counts") {
            for (k, v) in pairs {
                counts.insert(k.clone(), v.as_u64().unwrap_or(0));
            }
        }
        let jobs = doc
            .get("jobs")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|j| {
                Ok(JobBrief {
                    id: j.get("id").and_then(Json::as_str).ok_or("job missing `id`")?.to_string(),
                    hash: j
                        .get("hash")
                        .and_then(Json::as_str)
                        .ok_or("job missing `hash`")?
                        .to_string(),
                    status: j
                        .get("status")
                        .and_then(Json::as_str)
                        .ok_or("job missing `status`")?
                        .to_string(),
                    error: j.get("error").and_then(Json::as_str).map(str::to_string),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(CampaignStatus { id, done, scale, counts, jobs })
    }

    /// Jobs that failed (terminal, no artifact).
    pub fn failed(&self) -> Vec<&JobBrief> {
        self.jobs.iter().filter(|j| j.status == "failed").collect()
    }
}

/// A parsed `http://host:port` (or bare `host:port`) server address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerUrl {
    /// Host name or IP.
    pub host: String,
    /// TCP port.
    pub port: u16,
}

impl ServerUrl {
    /// Parses a server URL.
    ///
    /// # Errors
    ///
    /// On a missing port or unparsable authority.
    pub fn parse(s: &str) -> Result<ServerUrl, String> {
        let rest = s.strip_prefix("http://").unwrap_or(s);
        let rest = rest.strip_suffix('/').unwrap_or(rest);
        let (host, port) =
            rest.rsplit_once(':').ok_or_else(|| format!("server URL `{s}` needs host:port"))?;
        let port = port.parse::<u16>().map_err(|_| format!("bad port in server URL `{s}`"))?;
        if host.is_empty() {
            return Err(format!("server URL `{s}` needs a host"));
        }
        Ok(ServerUrl { host: host.to_string(), port })
    }

    /// The `host:port` authority string.
    pub fn authority(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }
}

impl std::fmt::Display for ServerUrl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http://{}", self.authority())
    }
}

/// Timeout for each client request (connect, read, write).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed HTTP response: status, body, and the transport-hardening
/// headers the client honors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub code: u16,
    /// Response body.
    pub body: String,
    /// The server's `Retry-After` (seconds), when present — the
    /// load-shedding backpressure signal the retry loop honors.
    pub retry_after: Option<u64>,
}

/// Parses a complete raw HTTP/1.1 response. Verifies the body against
/// `Content-Length` when the server sent one, so a connection reset
/// mid-body surfaces as a (retryable) transport error rather than a
/// silently truncated artifact.
///
/// # Errors
///
/// On a malformed head, bad status line, or a body/`Content-Length`
/// mismatch.
fn parse_response(text: &str) -> Result<HttpResponse, String> {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response (no header/body split)".to_string())?;
    let status_line = head.lines().next().unwrap_or("");
    let code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let mut content_length = None;
    let mut retry_after = None;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse::<usize>().ok();
        } else if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.parse::<u64>().ok();
        }
    }
    if let Some(expected) = content_length {
        if body.len() != expected {
            return Err(format!(
                "truncated response: Content-Length {expected}, got {} bytes (connection reset?)",
                body.len(),
            ));
        }
    }
    Ok(HttpResponse { code, body: body.to_string(), retry_after })
}

/// Performs one HTTP/1.1 request against the campaign service.
///
/// # Errors
///
/// On connect/IO failure, an unparsable response, or a body truncated
/// against its `Content-Length`.
fn http_request_once(
    url: &ServerUrl,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpResponse, String> {
    let addr = url
        .authority()
        .to_socket_addrs()
        .map_err(|e| format!("resolve {}: {e}", url.authority()))?
        .next()
        .ok_or_else(|| format!("resolve {}: no address", url.authority()))?;
    let mut stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT)
        .map_err(|e| format!("connect {url}: {e}"))?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT)).map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        url.authority(),
        body.len(),
    );
    stream.write_all(request.as_bytes()).map_err(|e| format!("send to {url}: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read from {url}: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| format!("non-UTF-8 response from {url}"))?;
    parse_response(&text).map_err(|e| format!("{e} from {url}"))
}

/// Performs one HTTP/1.1 request against the campaign service, returning
/// `(status code, body)`. No retries: callers that want the hardened
/// retry loop use [`http_get`] / [`http_get_with`].
///
/// # Errors
///
/// On connect/IO failure or an unparsable response.
pub fn http_request(
    url: &ServerUrl,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let r = http_request_once(url, method, path, body)?;
    Ok((r.code, r.body))
}

/// Retry policy for idempotent requests: bounded attempts with
/// exponential backoff and seeded (deterministic) jitter.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (>= 1); 1 disables retries.
    pub attempts: u32,
    /// First backoff delay; doubles per retry.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay.
    pub max_delay_ms: u64,
    /// Jitter seed, so two clients retrying the same outage do not
    /// thundering-herd in lockstep while tests stay reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 4, base_delay_ms: 50, max_delay_ms: 2_000, seed: 0x5eed }
    }
}

/// How long to sleep before retry number `attempt` (0-based): exponential
/// backoff plus seeded jitter, floored by the server's `Retry-After`
/// request (capped at 10s so a confused server cannot stall the client),
/// capped by the policy's max. Pure — unit tests exercise it without
/// sleeping.
pub fn backoff_delay_ms(policy: &RetryPolicy, attempt: u32, retry_after_s: Option<u64>) -> u64 {
    let exp = policy.base_delay_ms.saturating_mul(1u64 << attempt.min(16));
    // One xorshift64 round over (seed, attempt) for deterministic jitter.
    let mut x = policy.seed ^ u64::from(attempt + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let jitter = x % policy.base_delay_ms.max(1);
    let delay = exp.saturating_add(jitter).min(policy.max_delay_ms);
    match retry_after_s {
        Some(s) => delay.max(s.min(10).saturating_mul(1000)),
        None => delay,
    }
}

/// `GET path` under `policy`, expecting a 200 response. GET is
/// idempotent, so transport failures (connect refused, reset mid-body)
/// and 503 load-shed responses are retried with exponential backoff,
/// honoring the server's `Retry-After`. Any other status fails fast.
///
/// # Errors
///
/// On a non-retryable status, or when every attempt failed (the error
/// carries the last failure and the attempt count).
pub fn http_get_with(url: &ServerUrl, path: &str, policy: &RetryPolicy) -> Result<String, String> {
    let attempts = policy.attempts.max(1);
    let mut last = String::new();
    let mut retry_after = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(backoff_delay_ms(
                policy,
                attempt - 1,
                retry_after,
            )));
        }
        match http_request_once(url, "GET", path, None) {
            Ok(r) if r.code == 200 => return Ok(r.body),
            Ok(r) if r.code == 503 => {
                last = format!("GET {path}: HTTP 503: {}", server_error(&r.body));
                retry_after = r.retry_after;
            }
            Ok(r) => return Err(format!("GET {path}: HTTP {}: {}", r.code, server_error(&r.body))),
            Err(e) => {
                last = e;
                retry_after = None;
            }
        }
    }
    Err(format!("{last} (after {attempts} attempts)"))
}

/// `GET path` under the default [`RetryPolicy`], expecting a 200.
///
/// # Errors
///
/// See [`http_get_with`].
pub fn http_get(url: &ServerUrl, path: &str) -> Result<String, String> {
    http_get_with(url, path, &RetryPolicy::default())
}

/// `POST path` with a JSON body, expecting a 200/201 response. POST is
/// *not* idempotent (a lost response could mean a duplicate campaign),
/// so it never retries; callers see the failure and decide.
///
/// # Errors
///
/// On transport failure or an error status.
pub fn http_post(url: &ServerUrl, path: &str, body: &str) -> Result<String, String> {
    let (code, response) = http_request(url, "POST", path, Some(body))?;
    if code >= 300 {
        return Err(format!("POST {path}: HTTP {code}: {}", server_error(&response)));
    }
    Ok(response)
}

/// Extracts the `error` field of a JSON error body, or the raw body.
fn server_error(body: &str) -> String {
    Json::parse(body)
        .ok()
        .and_then(|doc| doc.get("error").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| body.trim().to_string())
}

/// Submits a campaign request, returning the parsed submission response
/// `(campaign id, total jobs)`.
///
/// # Errors
///
/// On transport failure or a server-side rejection.
pub fn submit_campaign(url: &ServerUrl, req: &CampaignRequest) -> Result<(String, u64), String> {
    let body = http_post(url, "/campaigns", &req.to_json().render())?;
    let doc = Json::parse(&body).map_err(|e| format!("bad submit response: {e}"))?;
    let id =
        doc.get("id").and_then(Json::as_str).ok_or("submit response missing `id`")?.to_string();
    let total = doc.get("total").and_then(Json::as_u64).unwrap_or(0);
    Ok((id, total))
}

/// Fetches a campaign's status.
///
/// # Errors
///
/// On transport failure or an unknown campaign id.
pub fn campaign_status(url: &ServerUrl, id: &str) -> Result<CampaignStatus, String> {
    let body = http_get(url, &format!("/campaigns/{id}"))?;
    let doc = Json::parse(&body).map_err(|e| format!("bad status response: {e}"))?;
    CampaignStatus::from_json(&doc)
}

/// Fetches one artifact by its 16-hex config hash.
///
/// # Errors
///
/// On transport failure or a hash the server has no artifact for.
pub fn fetch_artifact(url: &ServerUrl, hash: &str) -> Result<String, String> {
    http_get(url, &format!("/jobs/{hash}"))
}

/// A campaign server as a [`ResultSource`]: every grid point resolves to
/// `GET /jobs/{hash}` against the server's memoization store, so the
/// figure/table experiments render directly from a remote service —
/// submit once, render anywhere — with per-point results memoized
/// client-side for the session.
pub struct RemoteSource {
    url: ServerUrl,
    scale: Scale,
    cache: BTreeMap<(ModelKind, HierKind, &'static str, u64), RunResult>,
}

impl RemoteSource {
    /// A remote source reading artifacts for `scale` from `url`.
    pub fn new(url: ServerUrl, scale: Scale) -> Self {
        RemoteSource { url, scale, cache: BTreeMap::new() }
    }

    /// The scale this source requests artifacts for.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    fn fetch_spec(&self, spec: &JobSpec) -> Result<String, String> {
        fetch_artifact(&self.url, &format!("{:016x}", spec.config_hash())).map_err(|e| {
            format!(
                "no artifact for {} on {} ({e}); submit the campaign first \
                 (`ff-campaign submit --server {}`)",
                spec.id(),
                self.url,
                self.url,
            )
        })
    }
}

impl ResultSource for RemoteSource {
    fn benchmarks(&self) -> Vec<&'static str> {
        Workload::NAMES.to_vec()
    }

    fn result(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> &RunResult {
        self.result_seeded(model, hier, bench, 0)
    }

    fn result_seeded(
        &mut self,
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
    ) -> &RunResult {
        let key = (model, hier, bench, seed);
        if !self.cache.contains_key(&key) {
            let spec = JobSpec::sim(model, hier, bench, seed, self.scale);
            let result = self
                .fetch_spec(&spec)
                .and_then(|text| {
                    parse_sim_artifact(&spec, &text).map_err(|e| format!("corrupt artifact: {e}"))
                })
                .unwrap_or_else(|e| panic!("{e}"));
            self.cache.insert(key, result);
        }
        &self.cache[&key]
    }

    fn report_text(&mut self, name: &'static str) -> Result<String, String> {
        let spec = JobSpec::report(name, self.scale);
        let text = self.fetch_spec(&spec)?;
        parse_report_artifact(&spec, &text).map_err(|e| format!("corrupt artifact: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_request_round_trips_through_wire_json() {
        let req = CampaignRequest {
            scale: Scale::Test,
            filter: JobFilter {
                models: vec![ModelKind::Multipass, ModelKind::InOrder],
                hiers: vec![HierKind::Base],
                benches: vec!["mcf".into(), "gzip".into()],
                seeds: vec![0, 2],
            },
            reports: false,
        };
        let text = req.to_json().render();
        let back = CampaignRequest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.scale, req.scale);
        assert_eq!(back.filter.models, req.filter.models);
        assert_eq!(back.filter.hiers, req.filter.hiers);
        assert_eq!(back.filter.benches, req.filter.benches);
        assert_eq!(back.filter.seeds, req.filter.seeds);
        assert_eq!(back.reports, req.reports);
        // Expansion is shared with the batch runner: same plan both ways.
        let jobs = back.expand();
        assert_eq!(jobs.len(), req.expand().len());
        assert!(!jobs.is_empty());
        assert!(jobs.iter().all(|j| !matches!(j.kind, JobKind::Report { .. })));
    }

    #[test]
    fn bad_requests_name_the_offending_field() {
        for (body, needle) in [
            (r#"{"reports": false}"#, "scale"),
            (r#"{"scale": "huge"}"#, "bad scale"),
            (r#"{"scale": "test", "filter": {"models": ["warp9"]}}"#, "unknown model"),
            (r#"{"scale": "test", "filter": {"benches": ["doom"]}}"#, "unknown benchmark"),
            (r#"{"scale": "test", "filter": {"seeds": ["zero"]}}"#, "seeds"),
        ] {
            let err = CampaignRequest::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn server_urls_parse_with_and_without_scheme() {
        let u = ServerUrl::parse("http://127.0.0.1:7878").unwrap();
        assert_eq!(u, ServerUrl { host: "127.0.0.1".into(), port: 7878 });
        assert_eq!(ServerUrl::parse("localhost:80/").unwrap().authority(), "localhost:80");
        assert_eq!(u.to_string(), "http://127.0.0.1:7878");
        for bad in ["127.0.0.1", "http://:7878", "host:notaport"] {
            assert!(ServerUrl::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parse_response_reads_status_and_retry_after() {
        let r = parse_response(
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\nContent-Length: 2\r\n\r\nno",
        )
        .unwrap();
        assert_eq!((r.code, r.retry_after, r.body.as_str()), (503, Some(2), "no"));
        let r = parse_response("HTTP/1.1 200 OK\r\n\r\nhello").unwrap();
        assert_eq!((r.code, r.retry_after, r.body.as_str()), (200, None, "hello"));
    }

    #[test]
    fn parse_response_rejects_bodies_truncated_against_content_length() {
        let err =
            parse_response("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\npartial").unwrap_err();
        assert!(err.contains("truncated response"), "{err}");
        assert!(parse_response("no header split at all").is_err());
        assert!(parse_response("BOGUS\r\n\r\nbody").is_err());
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter_and_cap() {
        let p = RetryPolicy { attempts: 5, base_delay_ms: 100, max_delay_ms: 1_000, seed: 42 };
        let d: Vec<u64> = (0..5).map(|a| backoff_delay_ms(&p, a, None)).collect();
        for (a, &delay) in d.iter().enumerate() {
            let exp = 100u64 << a;
            assert!(delay >= exp.min(1_000), "attempt {a}: {delay} below exponential floor");
            assert!(delay <= (exp + 100).min(1_000), "attempt {a}: {delay} above jittered cap");
        }
        assert_eq!(d[4], 1_000, "cap must bind eventually");
        // Deterministic for a fixed seed, different across seeds.
        assert_eq!(backoff_delay_ms(&p, 1, None), backoff_delay_ms(&p, 1, None));
        let q = RetryPolicy { seed: 43, ..p.clone() };
        assert_ne!(
            (0..5).map(|a| backoff_delay_ms(&p, a, None)).collect::<Vec<_>>(),
            (0..5).map(|a| backoff_delay_ms(&q, a, None)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn backoff_honors_retry_after_with_a_sanity_cap() {
        let p = RetryPolicy { attempts: 3, base_delay_ms: 10, max_delay_ms: 100, seed: 1 };
        assert!(backoff_delay_ms(&p, 0, Some(2)) >= 2_000, "Retry-After floors the delay");
        assert!(backoff_delay_ms(&p, 0, Some(9999)) <= 10_000, "absurd Retry-After is capped");
    }

    #[test]
    fn campaign_status_parses_counts_and_failures() {
        let body = r#"{
            "id": "c1", "done": true, "scale": "test",
            "counts": {"ok": 1, "hit": 2, "failed": 1},
            "jobs": [
                {"id": "mcf/MP/base/s0@test", "hash": "00ff", "status": "ok"},
                {"id": "gzip/MP/base/s0@test", "hash": "01ff", "status": "failed",
                 "error": "timeout: cycle budget exceeded"}
            ]
        }"#;
        let status = CampaignStatus::from_json(&Json::parse(body).unwrap()).unwrap();
        assert!(status.done);
        assert_eq!(status.counts["hit"], 2);
        assert_eq!(status.jobs.len(), 2);
        let failed = status.failed();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].error.as_deref(), Some("timeout: cycle budget exceeded"));
    }
}
