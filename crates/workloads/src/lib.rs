//! SPEC CPU2000-like synthetic workloads for the flea-flicker simulator.
//!
//! The paper evaluates twelve C benchmarks from SPEC CPU2000. Those inputs
//! are proprietary, so this crate substitutes seeded synthetic kernels that
//! reproduce each benchmark's *memory-level-parallelism signature* — the
//! properties multipass pipelining is sensitive to:
//!
//! * footprint and access pattern (pointer chase / stream / random gather),
//! * dependence structure of misses (chained vs. independent; whether a
//!   load SCC feeds further variable-latency work — the advance-restart
//!   trigger),
//! * branch predictability (front-end stalls and the value of early branch
//!   resolution), and
//! * the multi-cycle-operation mix ("other" stalls).
//!
//! Every workload is generated deterministically from a fixed per-kernel
//! seed, compiled through the `ff-compiler` stand-in (list scheduling +
//! critical-SCC RESTART insertion), and validated by construction: its
//! program passes `Program::validate` and terminates within its dynamic
//! budget.
//!
//! # Example
//!
//! ```
//! use ff_workloads::{Scale, Workload};
//!
//! let w = Workload::by_name("mcf", Scale::Test).unwrap();
//! assert_eq!(w.name, "mcf");
//! assert!(w.program.validate().is_ok());
//! let case = w.sim_case();
//! assert!(case.program.num_insts() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod kernels;

use ff_engine::SimCase;
use ff_isa::{MemoryImage, Program};

/// Workload sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small footprints and trip counts for unit/integration tests.
    Test,
    /// Paper-scale runs used by the benchmark harness.
    Paper,
}

/// A generated benchmark: a compiled program plus its initial memory image.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (SPEC CPU2000 counterpart).
    pub name: &'static str,
    /// True for the CFP2000-like kernels (art, equake, mesa, ammp).
    pub is_fp: bool,
    /// The compiled (scheduled, RESTART-annotated) program.
    pub program: Program,
    /// Initial data memory.
    pub mem: MemoryImage,
}

impl Workload {
    /// The twelve benchmark names in the paper's presentation order.
    pub const NAMES: [&'static str; 12] = [
        "gzip", "vpr", "mcf", "parser", "gap", "vortex", "bzip2", "twolf", "art", "equake", "mesa",
        "ammp",
    ];

    /// Generates every benchmark at the given scale.
    pub fn all(scale: Scale) -> Vec<Workload> {
        Self::NAMES.iter().map(|n| Self::by_name(n, scale).expect("known name")).collect()
    }

    /// Generates one benchmark by name, or `None` for an unknown name.
    pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
        Self::by_name_seeded(name, scale, 0)
    }

    /// Generates one benchmark with an explicit generator seed, for
    /// seed-sensitivity studies (`seed = 0` matches [`Workload::by_name`]).
    pub fn by_name_seeded(name: &str, scale: Scale, seed: u64) -> Option<Workload> {
        Some(match name {
            "gzip" => kernels::gzip_seeded(scale, seed),
            "vpr" => kernels::vpr_seeded(scale, seed),
            "mcf" => kernels::mcf_seeded(scale, seed),
            "parser" => kernels::parser_seeded(scale, seed),
            "gap" => kernels::gap_seeded(scale, seed),
            "vortex" => kernels::vortex_seeded(scale, seed),
            "bzip2" => kernels::bzip2_seeded(scale, seed),
            "twolf" => kernels::twolf_seeded(scale, seed),
            "art" => kernels::art_seeded(scale, seed),
            "equake" => kernels::equake_seeded(scale, seed),
            "mesa" => kernels::mesa_seeded(scale, seed),
            "ammp" => kernels::ammp_seeded(scale, seed),
            _ => return None,
        })
    }

    /// A [`SimCase`] over this workload.
    pub fn sim_case(&self) -> SimCase<'_> {
        SimCase::new(&self.program, self.mem.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::interp::Interpreter;

    #[test]
    fn all_twelve_generate_and_validate() {
        let ws = Workload::all(Scale::Test);
        assert_eq!(ws.len(), 12);
        for w in &ws {
            assert!(w.program.validate().is_ok(), "{} fails validation", w.name);
            assert!(w.program.num_insts() > 0);
        }
    }

    #[test]
    fn all_twelve_terminate_in_the_interpreter() {
        for w in Workload::all(Scale::Test) {
            let mut s = ff_isa::ArchState::new();
            s.mem = w.mem.clone();
            let mut i = Interpreter::with_state(&w.program, s);
            let stop = i.run(20_000_000).expect("valid control flow");
            assert_eq!(stop, ff_isa::interp::StopReason::Halted, "{} did not halt", w.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::by_name("mcf", Scale::Test).unwrap();
        let b = Workload::by_name("mcf", Scale::Test).unwrap();
        assert_eq!(a.program, b.program);
        assert!(a.mem.semantically_eq(&b.mem));
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(Workload::by_name("nosuch", Scale::Test).is_none());
    }

    #[test]
    fn seeds_produce_distinct_but_valid_workloads() {
        let a = Workload::by_name_seeded("gap", Scale::Test, 0).unwrap();
        let b = Workload::by_name_seeded("gap", Scale::Test, 1).unwrap();
        assert!(!a.mem.semantically_eq(&b.mem), "different seeds, same memory?");
        assert!(b.program.validate().is_ok());
        // Seed 0 is the canonical generator.
        let c = Workload::by_name("gap", Scale::Test).unwrap();
        assert!(a.mem.semantically_eq(&c.mem));
    }

    #[test]
    fn fp_flags_match_spec_suites() {
        for w in Workload::all(Scale::Test) {
            let expect_fp = matches!(w.name, "art" | "equake" | "mesa" | "ammp");
            assert_eq!(w.is_fp, expect_fp, "{}", w.name);
        }
    }

    #[test]
    fn mcf_and_gap_carry_restart_markers() {
        for name in ["mcf", "gap", "bzip2"] {
            let w = Workload::by_name(name, Scale::Test).unwrap();
            let restarts = ff_compiler::restart::count_restarts(&w.program);
            assert!(restarts > 0, "{name} should have RESTART markers");
        }
    }

    #[test]
    fn streaming_kernels_have_no_restart_markers() {
        for name in ["art", "mesa"] {
            let w = Workload::by_name(name, Scale::Test).unwrap();
            let restarts = ff_compiler::restart::count_restarts(&w.program);
            assert_eq!(restarts, 0, "{name} should not have RESTART markers");
        }
    }
}
