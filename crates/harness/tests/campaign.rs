//! Campaign integration tests: parallel/serial determinism,
//! checkpoint/resume, the watchdog, panic isolation, quarantine, and
//! crash bundles.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ff_experiments::{HierKind, ModelKind};
use ff_harness::{
    full_grid, list_bundles, manifest::render_manifest, run_campaign, CampaignOptions, CrashBundle,
    FailureInjection, JobErrorKind, JobSpec, JobStatus,
};
use ff_workloads::Scale;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Collects every artifact in the store (sharded layout and legacy flat
/// root alike), keyed by file name — manifests, quarantine ledgers, and
/// crash bundles are not artifacts and are excluded.
fn artifact_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut dirs = vec![dir.to_path_buf()];
    while let Some(d) = dirs.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.map(|e| e.unwrap()) {
            let name = e.file_name().to_string_lossy().into_owned();
            if e.path().is_dir() {
                // Shard directories are two hex chars; skip bundles/ etc.
                if name.len() == 2 && name.chars().all(|c| c.is_ascii_hexdigit()) {
                    dirs.push(e.path());
                }
            } else if (name.starts_with("sim-") || name.starts_with("report-"))
                && name.ends_with(".json")
            {
                out.insert(name, std::fs::read(e.path()).unwrap());
            }
        }
    }
    out
}

/// `--jobs 4` must produce bit-for-bit the artifacts of `--jobs 1`: same
/// file set, same bytes (stats, activity, memory counters all included),
/// for all seven models.
#[test]
fn parallel_equals_serial() {
    let jobs: Vec<JobSpec> = ModelKind::ALL
        .into_iter()
        .flat_map(|model| {
            ["mcf", "gzip", "art"]
                .into_iter()
                .map(move |bench| JobSpec::sim(model, HierKind::Base, bench, 0, Scale::Test))
        })
        .collect();
    assert_eq!(jobs.len(), 21);

    let serial_dir = temp_dir("serial");
    let mut serial_opts = CampaignOptions::new(Scale::Test, &serial_dir);
    serial_opts.workers = 1;
    let serial = run_campaign(&jobs, &serial_opts).unwrap();
    assert_eq!(serial.failed(), 0);

    let parallel_dir = temp_dir("parallel");
    let mut parallel_opts = CampaignOptions::new(Scale::Test, &parallel_dir);
    parallel_opts.workers = 4;
    let parallel = run_campaign(&jobs, &parallel_opts).unwrap();
    assert_eq!(parallel.failed(), 0);
    assert_eq!(parallel.ok(), 21);

    let serial_files = artifact_bytes(&serial_dir);
    let parallel_files = artifact_bytes(&parallel_dir);
    assert_eq!(serial_files.len(), 21);
    assert_eq!(serial_files.keys().collect::<Vec<_>>(), parallel_files.keys().collect::<Vec<_>>());
    for (name, bytes) in &serial_files {
        assert_eq!(bytes, &parallel_files[name], "artifact {name} differs between -j1 and -j4");
    }

    std::fs::remove_dir_all(&serial_dir).unwrap();
    std::fs::remove_dir_all(&parallel_dir).unwrap();
}

/// A campaign interrupted by failures resumes where it left off: only the
/// jobs without artifacts execute on the second run, and a config-hash
/// mismatch forces a re-run even when a file exists.
#[test]
fn checkpoint_resume_reruns_only_missing_jobs() {
    let dir = temp_dir("resume");
    let jobs: Vec<JobSpec> = ["gzip", "mcf", "art", "twolf", "mesa", "gap"]
        .into_iter()
        .map(|bench| JobSpec::sim(ModelKind::InOrder, HierKind::Base, bench, 0, Scale::Test))
        .collect();

    // First run: every mcf/art job fails all its attempts ("killed after
    // K jobs").
    let mut opts = CampaignOptions::new(Scale::Test, &dir);
    opts.workers = 2;
    opts.inject =
        Some(FailureInjection { id_substring: "mcf".into(), times: u32::MAX, panic: false });
    let first = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(first.failed(), 1);
    assert_eq!(first.ok(), 5);
    let failed_ids: Vec<String> = first.failures().iter().map(|o| o.spec.id()).collect();
    assert_eq!(failed_ids, vec!["mcf/inorder/base/s0@test".to_string()]);
    assert_eq!(artifact_bytes(&dir).len(), 5, "failed job must leave no artifact");

    // Second run, no injection: completed artifacts are reused, only the
    // failed job executes.
    opts.inject = None;
    let second = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(second.failed(), 0);
    assert_eq!(second.cached(), 5);
    assert_eq!(second.ok(), 1);
    let executed: Vec<String> =
        second.outcomes.iter().filter(|o| o.status == JobStatus::Ok).map(|o| o.spec.id()).collect();
    assert_eq!(executed, vec!["mcf/inorder/base/s0@test".to_string()]);

    // Corrupt one artifact's recorded config hash: resume must detect the
    // mismatch and recompute that job.
    let victim = jobs[0].clone();
    let path = ff_harness::store::sharded_path(&dir, &victim);
    let text = std::fs::read_to_string(&path).unwrap();
    let hash = format!("{:016x}", victim.config_hash());
    std::fs::write(&path, text.replace(&hash, "0000000000000000")).unwrap();
    let third = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(third.cached(), 5);
    assert_eq!(third.ok(), 1);
    assert_eq!(third.outcomes[0].status, JobStatus::Ok, "hash mismatch must force a re-run");
    // And the recomputed artifact carries the correct hash again.
    assert!(std::fs::read_to_string(&path).unwrap().contains(&hash));

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A pre-sharding (flat) artifact tree still checkpoints: resume sees the
/// flat artifacts as cached, `migrate-store` moves them into shards, and
/// the migrated tree is byte-identical and still fully cached.
#[test]
fn flat_legacy_store_resumes_and_migrates() {
    let dir = temp_dir("flatlegacy");
    let jobs: Vec<JobSpec> = ["mcf", "gzip"]
        .into_iter()
        .map(|bench| JobSpec::sim(ModelKind::InOrder, HierKind::Base, bench, 0, Scale::Test))
        .collect();
    let mut opts = CampaignOptions::new(Scale::Test, &dir);
    opts.workers = 1;
    let first = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(first.ok(), 2);
    let sharded = artifact_bytes(&dir);

    // Demote the store to the legacy flat layout (artifacts directly
    // under the root), as a pre-sharding checkout would have left it.
    for job in &jobs {
        let from = ff_harness::store::sharded_path(&dir, job);
        std::fs::rename(&from, dir.join(job.artifact_filename())).unwrap();
    }
    let resumed = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(resumed.cached(), 2, "flat fallback must keep the checkpoint warm");

    // One-shot migration: everything moves into its shard, nothing
    // re-simulates afterwards, and the bytes are untouched.
    assert_eq!(ff_harness::migrate_flat(&dir).unwrap(), 2);
    for job in &jobs {
        assert!(ff_harness::store::sharded_path(&dir, job).is_file());
        assert!(!dir.join(job.artifact_filename()).exists());
    }
    assert_eq!(artifact_bytes(&dir), sharded);
    let migrated = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(migrated.cached(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Retries: a job that fails its first attempts succeeds once the
/// injection budget is exhausted, and the manifest-visible attempt count
/// reflects the retries.
#[test]
fn retries_recover_transient_failures() {
    let dir = temp_dir("retry");
    let jobs = vec![JobSpec::sim(ModelKind::InOrder, HierKind::Base, "vortex", 0, Scale::Test)];
    let mut opts = CampaignOptions::new(Scale::Test, &dir);
    opts.workers = 1;
    opts.attempts = 3;
    opts.inject = Some(FailureInjection { id_substring: "vortex".into(), times: 2, panic: false });
    let report = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(report.failed(), 0);
    assert_eq!(report.outcomes[0].attempts, 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The watchdog: a tiny cycle budget aborts every simulation as a
/// `timeout` failure instead of hanging or panicking the campaign.
#[test]
fn watchdog_times_out_runaway_jobs() {
    let dir = temp_dir("watchdog");
    let jobs = vec![
        JobSpec::sim(ModelKind::Multipass, HierKind::Base, "mcf", 0, Scale::Test),
        JobSpec::sim(ModelKind::InOrder, HierKind::Base, "gzip", 0, Scale::Test),
    ];
    let mut opts = CampaignOptions::new(Scale::Test, &dir);
    opts.workers = 2;
    opts.cycle_budget = Some(10);
    let report = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(report.failed(), 2);
    for outcome in report.failures() {
        let err = outcome.error.as_ref().unwrap();
        assert_eq!(err.kind, JobErrorKind::Timeout);
        let text = err.to_string();
        assert!(text.starts_with("timeout:"), "{text}");
        assert!(text.contains("cycle budget exceeded"), "{text}");
    }
    assert!(artifact_bytes(&dir).is_empty());
    // Each timed-out simulation leaves a replayable crash bundle.
    let bundles = list_bundles(&dir);
    assert_eq!(bundles.len(), 2);
    let bundle = CrashBundle::read(&bundles[0]).unwrap();
    assert_eq!(bundle.error.kind, JobErrorKind::Timeout);
    assert_eq!(bundle.cycle_budget, Some(10));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Panic isolation: a job that panics is recorded as a classified
/// `panic` failure with a crash bundle, while every other job on every
/// worker completes normally.
#[test]
fn a_panicking_job_degrades_gracefully() {
    let dir = temp_dir("panic");
    let jobs: Vec<JobSpec> = ["mcf", "gzip", "art", "twolf"]
        .into_iter()
        .map(|bench| JobSpec::sim(ModelKind::InOrder, HierKind::Base, bench, 0, Scale::Test))
        .collect();
    let mut opts = CampaignOptions::new(Scale::Test, &dir);
    opts.workers = 2;
    opts.inject =
        Some(FailureInjection { id_substring: "mcf".into(), times: u32::MAX, panic: true });
    // Quiet the default panic-backtrace printer for the expected panic.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_campaign(&jobs, &opts).unwrap();
    std::panic::set_hook(prev);

    assert_eq!(report.ok(), 3, "the surviving jobs must all complete");
    assert_eq!(report.failed(), 1);
    let failure = report.failures()[0];
    assert_eq!(failure.spec.id(), "mcf/inorder/base/s0@test");
    let err = failure.error.as_ref().unwrap();
    assert_eq!(err.kind, JobErrorKind::Panic);
    assert!(err.message.contains("injected panic"), "{err}");

    // The taxonomy reaches the manifest...
    let manifest = render_manifest(&report, "test");
    assert!(manifest.contains("\"error_kind\": \"panic\""), "{manifest}");
    // ...and the failure leaves a replayable bundle.
    let bundles = list_bundles(&dir);
    assert_eq!(bundles.len(), 1);
    let bundle = CrashBundle::read(&bundles[0]).unwrap();
    assert_eq!(bundle.bench, "mcf");
    assert_eq!(bundle.error.kind, JobErrorKind::Panic);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Quarantine lifecycle: two consecutive failed runs put a config on the
/// bench, `--force` gives it its retrial, and a success clears its
/// strikes.
#[test]
fn quarantine_benches_repeat_offenders_and_force_recovers_them() {
    let dir = temp_dir("quarantine");
    let jobs = vec![JobSpec::sim(ModelKind::InOrder, HierKind::Base, "gap", 0, Scale::Test)];
    let mut opts = CampaignOptions::new(Scale::Test, &dir);
    opts.workers = 1;
    opts.quarantine_after = Some(2);
    opts.inject =
        Some(FailureInjection { id_substring: "gap".into(), times: u32::MAX, panic: false });

    // Two failing runs accumulate two strikes.
    for run in 1..=2 {
        let report = run_campaign(&jobs, &opts).unwrap();
        assert_eq!(report.failed(), 1, "run {run}");
        assert_eq!(report.quarantined(), 0, "run {run}");
    }
    // The third run skips the job without executing it.
    let third = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(third.quarantined(), 1);
    assert_eq!(third.failed(), 0);
    assert_eq!(third.outcomes[0].attempts, 0);
    let err = third.outcomes[0].error.as_ref().unwrap().to_string();
    assert!(err.contains("quarantined after 2"), "{err}");

    // --force bypasses the quarantine; with the fault gone the job
    // succeeds and its strikes clear.
    opts.inject = None;
    opts.force = true;
    let fourth = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(fourth.ok(), 1);
    assert_eq!(fourth.quarantined(), 0);

    // Back to a normal run: the artifact is cached, nothing quarantined.
    opts.force = false;
    let fifth = run_campaign(&jobs, &opts).unwrap();
    assert_eq!(fifth.cached(), 1);
    assert_eq!(fifth.quarantined(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--sentinels` is observation-only on clean runs: the artifact bytes
/// are identical with the full checker set on or off.
#[test]
fn sentinels_do_not_perturb_clean_artifacts() {
    let jobs = vec![JobSpec::sim(ModelKind::Multipass, HierKind::Base, "mcf", 0, Scale::Test)];

    let plain_dir = temp_dir("plain");
    let mut plain_opts = CampaignOptions::new(Scale::Test, &plain_dir);
    plain_opts.workers = 1;
    let plain = run_campaign(&jobs, &plain_opts).unwrap();
    assert_eq!(plain.ok(), 1);

    let sentinel_dir = temp_dir("sentinel");
    let mut sentinel_opts = CampaignOptions::new(Scale::Test, &sentinel_dir);
    sentinel_opts.workers = 1;
    sentinel_opts.sentinels = true;
    let checked = run_campaign(&jobs, &sentinel_opts).unwrap();
    assert_eq!(checked.ok(), 1, "a clean run must pass the full checker set");
    assert!(list_bundles(&sentinel_dir).is_empty());

    assert_eq!(artifact_bytes(&plain_dir), artifact_bytes(&sentinel_dir));
    std::fs::remove_dir_all(&plain_dir).unwrap();
    std::fs::remove_dir_all(&sentinel_dir).unwrap();
}

/// The full plan is well formed at both scales (no duplicate content
/// addresses; scales never collide in one directory).
#[test]
fn full_grid_hashes_are_unique_across_scales() {
    let mut hashes = std::collections::BTreeSet::new();
    for scale in [Scale::Test, Scale::Paper] {
        for job in full_grid(scale) {
            assert!(hashes.insert(job.config_hash()), "duplicate hash for {}", job.id());
        }
    }
}
