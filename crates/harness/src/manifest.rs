//! The run manifest: reproducibility metadata for one campaign run.
//!
//! Unlike artifacts, the manifest is *not* content-addressed — it records
//! the circumstances of the run (wall time per job, worker count, git
//! revision), so it legitimately differs between otherwise identical runs.

use std::collections::BTreeSet;
use std::path::Path;

use crate::campaign::CampaignReport;
use crate::job::{scale_name, JobKind, FORMAT_VERSION};
use crate::json::Json;

/// The manifest file name inside the campaign output directory.
pub const MANIFEST_NAME: &str = "manifest.json";

/// `git describe --always --dirty` for the repo containing `dir`, or
/// `"unknown"` when git (or the repo) is unavailable.
pub fn git_describe(dir: &Path) -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(dir)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders the manifest JSON for `report`.
pub fn render_manifest(report: &CampaignReport, git: &str) -> String {
    let seeds: BTreeSet<u64> = report
        .outcomes
        .iter()
        .filter_map(|o| match o.spec.kind {
            JobKind::Sim { seed, .. } => Some(seed),
            JobKind::Report { .. } => None,
        })
        .collect();
    let jobs: Vec<Json> = report
        .outcomes
        .iter()
        .map(|o| {
            let mut fields = vec![
                ("id", Json::Str(o.spec.id())),
                ("config_hash", Json::Str(format!("{:016x}", o.spec.config_hash()))),
                ("status", Json::Str(o.status.name().into())),
                ("attempts", Json::U64(o.attempts as u64)),
                ("wall_ms", Json::U64(o.wall_ms)),
            ];
            if let Some(err) = &o.error {
                fields.push(("error_kind", Json::Str(err.kind.name().into())));
                fields.push(("error", Json::Str(err.to_string())));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj(vec![
        ("format", Json::U64(FORMAT_VERSION as u64)),
        ("scale", Json::Str(scale_name(report.scale).into())),
        ("workers", Json::U64(report.workers as u64)),
        ("git", Json::Str(git.into())),
        ("wall_s", Json::F64(report.wall_s)),
        ("seeds", Json::Arr(seeds.into_iter().map(Json::U64).collect())),
        (
            "counts",
            Json::obj(vec![
                ("ok", Json::U64(report.ok() as u64)),
                ("cached", Json::U64(report.cached() as u64)),
                ("failed", Json::U64(report.failed() as u64)),
                ("quarantined", Json::U64(report.quarantined() as u64)),
            ]),
        ),
        ("jobs", Json::Arr(jobs)),
    ])
    .render()
}

/// Writes the manifest for `report` into its output directory, durably
/// (tmp + fsync + rename): a crash mid-write leaves the previous
/// manifest intact, never a torn one.
pub fn write_manifest(dir: &Path, report: &CampaignReport) -> std::io::Result<()> {
    // Describe the *working* directory's repository, not the artifact
    // directory's — campaigns often write outside the source tree.
    let git = git_describe(Path::new("."));
    crate::store::durable_write(&dir.join(MANIFEST_NAME), &render_manifest(report, &git))
}

/// A parsed manifest, as consumed by `ff-campaign status` and CI.
#[derive(Clone, Debug, PartialEq)]
pub struct ManifestSummary {
    /// Scale name (`test`/`paper`).
    pub scale: String,
    /// Worker threads used.
    pub workers: u64,
    /// Git revision the run was produced from.
    pub git: String,
    /// Total wall time in seconds.
    pub wall_s: f64,
    /// Jobs executed.
    pub ok: u64,
    /// Jobs reused from checkpoint.
    pub cached: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs skipped by the quarantine ledger (absent in older manifests,
    /// read as 0).
    pub quarantined: u64,
    /// Ids of failed jobs.
    pub failed_ids: Vec<String>,
}

/// Reads and summarizes `manifest.json` from a campaign directory.
///
/// # Errors
///
/// On a missing, unparsable, or structurally invalid manifest.
pub fn read_manifest(dir: &Path) -> Result<ManifestSummary, String> {
    let path = dir.join(MANIFEST_NAME);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    let counts = doc.get("counts").ok_or("missing counts")?;
    let field = |obj: &Json, key: &str| {
        obj.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing integer `{key}`"))
    };
    let failed_ids = doc
        .get("jobs")
        .and_then(Json::as_arr)
        .map(|jobs| {
            jobs.iter()
                .filter(|j| j.get("status").and_then(Json::as_str) == Some("failed"))
                .filter_map(|j| j.get("id").and_then(Json::as_str).map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    Ok(ManifestSummary {
        scale: doc.get("scale").and_then(Json::as_str).unwrap_or("unknown").to_string(),
        workers: field(&doc, "workers")?,
        git: doc.get("git").and_then(Json::as_str).unwrap_or("unknown").to_string(),
        wall_s: doc.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
        ok: field(counts, "ok")?,
        cached: field(counts, "cached")?,
        failed: field(counts, "failed")?,
        quarantined: counts.get("quarantined").and_then(Json::as_u64).unwrap_or(0),
        failed_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{JobOutcome, JobStatus};
    use crate::error::JobError;
    use crate::job::JobSpec;
    use ff_experiments::{HierKind, ModelKind};
    use ff_workloads::Scale;

    fn sample_report() -> CampaignReport {
        let ok_spec = JobSpec::sim(ModelKind::Multipass, HierKind::Base, "mcf", 0, Scale::Test);
        let bad_spec = JobSpec::sim(ModelKind::Ooo, HierKind::Config1, "art", 2, Scale::Test);
        CampaignReport {
            outcomes: vec![
                JobOutcome {
                    spec: ok_spec,
                    status: JobStatus::Ok,
                    error: None,
                    wall_ms: 42,
                    attempts: 1,
                },
                JobOutcome {
                    spec: bad_spec,
                    status: JobStatus::Failed,
                    error: Some(JobError::timeout("cycle budget exceeded")),
                    wall_ms: 7,
                    attempts: 3,
                },
            ],
            wall_s: 1.25,
            workers: 4,
            scale: Scale::Test,
        }
    }

    #[test]
    fn manifest_round_trips_through_summary() {
        let dir = std::env::temp_dir().join(format!("ff-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report = sample_report();
        std::fs::write(dir.join(MANIFEST_NAME), render_manifest(&report, "deadbeef")).unwrap();
        let summary = read_manifest(&dir).unwrap();
        assert_eq!(summary.scale, "test");
        assert_eq!(summary.workers, 4);
        assert_eq!(summary.git, "deadbeef");
        assert_eq!((summary.ok, summary.cached, summary.failed), (1, 0, 1));
        assert_eq!(summary.quarantined, 0);
        assert_eq!(summary.failed_ids, vec!["art/ooo/config1/s2@test".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_records_seeds_and_wall_time() {
        let text = render_manifest(&sample_report(), "unknown");
        assert!(text.contains("\"seeds\""));
        assert!(text.contains("\"wall_s\""), "{text}");
        assert!(text.contains("\"wall_ms\": 42"));
        assert!(text.contains("\"error_kind\": \"timeout\""), "{text}");
        assert!(text.contains("\"error\": \"timeout: cycle budget exceeded\""), "{text}");
        assert!(text.contains("\"quarantined\": 0"), "{text}");
    }

    #[test]
    fn git_describe_never_panics() {
        let desc = git_describe(Path::new("/"));
        assert!(!desc.is_empty());
    }
}
