//! Cycle-level invariant checking and deterministic fault injection.
//!
//! The multipass claims rest on subtle bookkeeping — ASC speculation bits,
//! pass-epoch rollback, MSHR lifetimes — that can silently corrupt results
//! rather than crash. This crate makes corruption *loud*:
//!
//! * a pluggable [`Sentinel`] framework: checkers observe a run through
//!   the engine's [`PipelineProbe`] wiring (hooks at fetch, issue,
//!   writeback, retire, per-cycle snapshots, memory completions, and ASC
//!   forwards) and report [`Violation`]s without perturbing timing;
//! * six concrete checkers ([`checkers`]): in-order retirement, scoreboard
//!   / SRF consistency, ASC capacity and S-bit soundness, MSHR
//!   leak/double-free, pass-epoch monotonicity, and counter/activity
//!   accounting balance — plus a golden-interpreter lockstep adapter;
//! * a deterministic, seeded fault injector ([`fault`]) whose every fault
//!   class is proven (in tests and the `sentinel-smoke` CI job) to be
//!   caught by at least one checker.
//!
//! # Example
//!
//! ```
//! use ff_engine::MachineConfig;
//! use ff_multipass::Multipass;
//! use ff_sentinel::check_model;
//! use ff_workloads::{Scale, Workload};
//!
//! let w = Workload::by_name("mcf", Scale::Test).unwrap();
//! let mut model = Multipass::new(MachineConfig::default());
//! let report = check_model(&mut model, &w.sim_case());
//! assert!(report.outcome.is_ok());
//! assert!(report.violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use ff_engine::{
    AscForwardObs, CycleObs, ExecutionModel, MemAccessObs, NullRetireHook, PipelineProbe,
    RetireEvent, RetireHook, RunError, RunResult, SimCase,
};
use ff_isa::Reg;

pub mod checkers;
pub mod demo;
pub mod fault;

pub use checkers::{
    AccountingSentinel, AscSentinel, EpochSentinel, GoldenSentinel, MshrSentinel,
    RetireOrderSentinel, ScoreboardSrfSentinel,
};
pub use fault::{detected, run_faulted, FaultClass, FaultInjector};

/// One invariant violation observed during a run.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the sentinel that fired.
    pub sentinel: &'static str,
    /// Cycle at which the violation was observed.
    pub cycle: u64,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] cycle {}: {}", self.sentinel, self.cycle, self.message)
    }
}

/// Sink through which a sentinel reports violations. Bounds the total
/// retained so a hot invariant cannot balloon memory.
pub struct Reporter<'a> {
    sentinel: &'static str,
    out: &'a mut Vec<Violation>,
    cap: usize,
}

impl Reporter<'_> {
    /// Records one violation (dropped once the suite's cap is reached).
    pub fn report(&mut self, cycle: u64, message: String) {
        if self.out.len() < self.cap {
            self.out.push(Violation { sentinel: self.sentinel, cycle, message });
        }
    }
}

/// An invariant checker. Every hook mirrors one [`PipelineProbe`]
/// observation and defaults to a no-op, so a sentinel implements only the
/// hooks its invariant needs.
pub trait Sentinel {
    /// Short stable name ("retire-order", "mshr", ...), used in reports
    /// and by fault-detection tests.
    fn name(&self) -> &'static str;

    /// An instruction entered the fetch buffer.
    fn on_fetch(&mut self, seq: u64, cycle: u64, v: &mut Reporter<'_>) {
        let _ = (seq, cycle, v);
    }

    /// An instruction issued.
    fn on_issue(&mut self, seq: u64, cycle: u64, v: &mut Reporter<'_>) {
        let _ = (seq, cycle, v);
    }

    /// An instruction wrote an architectural register.
    fn on_writeback(&mut self, seq: u64, reg: Reg, cycle: u64, v: &mut Reporter<'_>) {
        let _ = (seq, reg, cycle, v);
    }

    /// An instruction retired.
    fn on_retire(&mut self, event: &RetireEvent, v: &mut Reporter<'_>) {
        let _ = (event, v);
    }

    /// Top-of-cycle pipeline snapshot (multipass only).
    fn on_cycle(&mut self, obs: &CycleObs, v: &mut Reporter<'_>) {
        let _ = (obs, v);
    }

    /// A data access completed (multipass only).
    fn on_mem_access(&mut self, obs: &MemAccessObs, v: &mut Reporter<'_>) {
        let _ = (obs, v);
    }

    /// The ASC forwarded a store value into a load (multipass only).
    fn on_asc_forward(&mut self, obs: &AscForwardObs, v: &mut Reporter<'_>) {
        let _ = (obs, v);
    }

    /// The run completed.
    fn on_run_end(&mut self, result: &RunResult, v: &mut Reporter<'_>) {
        let _ = (result, v);
    }
}

/// Most violations retained per run; later ones are dropped (the first
/// firing is the interesting one — everything after is usually fallout).
pub const MAX_VIOLATIONS: usize = 64;

/// A set of sentinels driven by one probed run.
///
/// Implements [`PipelineProbe`], so it plugs directly into
/// [`ExecutionModel::try_run_probed`].
pub struct SentinelSuite<'a> {
    sentinels: Vec<Box<dyn Sentinel + 'a>>,
    violations: Vec<Violation>,
}

impl<'a> SentinelSuite<'a> {
    /// An empty suite.
    pub fn new() -> Self {
        SentinelSuite { sentinels: Vec::new(), violations: Vec::new() }
    }

    /// The six standard checkers (no golden interpreter).
    pub fn standard() -> Self {
        let mut s = Self::new();
        s.add(RetireOrderSentinel::new());
        s.add(ScoreboardSrfSentinel::new());
        s.add(AscSentinel::new());
        s.add(MshrSentinel::new());
        s.add(EpochSentinel::new());
        s.add(AccountingSentinel::new());
        s
    }

    /// The standard checkers plus golden-interpreter lockstep (catches
    /// silent architectural corruption such as register bit flips).
    pub fn with_golden(case: &SimCase<'a>) -> Self {
        let mut s = Self::standard();
        s.add(GoldenSentinel::new(case));
        s
    }

    /// Registers an additional sentinel.
    pub fn add(&mut self, sentinel: impl Sentinel + 'a) {
        self.sentinels.push(Box::new(sentinel));
    }

    /// Violations observed so far, in observation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consumes the suite, returning its violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    fn each(&mut self, mut f: impl FnMut(&mut dyn Sentinel, &mut Reporter<'_>)) {
        for s in &mut self.sentinels {
            let mut r =
                Reporter { sentinel: s.name(), out: &mut self.violations, cap: MAX_VIOLATIONS };
            f(s.as_mut(), &mut r);
        }
    }
}

impl Default for SentinelSuite<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineProbe for SentinelSuite<'_> {
    fn on_fetch(&mut self, seq: u64, cycle: u64) {
        self.each(|s, r| s.on_fetch(seq, cycle, r));
    }

    fn on_issue(&mut self, seq: u64, cycle: u64) {
        self.each(|s, r| s.on_issue(seq, cycle, r));
    }

    fn on_writeback(&mut self, seq: u64, reg: Reg, cycle: u64) {
        self.each(|s, r| s.on_writeback(seq, reg, cycle, r));
    }

    fn on_retire(&mut self, event: &RetireEvent) {
        self.each(|s, r| s.on_retire(event, r));
    }

    fn on_cycle(&mut self, obs: &CycleObs) {
        self.each(|s, r| s.on_cycle(obs, r));
    }

    fn on_mem_access(&mut self, obs: &MemAccessObs) {
        self.each(|s, r| s.on_mem_access(obs, r));
    }

    fn on_asc_forward(&mut self, obs: &AscForwardObs) {
        self.each(|s, r| s.on_asc_forward(obs, r));
    }

    fn on_run_end(&mut self, result: &RunResult) {
        self.each(|s, r| s.on_run_end(result, r));
    }
}

/// Outcome of one sentinel-checked run.
#[derive(Debug)]
pub struct SentinelReport {
    /// The run's result (or why it was abandoned). A run that errs — e.g.
    /// wedged by an injected fault until the cycle budget trips — still
    /// carries every violation observed before the abort.
    pub outcome: Result<RunResult, RunError>,
    /// Invariant violations, in observation order.
    pub violations: Vec<Violation>,
}

impl SentinelReport {
    /// Whether the run completed with zero violations.
    pub fn is_clean(&self) -> bool {
        self.outcome.is_ok() && self.violations.is_empty()
    }

    /// Whether any violation came from the named sentinel.
    pub fn fired(&self, sentinel: &str) -> bool {
        self.violations.iter().any(|v| v.sentinel == sentinel)
    }
}

/// Runs `case` on `model` with the full checker set (standard six plus
/// golden lockstep), reporting retirements to `hook` as well.
pub fn check_model_hooked(
    model: &mut dyn ExecutionModel,
    case: &SimCase<'_>,
    hook: &mut dyn RetireHook,
) -> SentinelReport {
    let mut suite = SentinelSuite::with_golden(case);
    let outcome = model.try_run_probed(case, hook, &mut suite);
    SentinelReport { outcome, violations: suite.into_violations() }
}

/// Runs `case` on `model` with the full checker set.
pub fn check_model(model: &mut dyn ExecutionModel, case: &SimCase<'_>) -> SentinelReport {
    check_model_hooked(model, case, &mut NullRetireHook)
}

#[cfg(test)]
mod tests;
