//! The multipass pipeline model (paper §3).
//!
//! One physical in-order pipeline operating in three modes:
//!
//! * **Architectural** — indistinguishable from the baseline in-order
//!   pipeline; multipass structures are clock-gated.
//! * **Advance** — triggered when the oldest instruction stalls on an
//!   unready load result. The PEEK pointer walks forward from the trigger,
//!   executing whatever has valid operands into the SRF and the result
//!   store, suppressing the rest with I-bits, prefetching through missing
//!   loads, forwarding stores through the ASC, resolving branches early,
//!   and restarting the pass at the trigger whenever a compiler-inserted
//!   `RESTART` finds its operand unready.
//! * **Rally** — the trigger's operand arrived; the architectural stream
//!   resumes from the DEQ pointer, *merging* preserved results (E-bits)
//!   instead of re-executing, regrouping across compiler stop bits
//!   (preexecuted instructions carry no dependences), verifying
//!   data-speculative loads value-wise, and dropping back to architectural
//!   mode once DEQ catches the high-water PEEK mark.

use ff_engine::{
    operand_stall, operand_wake, Activity, AscForwardObs, CycleObs, EpisodeWindow, ExecutionModel,
    FuPool, InFlightIndex, MachineConfig, MemAccessObs, NullProbe, NullRetireHook, PendingKind,
    PipelineProbe, RetireEvent, RetireHook, RetireMode, RunError, RunResult, RunStats, Scoreboard,
    SimCase, StallKind, TickMode,
};
use ff_frontend::{FetchUnit, Gshare};
use ff_isa::eval::{alu, effective_address};
use ff_isa::{ArchState, Op, Program, Reg};
use ff_mem::{AccessKind, MemAccess, MemorySystem};
use std::borrow::Cow;

use crate::asc::{AdvanceStoreCache, AscData, AscLookup};
use crate::config::{MultipassConfig, RestartStrategy};
use crate::entry::{MpEntry, RsResult};
use crate::srf::{Srf, SrfVal};

/// Pipeline mode (paper Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Conventional in-order execution; multipass structures clock-gated.
    Architectural,
    /// Persistent advance preexecution beyond a stalled trigger.
    Advance,
    /// Architectural resumption accelerated by preserved results.
    Rally,
}

/// Result of reading one operand during advance execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AdvRead {
    /// A usable value (with taint flag).
    Value(u64, bool),
    /// The producer is in flight with a short, bounded latency — the
    /// in-order advance pipe stalls rather than suppresses.
    NotYet,
    /// The producer was deferred (I-bit) or is an outstanding load — the
    /// consumer is suppressed this pass.
    Deferred,
}

/// The multipass execution model.
#[derive(Clone, Debug)]
pub struct Multipass {
    config: MultipassConfig,
    tick: TickMode,
}

impl Multipass {
    /// Creates the model from a base machine configuration with the
    /// paper's multipass parameters.
    pub fn new(machine: MachineConfig) -> Self {
        Multipass { config: MultipassConfig::new(machine), tick: TickMode::default() }
    }

    /// Creates the model from an explicit multipass configuration
    /// (ablation switches for Figure 8).
    pub fn with_config(config: MultipassConfig) -> Self {
        Multipass { config, tick: TickMode::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &MultipassConfig {
        &self.config
    }
}

/// Whole-run mutable state, split out so the mode handlers can be methods.
struct Core<'a> {
    cfg: MultipassConfig,
    program: &'a Program,
    state: ArchState,
    mem: MemorySystem,
    fetch: FetchUnit,
    sb: Scoreboard,
    fu: FuPool,
    stats: RunStats,
    activity: Activity,
    srf: Srf,
    asc: AdvanceStoreCache,
    /// Multipass per-instruction state, keyed by sequence number. The
    /// ring-buffer index exploits monotonic seq allocation: it iterates in
    /// ascending seq order (so squash/drop stay bit-for-bit deterministic,
    /// exactly like the `BTreeMap` it replaced) and, sized to the fetch
    /// buffer span, performs zero heap allocation per instruction in
    /// steady state (DESIGN.md §7e).
    entries: InFlightIndex<MpEntry>,
    mode: Mode,
    /// PEEK pointer (sequence number) during advance mode.
    peek: u64,
    /// Trigger sequence number of the current advance episode.
    trigger: u64,
    /// Farthest PEEK point of the current episode (rally exit condition).
    peek_high: u64,
    /// Youngest store deferred with an unknown address this pass, if any:
    /// subsequent loads are data speculative (§3.6) unless an ASC hit
    /// proves a *younger* store to the same word forwarded its data.
    deferred_store: Option<u64>,
    /// SMAQ occupancy (entries holding a resolved advance address).
    smaq_count: usize,
    /// Issue blocked until this cycle (value-misspeculation flush).
    stall_until: u64,
    /// New executions happened in the current advance pass (a pass that
    /// produced nothing new makes a further restart futile).
    pass_progress: bool,
    /// The current advance slot performed useful work (execution or merge).
    slot_executed: bool,
    /// Consecutive deferred advance slots (hardware restart detector).
    consec_deferrals: u32,
    /// The advance pipeline is waiting for a known in-flight arrival after
    /// a restart (footnote 2 of the paper: the restart is timed so the
    /// restarted instruction meets its input at the REG stage).
    advance_wait_until: u64,
    /// When enabled, records every mode transition as `(cycle, mode)`.
    mode_trace: Option<Vec<(u64, Mode)>>,
    /// Retirement observer (triage tooling); `hook_enabled` is hoisted so
    /// the unhooked path never constructs events.
    hook: &'a mut dyn RetireHook,
    hook_enabled: bool,
    /// Pipeline-observation probe (invariant checking); `probe_enabled` is
    /// hoisted identically so unprobed runs never build observations.
    probe: &'a mut dyn PipelineProbe,
    probe_enabled: bool,
    /// Architectural load wakeups scheduled so far (fault-injection index).
    load_pends: u64,
    exec_pends: u64,
    /// ASC forwards with the S bit set so far (fault-injection index).
    speculative_forwards: u64,
    /// Per-cycle tick strategy. Event-driven runs must be bit-for-bit
    /// identical to polling; the fast-forward only ever skips cycles it
    /// can prove the polled loop would spend idle.
    tick: TickMode,
    now: u64,
    halted: bool,
}

impl<'a> Core<'a> {
    fn new(
        config: MultipassConfig,
        case: &SimCase<'a>,
        hook: &'a mut dyn RetireHook,
        probe: &'a mut dyn PipelineProbe,
    ) -> Self {
        let hook_enabled = hook.enabled();
        let probe_enabled = probe.enabled();
        let machine = config.machine;
        let mut mem = MemorySystem::new(machine.hierarchy);
        if let Some(n) = config.fault_warp_cache_latency {
            mem.inject_warp_latency(n);
        }
        if let Some(n) = config.fault_lose_mshr_dealloc {
            mem.inject_lost_mshr_dealloc(n);
        }
        Core {
            cfg: config,
            program: case.program,
            state: case.initial_state(),
            mem,
            fetch: FetchUnit::new(
                case.program,
                machine.multipass_iq,
                machine.fetch_width as usize,
                Gshare::new(machine.gshare_entries),
            ),
            sb: Scoreboard::new(),
            fu: FuPool::new(&machine),
            stats: RunStats::default(),
            activity: Activity::new(),
            srf: Srf::new(),
            asc: AdvanceStoreCache::new(config.asc_entries, config.asc_assoc),
            // In-flight seqs span at most the fetch buffer (entries are
            // created at issue and dropped at DEQ/squash), so sizing the
            // ring to it makes steady-state allocation zero.
            entries: InFlightIndex::with_span(machine.multipass_iq + 2),
            mode: Mode::Architectural,
            peek: 0,
            trigger: 0,
            peek_high: 0,
            deferred_store: None,
            smaq_count: 0,
            stall_until: 0,
            pass_progress: false,
            slot_executed: false,
            consec_deferrals: 0,
            advance_wait_until: 0,
            mode_trace: None,
            hook,
            hook_enabled,
            probe,
            probe_enabled,
            load_pends: 0,
            exec_pends: 0,
            speculative_forwards: 0,
            tick: TickMode::default(),
            now: 0,
            halted: false,
        }
    }

    fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
        if let Some(trace) = &mut self.mode_trace {
            trace.push((self.now, mode));
        }
    }

    // ---------------------------------------------------------------- util

    /// Schedules an architectural load wakeup, routing through the
    /// dropped-wakeup fault: the faulted wakeup lands in the unreachable
    /// future, wedging every consumer of `d`.
    fn pend_load(&mut self, d: Reg, complete_at: u64) {
        let mut at = complete_at;
        if let Some(n) = self.cfg.fault_drop_wakeup {
            if self.load_pends == n {
                at = u64::MAX / 2;
            }
            self.load_pends += 1;
        }
        self.sb.set_pending(d, at, PendingKind::Load);
    }

    /// Schedules an execution-op writeback wakeup, routing through the
    /// dropped-ready-insert fault: the faulted insertion lands in the
    /// unreachable future, so consumers of `d` never transition back to
    /// ready.
    fn pend_exec(&mut self, d: Reg, ready_at: u64) {
        let mut at = ready_at;
        if let Some(n) = self.cfg.fault_drop_ready_insert {
            if self.exec_pends == n {
                at = u64::MAX / 2;
            }
            self.exec_pends += 1;
        }
        self.sb.set_pending(d, at, PendingKind::Exec);
    }

    /// Publishes a completed data access to the probe.
    fn probe_mem_access(&mut self, complete_at: u64, level: ff_mem::HitLevel) {
        if self.probe_enabled {
            self.probe.on_mem_access(&MemAccessObs { cycle: self.now, complete_at, level });
        }
    }

    /// Publishes the top-of-cycle pipeline snapshot to the probe.
    fn probe_cycle(&mut self) {
        if !self.probe_enabled {
            return;
        }
        let obs = CycleObs {
            cycle: self.now,
            mode: self.retire_mode(),
            trigger: self.trigger,
            peek: self.peek,
            peek_high: self.peek_high,
            deq: self.fetch.head_seq(),
            srf_abits: self.srf.abit_count(),
            asc_live: self.asc.live_entries(),
            asc_capacity: self.asc.capacity(),
            asc_assoc_ok: self.asc.assoc_ok(),
            smaq_live: self.smaq_count,
            smaq_capacity: self.cfg.smaq_entries,
            sb_drain: self.sb.drain_cycle(),
        };
        self.probe.on_cycle(&obs);
    }

    fn entry(&self, seq: u64) -> MpEntry {
        self.entries.get(seq).copied().unwrap_or_default()
    }

    fn set_smaq(&mut self, seq: u64, addr: u64) {
        let e = self.entries.get_or_default(seq);
        if e.smaq_addr.is_none() {
            self.smaq_count += 1;
            self.activity.smaq_accesses += 1;
        }
        e.smaq_addr = Some(addr);
    }

    fn drop_entry(&mut self, seq: u64) {
        if let Some(e) = self.entries.remove(seq) {
            if e.smaq_addr.is_some() {
                self.smaq_count = self.smaq_count.saturating_sub(1);
            }
        }
    }

    /// Removes multipass state for every entry with `seq >= from`, in
    /// ascending seq order (matching the old `BTreeMap` range scan).
    fn squash_entries_from(&mut self, from: u64) {
        let smaq_count = &mut self.smaq_count;
        self.entries.squash_from(from, |_, e| {
            if e.smaq_addr.is_some() {
                *smaq_count = smaq_count.saturating_sub(1);
            }
        });
    }

    /// [`RetireMode`] corresponding to the current pipeline mode.
    fn retire_mode(&self) -> RetireMode {
        match self.mode {
            Mode::Architectural => RetireMode::Architectural,
            Mode::Advance => RetireMode::Advance,
            Mode::Rally => RetireMode::Rally,
        }
    }

    /// The advance-episode window reported with retirements outside
    /// architectural mode.
    fn episode_window(&self, deq: u64) -> Option<EpisodeWindow> {
        if self.mode == Mode::Architectural {
            None
        } else {
            Some(EpisodeWindow { trigger: self.trigger, peek: self.peek_high, deq })
        }
    }

    /// Reads a register for an advance instruction (paper §3.4): SRF when
    /// the A-bit is set, architectural file otherwise, deferring on I-bits
    /// and on outstanding load results, stalling on short in-flight
    /// execution latencies.
    fn adv_read(&mut self, r: Reg) -> AdvRead {
        if r.is_hardwired() {
            return AdvRead::Value(self.state.read(r), false);
        }
        match self.srf.read(r) {
            Some(SrfVal::Valid { value, ready_at, tainted }) => {
                if ready_at <= self.now {
                    AdvRead::Value(value, tainted)
                } else {
                    AdvRead::NotYet
                }
            }
            Some(SrfVal::Pending { .. }) | Some(SrfVal::Invalid) => AdvRead::Deferred,
            None => match self.sb.pending_kind(r, self.now) {
                PendingKind::None => {
                    self.activity.regfile_reads += 1;
                    AdvRead::Value(self.state.read(r), false)
                }
                PendingKind::Load => AdvRead::Deferred,
                PendingKind::Exec => AdvRead::NotYet,
            },
        }
    }

    /// Whether the head (trigger) instruction could issue in rally mode at
    /// the current cycle — the advance→rally transition condition.
    fn head_issueable(&self) -> bool {
        let Some(fe) = self.fetch.get(self.fetch.head_seq()) else {
            return false;
        };
        if fe.fetched_at > self.now {
            return false;
        }
        let ent = self.entry(fe.seq);
        if ent.e_bit {
            ent.rs_available(self.now)
        } else {
            let inst = self.program.inst(fe.pc).expect("fetched pc is valid");
            operand_stall(inst, &self.sb, self.now).is_none()
        }
    }

    fn enter_advance(&mut self, trigger: u64) {
        self.set_mode(Mode::Advance);
        self.trigger = trigger;
        self.peek = trigger;
        self.peek_high = self.peek_high.max(trigger);
        self.srf.clear();
        self.asc.clear();
        self.deferred_store = None;
        self.pass_progress = false;
        self.consec_deferrals = 0;
        self.advance_wait_until = 0;
        self.stats.spec_mode_entries += 1;
    }

    fn restart_pass(&mut self) {
        self.srf.clear();
        self.asc.clear();
        self.deferred_store = None;
        self.peek = self.trigger;
        self.pass_progress = false;
        self.consec_deferrals = 0;
        self.stats.advance_restarts += 1;
    }

    fn enter_rally(&mut self) {
        self.set_mode(Mode::Rally);
        self.srf.clear();
        self.asc.clear();
        self.deferred_store = None;
    }

    // --------------------------------------------------------- rally/arch

    /// One cycle of architectural/rally issue. Returns `(issued, stall)`.
    fn issue_architectural(&mut self) -> (u32, Option<StallKind>) {
        let regroup = self.cfg.enable_regrouping && self.mode != Mode::Architectural;
        let width = self.cfg.machine.issue_width;
        let program = self.program;
        let mut issued = 0u32;
        let mut stall: Option<StallKind> = None;
        let mut prev_ended_group = false;

        while issued < width {
            let seq = self.fetch.head_seq();
            let Some(fe) = self.fetch.get(seq) else { break };
            if fe.fetched_at > self.now {
                break;
            }
            let pc = fe.pc;
            let predicted_next = fe.predicted_next;
            let snap = fe.history_snapshot;
            // The fetch buffer holds a verbatim copy of the static
            // instruction, so borrow the program's original rather than
            // cloning it into every issue slot.
            let inst = program.inst(pc).expect("fetched pc is valid");
            let ends_group = inst.ends_group();
            let ent = self.entry(seq);
            self.activity.select_visits += 1;

            // Crossing a compiler stop bit requires regrouping.
            if issued > 0 && prev_ended_group {
                if !regroup {
                    break;
                }
                self.stats.regroup_merges += 1;
            }

            let mut flushed = false;
            if ent.rs_available(self.now) {
                // ---- merge a preserved result (E-bit) ----
                self.activity.rs_reads += 1;
                self.activity.iq_reads += 1;
                let mut wrote = None;
                let mut stored = None;
                match ent.result.expect("E-bit entry has a result") {
                    RsResult::Value(v) => {
                        if ent.s_bit {
                            // Data-speculative load: reperform the access
                            // using the SMAQ address and verify the value.
                            if !self.fu.try_issue(inst, self.now) {
                                stall = Some(StallKind::Other);
                                break;
                            }
                            let addr = ent.smaq_addr.expect("S-bit load has a SMAQ address");
                            self.activity.smaq_accesses += 1;
                            let cur = self.state.mem.load(addr);
                            let complete_at =
                                match self.mem.access(addr, AccessKind::DataRead, self.now) {
                                    MemAccess::Done { complete_at, level } => {
                                        self.probe_mem_access(complete_at, level);
                                        complete_at
                                    }
                                    MemAccess::Retry => {
                                        stall = Some(StallKind::Other);
                                        break;
                                    }
                                };
                            if cur != v {
                                // Value misspeculation: pipeline flush.
                                self.stats.value_flushes += 1;
                                self.squash_entries_from(seq);
                                self.srf.clear();
                                self.asc.clear();
                                self.peek_high = self.peek_high.min(seq);
                                self.stall_until = self.now + self.cfg.flush_penalty;
                                stall = Some(StallKind::Other);
                                break;
                            }
                            if let Some(d) = inst.writes() {
                                self.state.write(d, cur);
                                self.pend_load(d, complete_at);
                                self.activity.regfile_writes += 1;
                                wrote = Some((d, cur));
                            }
                        } else if let Some(d) = inst.writes() {
                            let mut v = v;
                            if self.cfg.fault_corrupt_rs_merge == Some(self.stats.rs_reuses) {
                                // Deliberate single-bit corruption used to
                                // exercise the ff-debug triage path.
                                v ^= 1;
                            }
                            self.state.write(d, v);
                            // Result is immediately bypassable (already
                            // computed): no scoreboard pendency.
                            self.sb.set_pending(d, self.now, PendingKind::None);
                            self.activity.regfile_writes += 1;
                            wrote = Some((d, v));
                        }
                    }
                    RsResult::Nop => {}
                    RsResult::Store { addr, data } => {
                        if !self.fu.try_issue(inst, self.now) {
                            stall = Some(StallKind::Other);
                            break;
                        }
                        self.activity.smaq_accesses += 1;
                        self.state.mem.store(addr, data);
                        let _ = self.mem.access(addr, AccessKind::DataWrite, self.now);
                        stored = Some((addr, data));
                    }
                }
                if self.probe_enabled {
                    self.probe.on_issue(seq, self.now);
                    if let Some((r, _)) = wrote {
                        self.probe.on_writeback(seq, r, self.now);
                    }
                }
                if self.hook_enabled || self.probe_enabled {
                    let event = RetireEvent {
                        seq,
                        cycle: self.now,
                        pc,
                        inst: Cow::Borrowed(inst),
                        qp_true: None,
                        wrote,
                        stored,
                        mode: self.retire_mode(),
                        merged: true,
                        episode: self.episode_window(seq),
                    };
                    if self.hook_enabled {
                        self.hook.on_retire(&event);
                    }
                    if self.probe_enabled {
                        self.probe.on_retire(&event);
                    }
                }
                self.stats.rs_reuses += 1;
                self.fetch.pop_front();
                self.drop_entry(seq);
                self.stats.retired += 1;
                issued += 1;
            } else if ent.e_bit {
                // Preserved result still in flight (outstanding miss).
                stall = Some(StallKind::Load);
                break;
            } else {
                // ---- ordinary architectural issue (baseline semantics) ----
                if let Some(kind) = operand_stall(inst, &self.sb, self.now) {
                    stall = Some(kind);
                    break;
                }
                if !self.fu.try_issue(inst, self.now) {
                    stall = Some(StallKind::Other);
                    break;
                }
                let qp_true = self.state.read(inst.qp_reg()) != 0;
                self.activity.regfile_reads += inst.reads().count() as u64;
                let mut stored = None;

                if qp_true {
                    match inst.op() {
                        Op::Halt => self.halted = true,
                        Op::Br { target } => {
                            let actual_next = self.program.first_pc_from(*target);
                            if inst.is_predicated() {
                                self.stats.branches += 1;
                                if !ent.branch_trained {
                                    self.fetch.predictor_mut().update(pc, snap, true);
                                }
                            }
                            let stream_next = ent.resolved_next.unwrap_or(predicted_next);
                            if stream_next != actual_next {
                                self.stats.mispredicts += 1;
                                self.fetch.flush_after(
                                    seq,
                                    actual_next,
                                    self.now + self.cfg.machine.mispredict_penalty,
                                    snap,
                                    true,
                                );
                                self.after_fetch_flush();
                                flushed = true;
                            }
                        }
                        Op::Load | Op::LoadFp => {
                            let base = self.state.read(inst.src_n(0).expect("load base"));
                            let addr = effective_address(base, inst.imm_val());
                            match self.mem.access(addr, AccessKind::DataRead, self.now) {
                                MemAccess::Done { complete_at, level } => {
                                    self.probe_mem_access(complete_at, level);
                                    let v = self.state.mem.load(addr);
                                    if let Some(d) = inst.writes() {
                                        self.state.write(d, v);
                                        self.pend_load(d, complete_at);
                                        self.activity.regfile_writes += 1;
                                    }
                                    self.stats.executions += 1;
                                }
                                MemAccess::Retry => {
                                    stall = Some(StallKind::Other);
                                    break;
                                }
                            }
                        }
                        Op::Store => {
                            let base = self.state.read(inst.src_n(0).expect("store base"));
                            let data = self.state.read(inst.src_n(1).expect("store data"));
                            let addr = effective_address(base, inst.imm_val());
                            self.state.mem.store(addr, data);
                            let _ = self.mem.access(addr, AccessKind::DataWrite, self.now);
                            stored = Some((addr, data));
                            self.stats.executions += 1;
                        }
                        Op::Nop | Op::Restart => {}
                        op => {
                            let a = inst.src_n(0).map(|r| self.state.read(r)).unwrap_or(0);
                            let b = inst.src_n(1).map(|r| self.state.read(r)).unwrap_or(0);
                            let v = alu(op, a, b, inst.imm_val());
                            if let Some(d) = inst.writes() {
                                self.state.write(d, v);
                                self.pend_exec(d, self.now + op.latency() as u64);
                                self.activity.regfile_writes += 1;
                            }
                            self.stats.executions += 1;
                        }
                    }
                } else if let Op::Br { .. } = inst.op() {
                    let actual_next = self.program.next_pc(pc);
                    self.stats.branches += 1;
                    if !ent.branch_trained {
                        self.fetch.predictor_mut().update(pc, snap, false);
                    }
                    let stream_next = ent.resolved_next.unwrap_or(predicted_next);
                    if stream_next != actual_next {
                        self.stats.mispredicts += 1;
                        self.fetch.flush_after(
                            seq,
                            actual_next,
                            self.now + self.cfg.machine.mispredict_penalty,
                            snap,
                            false,
                        );
                        self.after_fetch_flush();
                        flushed = true;
                    }
                }

                if self.probe_enabled {
                    self.probe.on_issue(seq, self.now);
                    if qp_true {
                        if let Some(d) = inst.writes() {
                            self.probe.on_writeback(seq, d, self.now);
                        }
                    }
                }
                if self.hook_enabled || self.probe_enabled {
                    let event = RetireEvent {
                        seq,
                        cycle: self.now,
                        pc,
                        inst: Cow::Borrowed(inst),
                        qp_true: Some(qp_true),
                        wrote: if qp_true {
                            inst.writes().map(|d| (d, self.state.read(d)))
                        } else {
                            None
                        },
                        stored,
                        mode: self.retire_mode(),
                        merged: false,
                        episode: self.episode_window(seq),
                    };
                    if self.hook_enabled {
                        self.hook.on_retire(&event);
                    }
                    if self.probe_enabled {
                        self.probe.on_retire(&event);
                    }
                }
                self.fetch.pop_front();
                self.drop_entry(seq);
                self.activity.iq_reads += 1;
                self.stats.retired += 1;
                issued += 1;
            }

            if self.halted || flushed || inst.op().is_branch() {
                break;
            }
            if !regroup && ends_group {
                break;
            }
            prev_ended_group = ends_group;
        }

        (issued, stall)
    }

    // -------------------------------------------------------------- advance

    /// Clamp multipass pointers after a fetch flush squashed entries.
    fn after_fetch_flush(&mut self) {
        let next = self.fetch.next_seq();
        self.squash_entries_from(next);
        self.peek = self.peek.min(next);
        self.peek_high = self.peek_high.min(next);
    }

    /// One cycle of advance preexecution. Returns the number of *new*
    /// executions performed (the paper's attribution criterion).
    fn issue_advance(&mut self) -> u32 {
        let width = self.cfg.machine.issue_width;
        let program = self.program;
        let mut slots = 0u32;
        let mut executions = 0u32;
        let mut prev_ended_group = false;

        'insts: while slots < width {
            let seq = self.peek;
            let Some(fe) = self.fetch.get(seq) else { break };
            if fe.fetched_at > self.now {
                break;
            }
            let pc = fe.pc;
            let predicted_next = fe.predicted_next;
            let snap = fe.history_snapshot;
            // Same borrow-not-clone treatment as `issue_architectural`.
            let inst = program.inst(pc).expect("fetched pc is valid");
            let ends_group = inst.ends_group();
            let ent = self.entry(seq);
            self.activity.iq_reads += 1;
            self.activity.select_visits += 1;

            // Group-boundary rule mirrors rally: regrouping (with E-bits)
            // merges across stop bits, otherwise one group per cycle.
            if slots > 0 && prev_ended_group && !self.cfg.enable_regrouping {
                break;
            }

            // Never pre-execute past the end of the program.
            if matches!(inst.op(), Op::Halt) {
                break;
            }

            // ---- merge previously preserved results ----
            if ent.e_bit {
                if ent.rs_available(self.now) {
                    self.activity.rs_reads += 1;
                    self.slot_executed = true; // merge: useful, not deferred
                    match ent.result.expect("E-bit entry has a result") {
                        RsResult::Value(v) => {
                            if let Some(d) = inst.writes() {
                                self.srf.write(
                                    d,
                                    SrfVal::Valid {
                                        value: v,
                                        ready_at: self.now,
                                        tainted: ent.tainted,
                                    },
                                );
                            }
                        }
                        RsResult::Nop => {}
                        RsResult::Store { addr, data } => {
                            self.activity.asc_accesses += 1;
                            self.asc.insert(
                                addr,
                                AscData::Valid { value: data, tainted: ent.tainted, seq },
                            );
                        }
                    }
                } else if let Some(d) = inst.writes() {
                    // Result still in flight: consumers defer this pass,
                    // but the arrival cycle is known to the RESTART logic.
                    self.srf.write(d, SrfVal::Pending { arrives_at: ent.rs_ready_at });
                }
                self.advance_step(&mut slots, &mut prev_ended_group, ends_group);
                continue;
            }

            // ---- evaluate the qualifying predicate ----
            let qp = if inst.is_predicated() {
                match self.adv_read(inst.qp_reg()) {
                    AdvRead::NotYet => break,
                    AdvRead::Deferred => None,
                    AdvRead::Value(v, t) => Some((v != 0, t)),
                }
            } else {
                Some((true, false))
            };

            // Branches resolve control; handle them for every predicate
            // outcome (including qp == false, i.e. not taken).
            if let Op::Br { target } = inst.op() {
                if let Some((taken, taint)) = qp {
                    let actual_next = if taken {
                        self.program.first_pc_from(*target)
                    } else {
                        self.program.next_pc(pc)
                    };
                    if !taint {
                        if inst.is_predicated() && !ent.branch_trained {
                            self.fetch.predictor_mut().update(pc, snap, taken);
                            let e = self.entries.get_or_default(seq);
                            e.branch_trained = true;
                        }
                        let stream_next = self.entry(seq).resolved_next.unwrap_or(predicted_next);
                        if stream_next != actual_next {
                            // Early mispredict resolution: redirect fetch.
                            self.stats.early_resolved_mispredicts += 1;
                            self.fetch.flush_after(
                                seq,
                                actual_next,
                                self.now + self.cfg.machine.mispredict_penalty,
                                snap,
                                taken,
                            );
                            self.after_fetch_flush();
                            let e = self.entries.get_or_default(seq);
                            e.resolved_next = Some(actual_next);
                            // The pass continues at the corrected stream
                            // once it is refetched.
                            self.peek = seq + 1;
                            self.peek_high = self.peek_high.max(self.peek);
                            break 'insts;
                        }
                        // Correctly-followed branch: preserve as resolved.
                        let e = self.entries.get_or_default(seq);
                        e.e_bit = true;
                        e.result = Some(RsResult::Nop);
                        e.rs_ready_at = self.now;
                        e.tainted = false;
                        self.activity.rs_writes += 1;
                    }
                }
                self.slot_executed = true; // control slot, not a deferral
                self.advance_step(&mut slots, &mut prev_ended_group, ends_group);
                // Do not pre-execute across an unresolved branch group
                // boundary in the same cycle.
                break;
            }

            match qp {
                None => {
                    // Unknown predicate: defer the instruction entirely.
                    if let Some(d) = inst.writes() {
                        self.srf.write(d, SrfVal::Invalid);
                    }
                    if inst.op().is_store() {
                        self.deferred_store = Some(self.deferred_store.map_or(seq, |d| d.max(seq)));
                    }
                }
                Some((false, t)) => {
                    // Predicated off. Preserve the no-op unless tainted.
                    if !t {
                        let e = self.entries.get_or_default(seq);
                        e.e_bit = true;
                        e.result = Some(RsResult::Nop);
                        e.rs_ready_at = self.now;
                        e.tainted = false;
                        self.activity.rs_writes += 1;
                    } else if let Some(d) = inst.writes() {
                        self.srf.write(d, SrfVal::Invalid);
                    }
                }
                Some((true, qp_taint)) => match inst.op() {
                    Op::Restart => {
                        let src = inst.src_n(0).expect("RESTART consumes a register");
                        if self.cfg.restart == RestartStrategy::Compiler {
                            // Classify the operand's unavailability: a known
                            // in-flight arrival lets the restarted pass be
                            // timed to meet its input (footnote 2); a fully
                            // deferred operand only justifies a restart if
                            // this pass produced new results.
                            let arrival: Option<u64> = match self.srf.probe(src) {
                                Some(SrfVal::Pending { arrives_at }) => Some(arrives_at),
                                Some(SrfVal::Invalid) => None,
                                Some(SrfVal::Valid { .. }) => {
                                    // Operand present (maybe not ready yet):
                                    // no restart needed.
                                    self.advance_step(
                                        &mut slots,
                                        &mut prev_ended_group,
                                        ends_group,
                                    );
                                    continue;
                                }
                                None => match self.sb.pending_kind(src, self.now) {
                                    PendingKind::Load => Some(self.sb.ready_cycle(src)),
                                    PendingKind::Exec => None,
                                    PendingKind::None => {
                                        // Architecturally ready: no effect.
                                        self.advance_step(
                                            &mut slots,
                                            &mut prev_ended_group,
                                            ends_group,
                                        );
                                        continue;
                                    }
                                },
                            };
                            match arrival {
                                Some(t) => {
                                    // §3.3: restart at the trigger, timed so
                                    // the pass meets the arriving value.
                                    self.restart_pass();
                                    self.advance_wait_until = t.max(self.now);
                                    break 'insts;
                                }
                                None if self.pass_progress => {
                                    self.restart_pass();
                                    break 'insts;
                                }
                                None => {} // futile: continue the pass
                            }
                        }
                    }
                    Op::Nop => {
                        let e = self.entries.get_or_default(seq);
                        e.e_bit = true;
                        e.result = Some(RsResult::Nop);
                        e.rs_ready_at = self.now;
                        self.activity.rs_writes += 1;
                    }
                    Op::Load | Op::LoadFp => {
                        let base = match self.adv_read(inst.src_n(0).expect("load base")) {
                            AdvRead::NotYet => break,
                            AdvRead::Deferred => {
                                if let Some(d) = inst.writes() {
                                    self.srf.write(d, SrfVal::Invalid);
                                }
                                self.advance_step(&mut slots, &mut prev_ended_group, ends_group);
                                continue;
                            }
                            AdvRead::Value(v, t) => (v, t),
                        };
                        if self.smaq_count >= self.cfg.smaq_entries
                            && self.entry(seq).smaq_addr.is_none()
                        {
                            // SMAQ full: defer to a later pass.
                            if let Some(d) = inst.writes() {
                                self.srf.write(d, SrfVal::Invalid);
                            }
                            self.advance_step(&mut slots, &mut prev_ended_group, ends_group);
                            continue;
                        }
                        if !self.fu.try_issue(inst, self.now) {
                            break;
                        }
                        let addr = effective_address(base.0, inst.imm_val());
                        self.set_smaq(seq, addr);
                        self.activity.asc_accesses += 1;
                        match self.asc.lookup(addr) {
                            AscLookup::Hit(AscData::Valid { value, tainted, seq: store_seq }) => {
                                // The hit proves consistency only back to the
                                // forwarding store: a deferred store (unknown
                                // address) *younger* than it may alias this
                                // word, making the forwarded value data
                                // speculative (§3.6).
                                let mut s_bit = self.deferred_store.is_some_and(|d| d > store_seq);
                                if s_bit {
                                    if self.cfg.fault_stale_asc_forward
                                        == Some(self.speculative_forwards)
                                    {
                                        // Injected stale forward: the value
                                        // skips rally's value-wise verify.
                                        s_bit = false;
                                    }
                                    self.speculative_forwards += 1;
                                }
                                if self.probe_enabled {
                                    self.probe.on_asc_forward(&AscForwardObs {
                                        cycle: self.now,
                                        load_seq: seq,
                                        store_seq,
                                        deferred_store: self.deferred_store,
                                        s_bit,
                                    });
                                }
                                let taint = base.1 | qp_taint | tainted | s_bit;
                                if let Some(d) = inst.writes() {
                                    self.srf.write(
                                        d,
                                        SrfVal::Valid {
                                            value,
                                            ready_at: self.now + 1,
                                            tainted: taint,
                                        },
                                    );
                                }
                                let e = self.entries.get_or_default(seq);
                                e.e_bit = true;
                                e.result = Some(RsResult::Value(value));
                                e.rs_ready_at = self.now + 1;
                                e.s_bit = s_bit;
                                e.tainted = taint;
                                self.activity.rs_writes += 1;
                                executions += 1;
                                self.stats.executions += 1;
                                self.mark_slot_work();
                            }
                            AscLookup::Hit(AscData::Invalid) => {
                                if let Some(d) = inst.writes() {
                                    self.srf.write(d, SrfVal::Invalid);
                                }
                            }
                            lookup => {
                                let s_bit = self.deferred_store.is_some()
                                    || lookup == AscLookup::MissAfterReplacement;
                                let taint = base.1 | qp_taint | s_bit;
                                let v = self.state.mem.load(addr);
                                match self.mem.access(addr, AccessKind::SpeculativeRead, self.now) {
                                    MemAccess::Done { complete_at, level } => {
                                        self.probe_mem_access(complete_at, level);
                                        executions += 1;
                                        self.stats.executions += 1;
                                        self.mark_slot_work();
                                        let e = self.entries.get_or_default(seq);
                                        e.e_bit = true;
                                        e.result = Some(RsResult::Value(v));
                                        e.rs_ready_at = complete_at;
                                        e.s_bit = s_bit;
                                        e.tainted = taint;
                                        self.activity.rs_writes += 1;
                                        if let Some(d) = inst.writes() {
                                            if level.is_miss() && self.cfg.waw_skip_srf {
                                                // §3.5 WAW policy: missing
                                                // loads skip the SRF; note
                                                // when the RS deposit lands.
                                                self.srf.write(
                                                    d,
                                                    SrfVal::Pending { arrives_at: complete_at },
                                                );
                                            } else {
                                                self.srf.write(
                                                    d,
                                                    SrfVal::Valid {
                                                        value: v,
                                                        ready_at: complete_at,
                                                        tainted: taint,
                                                    },
                                                );
                                            }
                                        }
                                    }
                                    MemAccess::Retry => {
                                        if let Some(d) = inst.writes() {
                                            self.srf.write(d, SrfVal::Invalid);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Op::Store => {
                        let base = match self.adv_read(inst.src_n(0).expect("store base")) {
                            AdvRead::NotYet => break,
                            AdvRead::Deferred => {
                                self.deferred_store =
                                    Some(self.deferred_store.map_or(seq, |d| d.max(seq)));
                                self.advance_step(&mut slots, &mut prev_ended_group, ends_group);
                                continue;
                            }
                            AdvRead::Value(v, t) => (v, t),
                        };
                        let data = match self.adv_read(inst.src_n(1).expect("store data")) {
                            AdvRead::NotYet => break,
                            AdvRead::Deferred => None,
                            AdvRead::Value(v, t) => Some((v, t)),
                        };
                        if self.smaq_count >= self.cfg.smaq_entries
                            && self.entry(seq).smaq_addr.is_none()
                        {
                            self.deferred_store =
                                Some(self.deferred_store.map_or(seq, |d| d.max(seq)));
                            self.advance_step(&mut slots, &mut prev_ended_group, ends_group);
                            continue;
                        }
                        if !self.fu.try_issue(inst, self.now) {
                            break;
                        }
                        let addr = effective_address(base.0, inst.imm_val());
                        self.set_smaq(seq, addr);
                        self.activity.asc_accesses += 1;
                        match data {
                            Some((dv, dt)) => {
                                let taint = base.1 | dt | qp_taint;
                                self.asc.insert(
                                    addr,
                                    AscData::Valid { value: dv, tainted: taint, seq },
                                );
                                let e = self.entries.get_or_default(seq);
                                e.e_bit = true;
                                e.result = Some(RsResult::Store { addr, data: dv });
                                e.rs_ready_at = self.now;
                                e.tainted = taint;
                                self.activity.rs_writes += 1;
                                executions += 1;
                                self.stats.executions += 1;
                                self.mark_slot_work();
                            }
                            None => {
                                // Known address, unknown data: poison the
                                // location for this pass.
                                self.asc.insert(addr, AscData::Invalid);
                            }
                        }
                    }
                    op => {
                        // ALU / compare / FP.
                        let a = match inst.src_n(0) {
                            Some(r) => match self.adv_read(r) {
                                AdvRead::NotYet => break,
                                AdvRead::Deferred => None,
                                AdvRead::Value(v, t) => Some((v, t)),
                            },
                            None => Some((0, false)),
                        };
                        let b = match inst.src_n(1) {
                            Some(r) => match self.adv_read(r) {
                                AdvRead::NotYet => break,
                                AdvRead::Deferred => None,
                                AdvRead::Value(v, t) => Some((v, t)),
                            },
                            None => Some((0, false)),
                        };
                        match (a, b) {
                            (Some((av, at)), Some((bv, bt))) => {
                                if !self.fu.try_issue(inst, self.now) {
                                    break;
                                }
                                let v = alu(op, av, bv, inst.imm_val());
                                let taint = at | bt | qp_taint;
                                let ready = self.now + op.latency() as u64;
                                if let Some(d) = inst.writes() {
                                    self.srf.write(
                                        d,
                                        SrfVal::Valid { value: v, ready_at: ready, tainted: taint },
                                    );
                                }
                                let e = self.entries.get_or_default(seq);
                                e.e_bit = true;
                                e.result = Some(RsResult::Value(v));
                                e.rs_ready_at = ready;
                                e.tainted = taint;
                                self.activity.rs_writes += 1;
                                executions += 1;
                                self.stats.executions += 1;
                                self.mark_slot_work();
                            }
                            _ => {
                                if let Some(d) = inst.writes() {
                                    self.srf.write(d, SrfVal::Invalid);
                                }
                            }
                        }
                    }
                },
            }

            self.advance_step(&mut slots, &mut prev_ended_group, ends_group);
        }

        executions
    }

    fn advance_step(&mut self, slots: &mut u32, prev_ended_group: &mut bool, ends_group: bool) {
        self.peek += 1;
        self.peek_high = self.peek_high.max(self.peek);
        *slots += 1;
        *prev_ended_group = ends_group;
        if self.slot_executed {
            self.consec_deferrals = 0;
        } else {
            self.consec_deferrals += 1;
            // Footnote 1: a hardware detector restarts the pass once "the
            // vast majority of subsequent preexecution" is being deferred.
            if let RestartStrategy::Hardware { consecutive_deferrals } = self.cfg.restart {
                if self.consec_deferrals >= consecutive_deferrals && self.pass_progress {
                    self.restart_pass();
                    *prev_ended_group = false;
                }
            }
        }
        self.slot_executed = false;
    }

    /// Marks the current advance slot as having done useful new work.
    fn mark_slot_work(&mut self) {
        self.pass_progress = true;
        self.slot_executed = true;
    }

    // ------------------------------------------------------ event-driven

    /// The earliest future cycle at which the head (trigger) instruction's
    /// issueability can change through the passage of time alone — the
    /// advance→rally wake point. `u64::MAX` when only an external event
    /// (fetch arrival) can change it.
    fn head_wake(&self) -> u64 {
        let Some(fe) = self.fetch.get(self.fetch.head_seq()) else {
            return u64::MAX;
        };
        if fe.fetched_at > self.now {
            return fe.fetched_at;
        }
        let ent = self.entry(fe.seq);
        if ent.e_bit {
            ent.rs_ready_at
        } else {
            let inst = self.program.inst(fe.pc).expect("fetched pc is valid");
            operand_wake(inst, &self.sb, self.now).unwrap_or(u64::MAX)
        }
    }

    /// Event-driven quiescence fast-forward, called at the bottom of the
    /// per-cycle loop. Skips ahead over a stretch of cycles the polled
    /// loop would provably spend idle: the fetch unit must be quiescent,
    /// no mode transition may be pending, and the issue stage must be
    /// blocked on a known-latency event. Every skipped cycle is charged
    /// to the same stall category the polled loop would have charged, and
    /// — when a probe is attached — still publishes its per-cycle
    /// snapshot, so stats, artifacts, and observation streams are
    /// bit-for-bit identical in both tick modes.
    fn fast_forward(&mut self, cycle_cap: u64) {
        if self.halted || self.now >= cycle_cap {
            return;
        }
        // Pending mode transitions must be taken by the polled path so
        // the mode trace and per-mode cycle counts stay exact.
        if self.mode == Mode::Advance && self.head_issueable() {
            return;
        }
        if self.mode == Mode::Rally && self.fetch.head_seq() >= self.peek_high {
            return;
        }
        // Fetch must be idle for the whole window; `fetch_wake` bounds it.
        let Some(fetch_wake) = self.fetch.quiescent_until(self.now) else {
            return;
        };
        // The third tuple element is issue-select visits per skipped
        // cycle: only the architectural/rally live-head operand stall
        // re-examines the head every polled cycle; every other skippable
        // window never enters an issue loop (stall penalty, timed advance
        // wait, dead PEEK) or fails the issue gate (drained or
        // not-yet-fetched head).
        let (target, kind, visits) = if self.now < self.stall_until {
            // Value-misspeculation flush penalty: pure wait.
            (self.stall_until, StallKind::Other, 0)
        } else {
            match self.mode {
                Mode::Advance => {
                    if self.now < self.advance_wait_until {
                        // Restarted pass timed to meet an arrival; the
                        // head may become issueable first (rally entry).
                        (self.advance_wait_until.min(self.head_wake()), StallKind::Load, 0)
                    } else {
                        match self.fetch.get(self.peek) {
                            // PEEK ran past fetch: advance issue is a
                            // no-op until the head wakes (fetch arrivals
                            // bound the window via `fetch_wake`).
                            None => (self.head_wake(), StallKind::Load, 0),
                            Some(fe) if fe.fetched_at > self.now => {
                                (self.head_wake().min(fe.fetched_at), StallKind::Load, 0)
                            }
                            // The PEEK entry is live: advance would work.
                            Some(_) => return,
                        }
                    }
                }
                Mode::Architectural | Mode::Rally => {
                    let seq = self.fetch.head_seq();
                    match self.fetch.get(seq) {
                        None => (u64::MAX, StallKind::FrontEnd, 0),
                        Some(fe) if fe.fetched_at > self.now => {
                            (fe.fetched_at, StallKind::FrontEnd, 0)
                        }
                        Some(fe) => {
                            if self.entry(seq).e_bit {
                                // Merge work, or a Load stall that enters
                                // advance mode this very cycle.
                                return;
                            }
                            let inst = self.program.inst(fe.pc).expect("fetched pc is valid");
                            match operand_stall(inst, &self.sb, self.now) {
                                // A Load stall enters advance mode the
                                // same cycle: not skippable.
                                Some(k) if k != StallKind::Load => {
                                    match operand_wake(inst, &self.sb, self.now) {
                                        Some(w) => (w, k, 1),
                                        None => return,
                                    }
                                }
                                _ => return,
                            }
                        }
                    }
                }
            }
        };
        let wake = target.min(fetch_wake).min(self.mem.next_mshr_fill(self.now)).min(cycle_cap);
        if wake <= self.now {
            return;
        }
        if self.probe_enabled {
            // Probes observe every cycle, skipped or not: emit the same
            // per-cycle snapshots the polled loop would have.
            while self.now < wake {
                self.probe_cycle();
                self.stats.breakdown.charge(kind);
                self.activity.select_visits += visits;
                self.bump_mode_cycles();
                self.now += 1;
            }
        } else {
            let skipped = wake - self.now;
            self.stats.breakdown.charge_n(kind, skipped);
            self.activity.select_visits += visits * skipped;
            match self.mode {
                Mode::Advance => self.stats.spec_mode_cycles += skipped,
                Mode::Rally => self.stats.rally_cycles += skipped,
                Mode::Architectural => {}
            }
            self.now = wake;
        }
    }

    // ----------------------------------------------------------------- run

    fn run(&mut self, case: &SimCase<'_>) -> Result<RunResult, RunError> {
        let cycle_cap = case.cycle_cap(self.cfg.machine.max_cycles);
        while !self.halted {
            if self.now >= cycle_cap {
                return Err(RunError::CycleBudgetExceeded {
                    limit: cycle_cap,
                    retired: self.stats.retired,
                });
            }
            assert!(self.stats.retired < case.max_insts, "instruction budget exceeded");
            if self.probe_enabled {
                let before = self.fetch.next_seq();
                self.fetch.tick(self.program, &mut self.mem, self.now);
                for s in before..self.fetch.next_seq() {
                    self.probe.on_fetch(s, self.now);
                }
            } else {
                self.fetch.tick(self.program, &mut self.mem, self.now);
            }
            self.fu.new_cycle(self.now);

            // Advance → rally as soon as the trigger's operand arrives.
            if self.mode == Mode::Advance && self.head_issueable() {
                self.enter_rally();
            }
            // Rally → architectural when DEQ catches the PEEK high-water
            // mark: nothing deferred remains in flight.
            if self.mode == Mode::Rally && self.fetch.head_seq() >= self.peek_high {
                self.set_mode(Mode::Architectural);
            }

            self.probe_cycle();

            if self.now < self.stall_until {
                // Value-misspeculation flush penalty.
                self.stats.breakdown.charge(StallKind::Other);
                self.bump_mode_cycles();
                self.now += 1;
                if self.tick == TickMode::EventDriven {
                    self.fast_forward(cycle_cap);
                }
                continue;
            }

            match self.mode {
                Mode::Architectural | Mode::Rally => {
                    let (issued, stall) = self.issue_architectural();
                    if issued > 0 {
                        self.stats.breakdown.charge(StallKind::Execution);
                    } else if let Some(kind) = stall {
                        self.stats.breakdown.charge(kind);
                    } else {
                        self.stats.breakdown.charge(StallKind::FrontEnd);
                    }
                    // Enter advance mode on a load-use stall.
                    if issued == 0 && stall == Some(StallKind::Load) && !self.halted {
                        self.enter_advance(self.fetch.head_seq());
                    }
                }
                Mode::Advance => {
                    let executions = if self.now < self.advance_wait_until {
                        0 // pass restarted and timed to meet an arrival
                    } else {
                        self.issue_advance()
                    };
                    // §5.1: advance cycles with no new executions are
                    // charged to the latency that initiated advance mode.
                    if executions > 0 {
                        self.stats.breakdown.charge(StallKind::Execution);
                    } else {
                        self.stats.breakdown.charge(StallKind::Load);
                    }
                }
            }

            self.bump_mode_cycles();
            self.now += 1;
            if self.tick == TickMode::EventDriven {
                self.fast_forward(cycle_cap);
            }
        }

        self.stats.cycles = self.now;
        self.activity.cycles = self.now;
        self.activity.iq_writes = self.fetch.fetched();
        self.activity.srf_reads = self.srf.read_count();
        self.activity.srf_writes = self.srf.write_count();
        // Growth events of the in-flight entry ring: 1 for the initial
        // allocation, and nothing further once warm (the steady-state
        // zero-allocation invariant, asserted in tests/tick_equivalence.rs).
        self.activity.alloc_count += self.entries.alloc_events();

        // The simulation is finished: move the stats and final state out
        // instead of cloning them (the architectural memory image can be
        // megabytes for the paper-scale workloads).
        Ok(RunResult {
            stats: std::mem::take(&mut self.stats),
            activity: self.activity,
            mem_stats: self.mem.final_stats(),
            final_state: std::mem::replace(&mut self.state, ArchState::new()),
        })
    }

    fn bump_mode_cycles(&mut self) {
        match self.mode {
            Mode::Advance => self.stats.spec_mode_cycles += 1,
            Mode::Rally => self.stats.rally_cycles += 1,
            Mode::Architectural => {}
        }
    }
}

impl ExecutionModel for Multipass {
    fn name(&self) -> &'static str {
        if !self.config.enable_regrouping {
            "MP-noregroup"
        } else {
            match self.config.restart {
                RestartStrategy::Compiler => "MP",
                RestartStrategy::Hardware { .. } => "MP-hwrestart",
                RestartStrategy::Disabled => "MP-norestart",
            }
        }
    }

    fn set_tick_mode(&mut self, mode: TickMode) {
        self.tick = mode;
    }

    fn try_run_hooked(
        &mut self,
        case: &SimCase<'_>,
        hook: &mut dyn RetireHook,
    ) -> Result<RunResult, RunError> {
        let mut probe = NullProbe;
        let mut core = Core::new(self.config, case, hook, &mut probe);
        core.tick = self.tick;
        core.run(case)
    }

    fn try_run_probed(
        &mut self,
        case: &SimCase<'_>,
        hook: &mut dyn RetireHook,
        probe: &mut dyn PipelineProbe,
    ) -> Result<RunResult, RunError> {
        // Unlike the default tee, the multipass core publishes the deep
        // per-cycle observations itself; retirements reach both the hook
        // and the probe directly.
        let mut core = Core::new(self.config, case, hook, probe);
        core.tick = self.tick;
        let result = core.run(case)?;
        probe.on_run_end(&result);
        Ok(result)
    }
}

impl Multipass {
    /// Runs `case` while recording every mode transition as
    /// `(cycle, mode)` — useful for visualizing the
    /// architectural → advance → rally choreography of Figure 4.
    pub fn run_traced(&mut self, case: &SimCase<'_>) -> (RunResult, Vec<(u64, Mode)>) {
        let mut null = NullRetireHook;
        let mut null_probe = NullProbe;
        let mut core = Core::new(self.config, case, &mut null, &mut null_probe);
        core.tick = self.tick;
        core.mode_trace = Some(Vec::new());
        let result = core.run(case).unwrap_or_else(|e| panic!("{e} — runaway program?"));
        (result, core.mode_trace.take().unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::interp::Interpreter;
    use ff_isa::{Inst, MemoryImage};

    fn check_vs_interpreter(p: &Program, mem: &MemoryImage) -> RunResult {
        let case = SimCase::new(p, mem.clone());
        let r = Multipass::new(MachineConfig::default()).run(&case);
        let mut s = ArchState::new();
        s.mem = mem.clone();
        let mut i = Interpreter::with_state(p, s);
        i.run(50_000_000).unwrap();
        assert!(
            r.final_state.semantically_eq(i.state()),
            "multipass final state diverges from interpreter"
        );
        assert_eq!(r.stats.retired, i.retired());
        r
    }

    /// The Figure 1 workload: a pointer chase with dependent loads behind
    /// the stall point and an independent miss stream.
    fn figure1_workload(nodes: u64) -> (Program, MemoryImage) {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(5)).imm(0x400_0000).stop());
        // loop:
        //   r1 = load [r1]         (chase, long miss)
        //   restart r1             (compiler-inserted critical marker)
        //   r4 = r1 + 0            (stall-on-use)
        //   r2 = load [r5]         (independent stream miss)
        //   r6 = load [r1 + 8]     (dependent payload load)
        //   r3 = r3 + r2 ; r5 += 4096
        //   p1 = (r4 != 0) ; br loop
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).region(0).stop());
        p.push(b1, Inst::new(Op::Restart).src(Reg::int(1)).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(4)).src(Reg::int(1)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(5)).region(1));
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(6)).src(Reg::int(1)).imm(8).region(0).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(2)));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(5)).src(Reg::int(5)).imm(4096).stop());
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(4)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
        p.push(b2, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        let stride = 128 * 1024;
        for i in 0..nodes {
            let a = 0x10_0000 + i * stride;
            let next = if i + 1 == nodes { 0 } else { 0x10_0000 + (i + 1) * stride };
            mem.store(a, next);
            mem.store(a + 8, i * 10);
        }
        for i in 0..nodes {
            mem.store(0x400_0000 + i * 4096, i);
        }
        (p, mem)
    }

    #[test]
    fn cycle_budget_watchdog_aborts_multipass_runs() {
        let (p, mem) = figure1_workload(64);
        let case = SimCase::new(&p, mem).with_cycle_budget(20);
        let err = Multipass::new(MachineConfig::default()).try_run(&case).unwrap_err();
        assert!(matches!(err, RunError::CycleBudgetExceeded { limit: 20, .. }), "{err}");
    }

    #[test]
    fn simple_programs_match_interpreter() {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(21).stop());
        p.push(b, Inst::new(Op::Add).dst(Reg::int(2)).src(Reg::int(1)).src(Reg::int(1)).stop());
        p.push(b, Inst::new(Op::Halt).stop());
        let r = check_vs_interpreter(&p, &MemoryImage::new());
        assert_eq!(r.final_state.int(2), 42);
    }

    #[test]
    fn figure1_workload_matches_interpreter() {
        let (p, mem) = figure1_workload(24);
        let r = check_vs_interpreter(&p, &mem);
        assert!(r.stats.spec_mode_entries > 0, "advance mode never entered");
        assert!(r.stats.rs_reuses > 0, "no result-store reuse happened");
    }

    #[test]
    fn multipass_beats_inorder_and_runahead_on_figure1() {
        use ff_baselines::{InOrder, Runahead};
        let (p, mem) = figure1_workload(64);
        let case = SimCase::new(&p, mem);
        let base = InOrder::new(MachineConfig::default()).run(&case);
        let ra = Runahead::new(MachineConfig::default()).run(&case);
        let mp = Multipass::new(MachineConfig::default()).run(&case);
        assert!(
            mp.stats.cycles < base.stats.cycles,
            "MP {} !< inorder {}",
            mp.stats.cycles,
            base.stats.cycles
        );
        assert!(
            mp.stats.cycles <= ra.stats.cycles,
            "MP {} should not trail runahead {} (persistence + restart)",
            mp.stats.cycles,
            ra.stats.cycles
        );
    }

    #[test]
    fn advance_restart_fires_on_critical_loads() {
        let (p, mem) = figure1_workload(48);
        let case = SimCase::new(&p, mem);
        let mp = Multipass::new(MachineConfig::default()).run(&case);
        assert!(mp.stats.advance_restarts > 0, "RESTART never triggered a pass restart");
    }

    #[test]
    fn hardware_restart_fires_without_compiler_markers() {
        // A chase whose consumers form a long dependent chain: during an
        // advance pass almost every slot defers, so the footnote 1 hardware
        // detector should restart the pass — no RESTART markers present.
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
        // Independent induction work first (gives the pass "progress").
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(20)).src(Reg::int(20)).imm(1).stop());
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).region(0).stop());
        // Long dependent chain off the chase.
        for i in 0..6u8 {
            let src = if i == 0 { 1 } else { 9 + i };
            p.push(
                b1,
                Inst::new(Op::Add)
                    .dst(Reg::int(10 + i))
                    .src(Reg::int(src))
                    .src(Reg::int(20))
                    .stop(),
            );
        }
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
        p.push(b2, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        let stride = 128 * 1024;
        for i in 0..32u64 {
            let a = 0x10_0000 + i * stride;
            let next = if i + 1 == 32 { 0 } else { 0x10_0000 + (i + 1) * stride };
            mem.store(a, next);
        }
        let case = SimCase::new(&p, mem);
        let cfg = MultipassConfig::with_hardware_restart(MachineConfig::default(), 6);
        let mut model = Multipass::with_config(cfg);
        assert_eq!(model.name(), "MP-hwrestart");
        let r = model.run(&case);
        assert!(r.stats.advance_restarts > 0, "hardware detector never fired");
        // Still architecturally correct.
        let full = Multipass::new(MachineConfig::default()).run(&case);
        assert!(r.final_state.semantically_eq(&full.final_state));
    }

    #[test]
    fn restart_ablation_disables_restarts() {
        let (p, mem) = figure1_workload(48);
        let case = SimCase::new(&p, mem);
        let cfg = MultipassConfig::without_restart(MachineConfig::default());
        let mp = Multipass::with_config(cfg).run(&case);
        assert_eq!(mp.stats.advance_restarts, 0);
        assert!(mp.final_state.int(1) == 0, "program still runs correctly");
    }

    #[test]
    fn regrouping_ablation_still_correct_and_not_faster() {
        let (p, mem) = figure1_workload(48);
        let case = SimCase::new(&p, mem.clone());
        let full = Multipass::new(MachineConfig::default()).run(&case);
        let cfg = MultipassConfig::without_regrouping(MachineConfig::default());
        let ablated = Multipass::with_config(cfg).run(&case);
        assert!(ablated.final_state.semantically_eq(&full.final_state));
        assert!(
            ablated.stats.cycles >= full.stats.cycles,
            "removing regrouping should not speed things up"
        );
    }

    #[test]
    fn store_load_forwarding_through_asc() {
        // An advance store followed by an advance load of the same word:
        // the load must see the store's value via the ASC, and the final
        // state must be correct.
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x20_0000).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(7)).imm(0x5000).stop());
        // Long-miss load to open an advance window.
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(1)).region(0).stop());
        p.push(b0, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(2)).src(Reg::int(0)).stop());
        // Behind the stall: store then load the same location.
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(4)).imm(99).stop());
        p.push(b0, Inst::new(Op::Store).src(Reg::int(7)).src(Reg::int(4)).region(1).stop());
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(5)).src(Reg::int(7)).region(1).stop());
        p.push(b0, Inst::new(Op::Add).dst(Reg::int(6)).src(Reg::int(5)).src(Reg::int(5)).stop());
        p.push(b0, Inst::new(Op::Br { target: b1 }).stop());
        p.push(b1, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        mem.store(0x20_0000, 5);
        let r = check_vs_interpreter(&p, &mem);
        assert_eq!(r.final_state.int(5), 99);
        assert_eq!(r.final_state.int(6), 198);
        assert_eq!(r.final_state.mem.load(0x5000), 99);
    }

    #[test]
    fn run_traced_records_mode_transitions() {
        let (p, mem) = figure1_workload(24);
        let case = SimCase::new(&p, mem);
        let (r, trace) = Multipass::new(MachineConfig::default()).run_traced(&case);
        assert!(!trace.is_empty(), "no transitions recorded");
        // Cycles are non-decreasing, and advance/rally both appear.
        assert!(trace.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(trace.iter().any(|(_, m)| *m == Mode::Advance));
        assert!(trace.iter().any(|(_, m)| *m == Mode::Rally));
        // Tracing must not perturb timing.
        let plain = Multipass::new(MachineConfig::default()).run(&case);
        assert_eq!(plain.stats.cycles, r.stats.cycles);
    }

    /// §3.6 value-based consistency: a store deferred during advance mode
    /// makes a later advance load data speculative; when rally performs the
    /// store and re-runs the load, the mismatch must flush and re-execute.
    #[test]
    fn s_bit_value_misspeculation_flushes_and_recovers() {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        // r1 -> long-miss load (opens the advance window) whose VALUE is
        // the store data, so the store's data operand is deferred in
        // advance mode -> ASC poisons nothing (address known, data unknown
        // would poison; here make the ADDRESS depend on the load so the
        // store itself defers -> deferred_store -> later loads S-bit).
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(7)).imm(0x5000).stop());
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(1)).region(0).stop());
        // Store whose address depends on the missing load: deferred.
        p.push(b0, Inst::new(Op::And).dst(Reg::int(8)).src(Reg::int(2)).src(Reg::int(0)).stop());
        p.push(b0, Inst::new(Op::Add).dst(Reg::int(9)).src(Reg::int(8)).src(Reg::int(7)).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(10)).imm(99).stop());
        p.push(b0, Inst::new(Op::Store).src(Reg::int(9)).src(Reg::int(10)).stop());
        // Advance load of the same location: data speculative, reads the
        // stale value (0), then rally's store writes 99 -> mismatch.
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(11)).src(Reg::int(7)).stop());
        p.push(b0, Inst::new(Op::Add).dst(Reg::int(12)).src(Reg::int(11)).src(Reg::int(11)).stop());
        p.push(b0, Inst::new(Op::Br { target: b1 }).stop());
        p.push(b1, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        mem.store(0x10_0000, 5);
        let case = SimCase::new(&p, mem);
        let r = Multipass::new(MachineConfig::default()).run(&case);
        assert!(r.stats.value_flushes > 0, "expected a value-misspeculation flush");
        // Architectural correctness after the flush.
        assert_eq!(r.final_state.int(11), 99, "S-bit load must re-execute");
        assert_eq!(r.final_state.int(12), 198);
        assert_eq!(r.final_state.mem.load(0x5000), 99);
    }

    #[test]
    fn alternative_waw_policy_is_correct() {
        // Correctness must hold under both §3.5 policies. Interestingly the
        // "more complexity" write-through alternative is often *slower*:
        // consumers of an in-flight miss then wait in the in-order advance
        // pipe (NotYet) instead of being deferred past, which blocks the
        // pass — the paper's simple skip-SRF choice is also the fast one.
        // (See the `ablation_structures` bench for numbers.)
        let (p, mem) = figure1_workload(48);
        let case = SimCase::new(&p, mem);
        let paper = Multipass::new(MachineConfig::default()).run(&case);
        let alt = Multipass::with_config(MultipassConfig::with_ideal_waw(MachineConfig::default()))
            .run(&case);
        assert!(alt.final_state.semantically_eq(&paper.final_state));
        assert_eq!(alt.stats.retired, paper.stats.retired);
    }

    #[test]
    fn smaq_exhaustion_defers_but_stays_correct() {
        // With a 4-entry SMAQ, most advance memory instructions must defer,
        // yet architectural results are unchanged and the model still
        // beats nothing incorrectly.
        let (p, mem) = figure1_workload(32);
        let case = SimCase::new(&p, mem);
        let mut tiny = MultipassConfig::new(MachineConfig::default());
        tiny.smaq_entries = 4;
        let small = Multipass::with_config(tiny).run(&case);
        let full = Multipass::new(MachineConfig::default()).run(&case);
        assert!(small.final_state.semantically_eq(&full.final_state));
        assert!(
            small.stats.cycles >= full.stats.cycles,
            "a tiny SMAQ cannot be faster: {} < {}",
            small.stats.cycles,
            full.stats.cycles
        );
        assert!(small.activity.smaq_accesses <= full.activity.smaq_accesses);
    }

    #[test]
    fn tainted_branches_never_redirect_fetch() {
        // A branch whose predicate derives from a data-speculative load
        // must not retrain the predictor or redirect fetch from advance
        // mode; correctness is guaranteed by the rally-time S-bit check.
        // Construct: deferred store poisons later loads (S-bit), and the
        // branch predicate comes from such a load.
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(7)).imm(0x6000).stop());
        // Long miss opens the window; store address depends on it.
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(1)).stop());
        p.push(b0, Inst::new(Op::And).dst(Reg::int(8)).src(Reg::int(2)).src(Reg::int(0)).stop());
        p.push(b0, Inst::new(Op::Add).dst(Reg::int(9)).src(Reg::int(8)).src(Reg::int(7)).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(10)).imm(1).stop());
        p.push(b0, Inst::new(Op::Store).src(Reg::int(9)).src(Reg::int(10)).stop());
        // S-bit load feeds the branch predicate.
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(11)).src(Reg::int(7)).stop());
        p.push(
            b0,
            Inst::new(Op::CmpNe).dst(Reg::pred(2)).src(Reg::int(11)).src(Reg::int(0)).stop(),
        );
        p.push(b0, Inst::new(Op::Br { target: b2 }).qp(Reg::pred(2)).stop());
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(3)).src(Reg::int(3)).imm(7).stop());
        p.push(b2, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        mem.store(0x10_0000, 42);
        let case = SimCase::new(&p, mem);
        let r = Multipass::new(MachineConfig::default()).run(&case);
        // The stale value at 0x6000 is 0 (branch not taken speculatively);
        // the real value is 1 (taken). Correctness: the then-block was
        // skipped architecturally.
        assert_eq!(r.final_state.int(3), 0, "branch must be taken after verification");
        assert_eq!(r.final_state.mem.load(0x6000), 1);
    }

    #[test]
    fn modes_are_tracked() {
        let (p, mem) = figure1_workload(32);
        let case = SimCase::new(&p, mem);
        let mp = Multipass::new(MachineConfig::default()).run(&case);
        assert!(mp.stats.spec_mode_cycles > 0);
        assert!(mp.stats.rally_cycles > 0);
        assert_eq!(mp.stats.breakdown.total(), mp.stats.cycles);
    }

    #[test]
    fn multipass_reduces_load_stalls_vs_inorder() {
        use ff_baselines::InOrder;
        let (p, mem) = figure1_workload(64);
        let case = SimCase::new(&p, mem);
        let base = InOrder::new(MachineConfig::default()).run(&case);
        let mp = Multipass::new(MachineConfig::default()).run(&case);
        assert!(
            mp.stats.breakdown.load < base.stats.breakdown.load,
            "MP load stalls {} !< base {}",
            mp.stats.breakdown.load,
            base.stats.breakdown.load
        );
    }

    #[test]
    fn activity_counters_populated() {
        let (p, mem) = figure1_workload(24);
        let case = SimCase::new(&p, mem);
        let mp = Multipass::new(MachineConfig::default()).run(&case);
        assert!(mp.activity.iq_writes > 0);
        assert!(mp.activity.rs_writes > 0);
        assert!(mp.activity.rs_reads > 0);
        assert!(mp.activity.srf_writes > 0);
        assert!(mp.activity.smaq_accesses > 0);
    }
}
