//! The concrete hardware structures of the paper's Table 1.
//!
//! Both columns are instantiated exactly as described: "128 integer, 128
//! floating point, and 64 predicate registers are visible to the
//! instruction set. Data and memory addresses are 32 bits wide and data is
//! associated with an additional NaT bit… Decoded instructions are 41 bits
//! wide and 6 instructions can be issued per cycle."

use ff_engine::Activity;

use crate::model::{ArrayModel, CamModel, MatrixModel};

/// Data width: 32-bit values plus the NaT bit.
pub const DATA_BITS: u32 = 33;
/// Decoded instruction width.
pub const INST_BITS: u32 = 41;
/// Issue width.
pub const ISSUE_WIDTH: u32 = 6;

/// How a structure's activity (total accesses over a run) is extracted
/// from the simulator's [`Activity`] counters.
pub type ActivityFn = fn(&Activity) -> u64;

/// One modeled hardware structure.
#[derive(Clone, Debug)]
pub struct Structure {
    /// Display name.
    pub name: &'static str,
    /// Peak power in model units.
    pub peak: f64,
    /// Total ports (denominator of the activity factor).
    pub ports: f64,
    /// Extracts this structure's access count from a run's activity.
    pub activity: ActivityFn,
}

/// A named set of structures forming one side of a Table 1 row group.
#[derive(Clone, Debug)]
pub struct StructureSet {
    /// Group label (matches the Table 1 row).
    pub group: &'static str,
    /// The structures in the set.
    pub structures: Vec<Structure>,
}

impl StructureSet {
    /// Sum of peak powers.
    pub fn peak(&self) -> f64 {
        self.structures.iter().map(|s| s.peak).sum()
    }

    /// Sum of average powers under the given activity record.
    pub fn average(&self, activity: &Activity, gating: &crate::model::ClockGating) -> f64 {
        self.structures
            .iter()
            .map(|s| {
                let per_cycle = activity.per_cycle((s.activity)(activity));
                gating.average(s.peak, s.ports, per_cycle)
            })
            .sum()
    }
}

/// The out-of-order column of Table 1, grouped into its three rows:
/// register/data structures, scheduling structures, and memory-ordering
/// structures.
pub fn out_of_order_structures() -> [StructureSet; 3] {
    let regfile = ArrayModel::new(512, DATA_BITS, 12, 8);
    let rat = ArrayModel::new(256, 9, 12, 6);
    let wakeup = MatrixModel::new(128, 329, ISSUE_WIDTH);
    let issue = ArrayModel::new(128, 19, ISSUE_WIDTH, ISSUE_WIDTH);
    let load_buffer = CamModel::new(48, DATA_BITS, 2, 2);
    let store_buffer = CamModel::new(32, DATA_BITS, 2, 2);
    [
        StructureSet {
            group: "register/data",
            structures: vec![
                Structure {
                    name: "Combined Architectural & Renamed Register File",
                    peak: regfile.peak_power(),
                    ports: regfile.ports(),
                    activity: |a| a.regfile_reads + a.regfile_writes,
                },
                Structure {
                    name: "Register Alias Table",
                    peak: rat.peak_power(),
                    ports: rat.ports(),
                    activity: |a| a.rat_reads + a.rat_writes,
                },
            ],
        },
        StructureSet {
            group: "scheduling",
            structures: vec![
                Structure {
                    name: "Instruction Wakeup (wired-OR matrix)",
                    peak: wakeup.peak_power(),
                    ports: wakeup.ports(),
                    activity: |a| a.wakeup_broadcasts,
                },
                Structure {
                    name: "Instruction Issue",
                    peak: issue.peak_power(),
                    ports: issue.ports(),
                    activity: |a| a.issue_selections,
                },
            ],
        },
        StructureSet {
            group: "memory ordering",
            structures: vec![
                Structure {
                    name: "Load Buffer (CAM)",
                    peak: load_buffer.peak_power(),
                    ports: load_buffer.ports(),
                    activity: |a| a.load_buffer_searches,
                },
                Structure {
                    name: "Store Buffer (CAM)",
                    peak: store_buffer.peak_power(),
                    ports: store_buffer.ports(),
                    activity: |a| a.store_buffer_searches,
                },
            ],
        },
    ]
}

/// The multipass column of Table 1, grouped to mirror
/// [`out_of_order_structures`].
pub fn multipass_structures() -> [StructureSet; 3] {
    // "…we conservatively assume two separate register files of 256
    // registers each."
    let arf = ArrayModel::new(256, DATA_BITS, 12, 8);
    let srf = ArrayModel::new(256, DATA_BITS, 12, 8);
    // Result store: 2-banked, 256 entries, 1 wide-read & 1 wide-write (6
    // instructions each) & 2 single-write ports.
    let rs = ArrayModel::banked(256, DATA_BITS, ISSUE_WIDTH, ISSUE_WIDTH + 2, 2);
    // Instruction queue: 2-banked, 256 entries, 1 wide-read & 1 wide-write.
    let iq = ArrayModel::banked(256, INST_BITS, ISSUE_WIDTH, ISSUE_WIDTH, 2);
    // SMAQ: 2-banked array, 128 entries, 2R/2W.
    let smaq = ArrayModel::banked(128, DATA_BITS, 2, 2, 2);
    // ASC: 2-way set-associative cache, 64 entries, 2R/2W (data + tag).
    let asc = ArrayModel::new(64, DATA_BITS + 20, 2, 2);
    [
        StructureSet {
            group: "register/data",
            structures: vec![
                Structure {
                    name: "Architectural Register File",
                    peak: arf.peak_power(),
                    ports: arf.ports(),
                    activity: |a| a.regfile_reads + a.regfile_writes,
                },
                Structure {
                    name: "Speculative Register File",
                    peak: srf.peak_power(),
                    ports: srf.ports(),
                    activity: |a| a.srf_reads + a.srf_writes,
                },
                Structure {
                    name: "Result Store",
                    peak: rs.peak_power(),
                    ports: rs.ports(),
                    activity: |a| a.rs_reads + a.rs_writes,
                },
            ],
        },
        StructureSet {
            group: "scheduling",
            structures: vec![Structure {
                name: "Instruction Queue",
                peak: iq.peak_power(),
                ports: iq.ports(),
                activity: |a| a.iq_reads + a.iq_writes,
            }],
        },
        StructureSet {
            group: "memory ordering",
            structures: vec![
                Structure {
                    name: "Speculative Memory Address Queue (SMAQ)",
                    peak: smaq.peak_power(),
                    ports: smaq.ports(),
                    activity: |a| a.smaq_accesses,
                },
                Structure {
                    name: "Advance Store Cache (ASC)",
                    peak: asc.peak_power(),
                    ports: asc.ports(),
                    activity: |a| a.asc_accesses,
                },
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_align_between_columns() {
        let ooo = out_of_order_structures();
        let mp = multipass_structures();
        for (a, b) in ooo.iter().zip(mp.iter()) {
            assert_eq!(a.group, b.group);
        }
    }

    /// The calibration targets of Table 1's peak column: the ratios should
    /// land in the paper's ballpark (0.99, 10.28, 3.21).
    #[test]
    fn peak_ratios_match_paper_ballpark() {
        let ooo = out_of_order_structures();
        let mp = multipass_structures();
        let r: Vec<f64> = ooo.iter().zip(mp.iter()).map(|(a, b)| a.peak() / b.peak()).collect();
        assert!((0.7..=1.4).contains(&r[0]), "register/data peak ratio {} out of range", r[0]);
        assert!((6.0..=15.0).contains(&r[1]), "scheduling peak ratio {} out of range", r[1]);
        assert!((2.0..=6.0).contains(&r[2]), "memory-ordering peak ratio {} out of range", r[2]);
    }

    #[test]
    fn activity_extractors_map_to_the_right_counters() {
        let a = Activity {
            cycles: 10,
            smaq_accesses: 111,
            asc_accesses: 222,
            iq_reads: 333,
            iq_writes: 1,
            rs_reads: 444,
            rs_writes: 2,
            ..Activity::default()
        };
        let mp = multipass_structures();
        let memrow = &mp[2];
        let smaq = memrow.structures.iter().find(|s| s.name.contains("SMAQ")).unwrap();
        assert_eq!((smaq.activity)(&a), 111);
        let asc = memrow.structures.iter().find(|s| s.name.contains("ASC")).unwrap();
        assert_eq!((asc.activity)(&a), 222);
        let iq = &mp[1].structures[0];
        assert_eq!((iq.activity)(&a), 334);
        let rs = mp[0].structures.iter().find(|s| s.name.contains("Result")).unwrap();
        assert_eq!((rs.activity)(&a), 446);
    }

    #[test]
    fn idle_structures_cost_only_the_gated_fraction() {
        let mp = multipass_structures();
        let idle = Activity { cycles: 1000, ..Activity::default() };
        let gating = crate::model::ClockGating::default();
        for set in &mp {
            let avg = set.average(&idle, &gating);
            assert!((avg - 0.1 * set.peak()).abs() < 1e-6 * set.peak());
        }
    }
}
