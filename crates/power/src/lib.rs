//! Wattch-like microarchitectural power models (paper §4, Table 1).
//!
//! The paper compares out-of-order and multipass hardware using power
//! models "adapted from Wattch" — analytic array models (decoders,
//! wordlines, bitlines, senseamps) whose energy scales with geometry and
//! port count, and content-addressable memories that "must read out their
//! entire contents and match them" and are therefore "far more costly in
//! power than indexed arrays". Average power uses Wattch's linear
//! clock-gating model driven by per-structure activity factors measured by
//! the cycle simulators (`ff_engine::Activity`).
//!
//! Absolute numbers are arbitrary units; as in the paper, only *ratios*
//! between analogous structures are meaningful ("Table 1 is only meant to
//! illustrate the degree of disparity…").
//!
//! # Example
//!
//! ```
//! use ff_power::{ArrayModel, CamModel};
//! let array = ArrayModel::new(48, 33, 2, 2);
//! let cam = CamModel::new(48, 33, 2, 2);
//! // A CAM of identical geometry burns far more energy per access.
//! assert!(cam.peak_power() > 2.0 * array.peak_power());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod structures;
pub mod table1;

pub use model::{ArrayModel, CamModel, ClockGating};
pub use structures::{multipass_structures, out_of_order_structures, StructureSet};
pub use table1::{table1, Table1Row};
