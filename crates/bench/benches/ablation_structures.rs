//! Design-choice ablations for the multipass structures, beyond the
//! paper's Figure 8: instruction-queue capacity, advance-store-cache
//! geometry, MSHR count (memory-level-parallelism ceiling), and the
//! compiler-vs-hardware restart mechanism of footnote 1.
//!
//! Sweeps run on a diverse four-benchmark subset (mcf, gap, art, twolf) at
//! the configured scale. The report itself lives in
//! `ff_experiments::reports` so `ff-campaign` can regenerate it too.

use ff_bench::scale_from_env;

fn main() {
    print!("{}", ff_experiments::reports::ablation_structures(scale_from_env()));
}
