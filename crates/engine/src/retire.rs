//! Retirement-event instrumentation shared by every execution model.
//!
//! Every pipeline model retires the same architectural instruction stream
//! (that is the whole point of the equivalence oracle), so a hook at
//! retirement granularity is the natural place to observe a model's
//! architectural effects without perturbing its timing. A model invoked
//! through [`crate::ExecutionModel::run_hooked`] reports one
//! [`RetireEvent`] per retired dynamic instruction — its location, the
//! register it wrote, the store it performed, and (for multipass) the mode
//! and advance-episode window active at retirement. The `ff-debug` crate
//! consumes these events to run a golden interpreter in lockstep and report
//! the *first divergence* of a buggy model.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt;

use ff_isa::{Inst, Pc, Reg};

/// Pipeline mode at the moment of retirement.
///
/// The baselines always retire in [`RetireMode::Architectural`]; the
/// multipass pipeline also retires during rally (merging preserved
/// results). No instruction retires during advance preexecution, but the
/// variant exists so hooks can render mode traces uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetireMode {
    /// Conventional in-order execution.
    Architectural,
    /// Advance preexecution (never produces retirements itself).
    Advance,
    /// Multipass rally: architectural resumption over preserved results.
    Rally,
}

impl fmt::Display for RetireMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetireMode::Architectural => write!(f, "architectural"),
            RetireMode::Advance => write!(f, "advance"),
            RetireMode::Rally => write!(f, "rally"),
        }
    }
}

/// The advance-episode window active when an instruction retired (multipass
/// only): the stalled trigger, the PEEK high-water mark, and the DEQ point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpisodeWindow {
    /// Sequence number of the load-interlocked trigger instruction.
    pub trigger: u64,
    /// Farthest sequence number reached by advance preexecution (PEEK).
    pub peek: u64,
    /// Sequence number being dequeued architecturally (DEQ).
    pub deq: u64,
}

impl fmt::Display for EpisodeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trigger={} peek={} deq={}", self.trigger, self.peek, self.deq)
    }
}

/// One architecturally retired dynamic instruction.
///
/// The event fires once per retired instruction whenever any hook or
/// probe is enabled, so the instruction itself is carried as a
/// [`Cow`]: models borrow it straight out of the program (no per-retire
/// clone on the hot path), while observers that outlive the retirement
/// call [`RetireEvent::into_owned`] to detach it.
#[derive(Clone, Debug)]
pub struct RetireEvent<'a> {
    /// Position in the dynamic instruction stream (0-based).
    pub seq: u64,
    /// Cycle at which the instruction retired.
    pub cycle: u64,
    /// Static location.
    pub pc: Pc,
    /// The retired instruction, usually borrowed from the program.
    pub inst: Cow<'a, Inst>,
    /// Qualifying-predicate outcome, when the model evaluated it at
    /// retirement. `None` when the retirement merged a preserved result
    /// whose predicate was resolved during an earlier pass.
    pub qp_true: Option<bool>,
    /// Destination register and the value written, if the instruction
    /// performed a register write.
    pub wrote: Option<(Reg, u64)>,
    /// Address and data of the store performed, if any.
    pub stored: Option<(u64, u64)>,
    /// Pipeline mode at retirement.
    pub mode: RetireMode,
    /// Whether the result was merged from the multipass result store
    /// (E-bit reuse) rather than freshly executed.
    pub merged: bool,
    /// The advance-episode window, when one is active (multipass rally).
    pub episode: Option<EpisodeWindow>,
}

impl RetireEvent<'_> {
    /// Detaches the event from the program it borrows, cloning the
    /// instruction if it was borrowed. Only observers that *retain*
    /// events (rings, divergence reports) pay this copy.
    pub fn into_owned(self) -> RetireEvent<'static> {
        RetireEvent {
            seq: self.seq,
            cycle: self.cycle,
            pc: self.pc,
            inst: Cow::Owned(self.inst.into_owned()),
            qp_true: self.qp_true,
            wrote: self.wrote,
            stored: self.stored,
            mode: self.mode,
            merged: self.merged,
            episode: self.episode,
        }
    }

    /// Like [`RetireEvent::into_owned`] but from a shared reference:
    /// every field except the instruction is `Copy`, so detaching costs
    /// exactly one `Inst` clone — never an intermediate whole-event clone.
    pub fn to_detached(&self) -> RetireEvent<'static> {
        RetireEvent {
            seq: self.seq,
            cycle: self.cycle,
            pc: self.pc,
            inst: Cow::Owned(self.inst.as_ref().clone()),
            qp_true: self.qp_true,
            wrote: self.wrote,
            stored: self.stored,
            mode: self.mode,
            merged: self.merged,
            episode: self.episode,
        }
    }
}

impl fmt::Display for RetireEvent<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<6} cy{:<8} {} `{}`", self.seq, self.cycle, self.pc, self.inst.as_ref())?;
        match self.qp_true {
            Some(true) => {}
            Some(false) => write!(f, " [qp=false]")?,
            None => write!(f, " [qp=?]")?,
        }
        if let Some((r, v)) = self.wrote {
            write!(f, " {r}={v:#x}")?;
        }
        if let Some((a, d)) = self.stored {
            write!(f, " [{a:#x}]={d:#x}")?;
        }
        write!(f, " ({}{})", self.mode, if self.merged { ", merged" } else { "" })?;
        if let Some(ep) = self.episode {
            write!(f, " <{ep}>")?;
        }
        Ok(())
    }
}

/// Observer of the retirement stream.
///
/// Implementations must not assume anything about timing: events arrive in
/// retirement (program) order with non-decreasing cycles, nothing more.
pub trait RetireHook {
    /// Whether this hook consumes events at all. Models hoist this check
    /// and skip constructing [`RetireEvent`]s entirely when it returns
    /// false, so the un-instrumented `run` path stays free of per-retire
    /// overhead.
    fn enabled(&self) -> bool {
        true
    }

    /// Called once per retired dynamic instruction, in retirement order.
    fn on_retire(&mut self, event: &RetireEvent<'_>);
}

/// A hook that ignores every event (the default for plain `run`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRetireHook;

impl RetireHook for NullRetireHook {
    fn enabled(&self) -> bool {
        false
    }

    fn on_retire(&mut self, _event: &RetireEvent<'_>) {}
}

/// A bounded ring buffer over the most recent retirements.
///
/// Used by triage tooling to show the instructions leading up to a
/// divergence without retaining the entire (possibly huge) dynamic stream.
#[derive(Clone, Debug)]
pub struct RetireRing {
    events: VecDeque<RetireEvent<'static>>,
    capacity: usize,
    total: u64,
}

impl RetireRing {
    /// Creates a ring retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "retirement ring needs a positive capacity");
        RetireRing { events: VecDeque::with_capacity(capacity), capacity, total: 0 }
    }

    /// Records one event (detaching it from its program), evicting the
    /// oldest when full.
    pub fn push(&mut self, event: RetireEvent<'_>) {
        self.push_owned(event.into_owned());
    }

    fn push_owned(&mut self, event: RetireEvent<'static>) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.total += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &RetireEvent<'static>> {
        self.events.iter()
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<&RetireEvent<'static>> {
        self.events.back()
    }

    /// Total events observed (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl RetireHook for RetireRing {
    fn on_retire(&mut self, event: &RetireEvent<'_>) {
        self.push_owned(event.to_detached());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::{Op, Program};

    fn event(seq: u64) -> RetireEvent<'static> {
        let mut p = Program::new();
        let b = p.add_block();
        p.push(b, Inst::new(Op::Nop));
        let pc = p.first_pc_from(ff_isa::program::BlockId(0)).unwrap();
        RetireEvent {
            seq,
            cycle: seq * 2,
            pc,
            inst: Cow::Owned(Inst::new(Op::Nop)),
            qp_true: Some(true),
            wrote: None,
            stored: None,
            mode: RetireMode::Architectural,
            merged: false,
            episode: None,
        }
    }

    #[test]
    fn ring_keeps_only_the_newest() {
        let mut ring = RetireRing::new(3);
        for s in 0..5 {
            ring.push(event(s));
        }
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.len(), 3);
        let seqs: Vec<u64> = ring.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(ring.last().unwrap().seq, 4);
    }

    #[test]
    fn ring_acts_as_a_hook() {
        let mut ring = RetireRing::new(8);
        let ev = event(0);
        ring.on_retire(&ev);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn event_display_is_compact() {
        let mut ev = event(7);
        ev.wrote = Some((Reg::int(3), 42));
        ev.mode = RetireMode::Rally;
        ev.merged = true;
        ev.episode = Some(EpisodeWindow { trigger: 5, peek: 12, deq: 7 });
        let s = ev.to_string();
        assert!(s.contains("#7"), "{s}");
        assert!(s.contains("r3=0x2a"), "{s}");
        assert!(s.contains("rally, merged"), "{s}");
        assert!(s.contains("trigger=5 peek=12 deq=7"), "{s}");
    }
}
