//! The sharded, memoizing artifact store.
//!
//! Artifacts are content-addressed by [`JobSpec::config_hash`] and laid
//! out in 256 shard directories named by the hash's first two hex chars
//! (`<root>/ab/sim-…-ab12….json`), so a long-running service never puts
//! millions of files in one directory and per-shard locks never contend
//! across shards. Pre-sharding `results/` trees keep working: every read
//! falls back to the legacy flat layout, and `ff-campaign migrate-store`
//! moves a flat tree into shards in one shot.
//!
//! Two layers live here:
//!
//! * free functions ([`find_artifact`], [`write_artifact`],
//!   [`find_by_hash`], [`migrate_flat`]) — the layout rules, used by the
//!   batch campaign runner;
//! * [`ShardedStore`] — the same layout behind per-shard mutexes, used by
//!   `ff-server` as a process-wide memoization cache shared by every
//!   campaign and client (writes are tmp-file + atomic rename, so readers
//!   never observe a torn artifact);
//! * [`ArtifactStore`] — the read side: an artifact directory as a
//!   [`ResultSource`], so the figure/table experiments in
//!   `ff-experiments` render the same reports from checkpointed artifacts
//!   that `Suite` renders from live simulations.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ff_engine::RunResult;
use ff_experiments::{HierKind, ModelKind, ResultSource};
use ff_workloads::{Scale, Workload};

use crate::artifact::{parse_report_artifact, parse_sim_artifact};
use crate::job::JobSpec;

/// Number of shard directories (two hex chars of the config hash).
pub const SHARD_COUNT: usize = 256;

/// The shard directory name (`"00"`..`"ff"`) for a config hash: the top
/// byte, i.e. the first two hex chars of the filename-embedded hash.
pub fn shard_name(hash: u64) -> String {
    format!("{:02x}", (hash >> 56) as u8)
}

/// The artifact path for `spec` in the sharded layout (where new
/// artifacts are written).
pub fn sharded_path(root: &Path, spec: &JobSpec) -> PathBuf {
    root.join(shard_name(spec.config_hash())).join(spec.artifact_filename())
}

/// The artifact path for `spec` in the legacy flat layout (read-only
/// fallback for pre-sharding `results/` trees).
pub fn flat_path(root: &Path, spec: &JobSpec) -> PathBuf {
    root.join(spec.artifact_filename())
}

/// Finds an existing artifact for `spec`: the sharded layout first, then
/// the legacy flat layout.
pub fn find_artifact(root: &Path, spec: &JobSpec) -> Option<PathBuf> {
    let sharded = sharded_path(root, spec);
    if sharded.is_file() {
        return Some(sharded);
    }
    let flat = flat_path(root, spec);
    if flat.is_file() {
        return Some(flat);
    }
    None
}

/// Finds an artifact by config hash alone (the `GET /jobs/{hash}` lookup):
/// scans the hash's shard directory, then the flat root, for a file whose
/// name ends in `-{hash:016x}.json`.
pub fn find_by_hash(root: &Path, hash: u64) -> Option<PathBuf> {
    let suffix = format!("-{hash:016x}.json");
    for dir in [root.join(shard_name(hash)), root.to_path_buf()] {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(&suffix) && entry.path().is_file() {
                return Some(entry.path());
            }
        }
    }
    None
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `text` as the artifact for `spec` in the sharded layout,
/// atomically: the bytes land in a temp file in the destination shard and
/// are renamed over the final name, so a concurrent reader sees either no
/// artifact or a complete one, never a torn write.
///
/// # Errors
///
/// On failure to create the shard directory or write/rename the file.
pub fn write_artifact(root: &Path, spec: &JobSpec, text: &str) -> std::io::Result<PathBuf> {
    let path = sharded_path(root, spec);
    let shard = path.parent().expect("sharded path has a parent");
    std::fs::create_dir_all(shard)?;
    let tmp = shard.join(format!(
        ".tmp-{}-{}-{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        spec.artifact_filename(),
    ));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Whether a file name looks like an artifact (`sim-…-{16 hex}.json` or
/// `report-…-{16 hex}.json`), returning its embedded config hash.
fn artifact_hash_of(name: &str) -> Option<u64> {
    if !name.starts_with("sim-") && !name.starts_with("report-") {
        return None;
    }
    let stem = name.strip_suffix(".json")?;
    let (_, hex) = stem.rsplit_once('-')?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Migrates a legacy flat artifact tree into the sharded layout: every
/// `sim-*.json` / `report-*.json` directly under `root` moves into its
/// hash's shard directory. Non-artifact files (`manifest.json`,
/// `quarantine.json`, `bundles/`) stay put. Returns the number of files
/// moved. Idempotent: a second run moves nothing.
///
/// # Errors
///
/// On a filesystem error while scanning or moving.
pub fn migrate_flat(root: &Path) -> std::io::Result<usize> {
    let mut moved = 0;
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        if !entry.path().is_file() {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let Some(hash) = artifact_hash_of(&name) else { continue };
        let shard = root.join(shard_name(hash));
        std::fs::create_dir_all(&shard)?;
        std::fs::rename(entry.path(), shard.join(&name))?;
        moved += 1;
    }
    Ok(moved)
}

/// The sharded artifact layout behind per-shard mutexes: the write side
/// of the `ff-server` global memoization cache. Lookups and publishes for
/// the same shard serialize; different shards never contend. (In-flight
/// deduplication — two concurrent requests for the same hash simulating
/// once — is the scheduler's job; the store guarantees only that a
/// published artifact is complete and that a lookup racing a publish sees
/// one or the other.)
pub struct ShardedStore {
    root: PathBuf,
    locks: Vec<Mutex<()>>,
}

impl ShardedStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// On failure to create the root directory.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(ShardedStore { root, locks: (0..SHARD_COUNT).map(|_| Mutex::new(())).collect() })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn lock(&self, hash: u64) -> std::sync::MutexGuard<'_, ()> {
        let guard = self.locks[(hash >> 56) as usize].lock();
        // A poisoned shard lock only means another thread panicked while
        // holding it; the layout itself is rename-atomic, so proceed.
        guard.unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Whether an artifact for `spec` exists (sharded or legacy flat).
    pub fn contains(&self, spec: &JobSpec) -> bool {
        let _guard = self.lock(spec.config_hash());
        find_artifact(&self.root, spec).is_some()
    }

    /// Reads the artifact for `spec`, if present.
    pub fn read(&self, spec: &JobSpec) -> Option<String> {
        let _guard = self.lock(spec.config_hash());
        let path = find_artifact(&self.root, spec)?;
        std::fs::read_to_string(path).ok()
    }

    /// Reads an artifact by config hash alone.
    pub fn read_by_hash(&self, hash: u64) -> Option<String> {
        let _guard = self.lock(hash);
        let path = find_by_hash(&self.root, hash)?;
        std::fs::read_to_string(path).ok()
    }

    /// Publishes `text` as the artifact for `spec` (atomic rename).
    ///
    /// # Errors
    ///
    /// On a filesystem error.
    pub fn publish(&self, spec: &JobSpec, text: &str) -> std::io::Result<PathBuf> {
        let _guard = self.lock(spec.config_hash());
        write_artifact(&self.root, spec, text)
    }
}

/// A campaign artifact directory, memoized per grid point.
pub struct ArtifactStore {
    dir: PathBuf,
    scale: Scale,
    cache: BTreeMap<(ModelKind, HierKind, &'static str, u64), RunResult>,
}

impl ArtifactStore {
    /// Opens (without scanning) the artifact directory for `scale`.
    pub fn new(dir: impl Into<PathBuf>, scale: Scale) -> Self {
        ArtifactStore { dir: dir.into(), scale, cache: BTreeMap::new() }
    }

    /// The scale this store reads artifacts for.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The preferred (sharded) artifact path for `spec` inside this store.
    pub fn path_for(&self, spec: &JobSpec) -> PathBuf {
        sharded_path(&self.dir, spec)
    }

    /// Whether a (content-address-matching) artifact exists for `spec`,
    /// in the sharded layout or the legacy flat one.
    pub fn contains(&self, spec: &JobSpec) -> bool {
        find_artifact(&self.dir, spec).is_some()
    }

    /// Loads the simulation result for one grid point.
    ///
    /// # Errors
    ///
    /// Describes the missing/corrupt artifact, including the `ff-campaign`
    /// invocation that would produce it.
    pub fn try_result_seeded(
        &mut self,
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
    ) -> Result<&RunResult, String> {
        let key = (model, hier, bench, seed);
        if !self.cache.contains_key(&key) {
            let spec = JobSpec::sim(model, hier, bench, seed, self.scale);
            let path = find_artifact(&self.dir, &spec).unwrap_or_else(|| self.path_for(&spec));
            let text = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "no artifact for {} at {} ({e}); run `ff-campaign run --all --scale {}` first",
                    spec.id(),
                    path.display(),
                    crate::job::scale_name(self.scale),
                )
            })?;
            let result = parse_sim_artifact(&spec, &text)
                .map_err(|e| format!("corrupt artifact {}: {e}", path.display()))?;
            self.cache.insert(key, result);
        }
        Ok(&self.cache[&key])
    }

    /// Like [`ArtifactStore::try_result_seeded`] but panics with the error
    /// message (matching [`ResultSource::result`]'s contract).
    pub fn result_seeded(
        &mut self,
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
    ) -> &RunResult {
        // Two-phase to satisfy the borrow checker: probe first, then return.
        if let Err(e) = self.try_result_seeded(model, hier, bench, seed) {
            panic!("{e}");
        }
        &self.cache[&(model, hier, bench, seed)]
    }

    /// The rendered text of a report artifact.
    ///
    /// # Errors
    ///
    /// Describes the missing/corrupt artifact.
    pub fn try_report_text(&self, name: &'static str) -> Result<String, String> {
        let spec = JobSpec::report(name, self.scale);
        let path = find_artifact(&self.dir, &spec).unwrap_or_else(|| self.path_for(&spec));
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "no artifact for {} at {} ({e}); run `ff-campaign run --all --scale {}` first",
                spec.id(),
                path.display(),
                crate::job::scale_name(self.scale),
            )
        })?;
        parse_report_artifact(&spec, &text)
            .map_err(|e| format!("corrupt artifact {}: {e}", path.display()))
    }

    /// The directory this store reads from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl ResultSource for ArtifactStore {
    fn benchmarks(&self) -> Vec<&'static str> {
        Workload::NAMES.to_vec()
    }

    fn result(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> &RunResult {
        self.result_seeded(model, hier, bench, 0)
    }

    fn result_seeded(
        &mut self,
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
    ) -> &RunResult {
        ArtifactStore::result_seeded(self, model, hier, bench, seed)
    }

    fn report_text(&mut self, name: &'static str) -> Result<String, String> {
        self.try_report_text(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::render_sim_artifact;
    use ff_experiments::Suite;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ff-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn store_round_trips_a_live_result_from_the_sharded_layout() {
        let dir = temp_dir("roundtrip");
        let w = Workload::by_name("mesa", Scale::Test).unwrap();
        let live = Suite::execute(ModelKind::InOrder, HierKind::Base, &w);
        let spec = JobSpec::sim(ModelKind::InOrder, HierKind::Base, "mesa", 0, Scale::Test);
        write_artifact(&dir, &spec, &render_sim_artifact(&spec, &live)).unwrap();

        let mut store = ArtifactStore::new(&dir, Scale::Test);
        assert!(store.contains(&spec));
        let loaded = store.result(ModelKind::InOrder, HierKind::Base, "mesa");
        assert_eq!(loaded.stats, live.stats);
        // Artifacts deliberately exclude the simulator's self-instrumentation
        // counters, so the round trip zeroes them; everything else survives.
        let mut expected = live.activity;
        expected.select_visits = 0;
        expected.alloc_count = 0;
        assert_eq!(loaded.activity, expected);
        assert_eq!(loaded.mem_stats, live.mem_stats);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flat_layout_reads_still_work() {
        let dir = temp_dir("flat");
        let w = Workload::by_name("mesa", Scale::Test).unwrap();
        let live = Suite::execute(ModelKind::InOrder, HierKind::Base, &w);
        let spec = JobSpec::sim(ModelKind::InOrder, HierKind::Base, "mesa", 0, Scale::Test);
        // Legacy flat layout: artifact directly under the root.
        std::fs::write(dir.join(spec.artifact_filename()), render_sim_artifact(&spec, &live))
            .unwrap();

        let mut store = ArtifactStore::new(&dir, Scale::Test);
        assert!(store.contains(&spec));
        let loaded = store.result(ModelKind::InOrder, HierKind::Base, "mesa");
        assert_eq!(loaded.stats, live.stats);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrate_flat_moves_artifacts_into_shards() {
        let dir = temp_dir("migrate");
        let w = Workload::by_name("mesa", Scale::Test).unwrap();
        let live = Suite::execute(ModelKind::InOrder, HierKind::Base, &w);
        let spec = JobSpec::sim(ModelKind::InOrder, HierKind::Base, "mesa", 0, Scale::Test);
        let flat = dir.join(spec.artifact_filename());
        std::fs::write(&flat, render_sim_artifact(&spec, &live)).unwrap();
        // Bystanders must not move.
        std::fs::write(dir.join("manifest.json"), "{}\n").unwrap();
        std::fs::write(dir.join("quarantine.json"), "{}\n").unwrap();

        assert_eq!(migrate_flat(&dir).unwrap(), 1);
        assert!(!flat.exists(), "flat copy must move");
        assert!(sharded_path(&dir, &spec).is_file(), "artifact must land in its shard");
        assert!(dir.join("manifest.json").is_file());
        assert!(dir.join("quarantine.json").is_file());
        // Idempotent.
        assert_eq!(migrate_flat(&dir).unwrap(), 0);

        let mut store = ArtifactStore::new(&dir, Scale::Test);
        assert!(store.contains(&spec));
        assert_eq!(store.result(ModelKind::InOrder, HierKind::Base, "mesa").stats, live.stats);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn find_by_hash_searches_shard_then_flat() {
        let dir = temp_dir("byhash");
        let spec = JobSpec::sim(ModelKind::Ooo, HierKind::Base, "mcf", 0, Scale::Test);
        let hash = spec.config_hash();
        assert!(find_by_hash(&dir, hash).is_none());
        write_artifact(&dir, &spec, "{}\n").unwrap();
        assert_eq!(find_by_hash(&dir, hash), Some(sharded_path(&dir, &spec)));
        // A flat legacy artifact is found too once the sharded one is gone.
        std::fs::remove_file(sharded_path(&dir, &spec)).unwrap();
        std::fs::write(dir.join(spec.artifact_filename()), "{}\n").unwrap();
        assert_eq!(find_by_hash(&dir, hash), Some(dir.join(spec.artifact_filename())));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_store_publishes_and_reads_under_locks() {
        let dir = temp_dir("shared");
        let store = ShardedStore::open(&dir).unwrap();
        let spec = JobSpec::sim(ModelKind::Multipass, HierKind::Base, "gzip", 0, Scale::Test);
        assert!(!store.contains(&spec));
        assert!(store.read(&spec).is_none());
        store.publish(&spec, "{\"x\": 1}\n").unwrap();
        assert!(store.contains(&spec));
        assert_eq!(store.read(&spec).unwrap(), "{\"x\": 1}\n");
        assert_eq!(store.read_by_hash(spec.config_hash()).unwrap(), "{\"x\": 1}\n");
        assert!(store.read_by_hash(0xdead_beef).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_names_cover_the_hash_prefix() {
        assert_eq!(shard_name(0x0000_0000_0000_0000), "00");
        assert_eq!(shard_name(0xab12_3456_789a_bcde), "ab");
        assert_eq!(shard_name(0xff00_0000_0000_0001), "ff");
        let spec = JobSpec::sim(ModelKind::Ooo, HierKind::Config2, "art", 3, Scale::Paper);
        let f = spec.artifact_filename();
        // The shard name is the filename-embedded hash's first two chars.
        let hex = format!("{:016x}", spec.config_hash());
        assert_eq!(shard_name(spec.config_hash()), hex[..2].to_string());
        assert!(f.contains(&hex));
    }

    #[test]
    fn missing_artifact_error_names_the_campaign_command() {
        let mut store = ArtifactStore::new("/nonexistent-ff-campaign-dir", Scale::Test);
        let err = store.try_result_seeded(ModelKind::Ooo, HierKind::Base, "mcf", 0).unwrap_err();
        assert!(err.contains("ff-campaign run --all"), "{err}");
        assert!(err.contains("mcf/ooo/base/s0@test"), "{err}");
    }
}
