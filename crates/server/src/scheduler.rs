//! The fair, memoizing, multi-tenant campaign scheduler.
//!
//! Campaigns submit batches of [`JobSpec`]s; a fixed pool of simulation
//! workers drains them with three guarantees:
//!
//! * **Global memoization** — a job whose artifact already sits in the
//!   [`ShardedStore`] resolves as a `hit` without simulating, no matter
//!   which campaign produced the artifact (or whether a CLI run did).
//! * **In-flight deduplication** — two campaigns racing on the same
//!   config hash simulate it exactly once: the second parks as a waiter
//!   and resolves as `dedup` when the first publishes.
//! * **Round-robin fairness** — workers take jobs from campaigns in
//!   rotation, so a later, small campaign is not starved behind an
//!   earlier full-grid one.
//!
//! Execution goes through [`ff_harness::attempt_job`] — the same
//! panic-isolated code path as `ff-campaign run` — so a served artifact
//! is byte-identical to a CLI-produced one by construction. The
//! hash-keyed quarantine ledger in the store root is shared across every
//! campaign: a config quarantined by one tenant is skipped (and reported
//! as `quarantined`) when any other tenant resubmits it.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use ff_harness::campaign::{attempt_job, ExecOptions, JobContext};
use ff_harness::job::{scale_name, JobSpec};
use ff_harness::json::Json;
use ff_harness::quarantine::Quarantine;
use ff_harness::remote::CampaignRequest;
use ff_harness::store::ShardedStore;
use ff_harness::{write_manifest, Attempt, CampaignReport, JobError, JobOutcome, JobStatus};
use ff_workloads::Scale;

/// The directory under the store root holding per-campaign state
/// (`request.json` for resume, `manifest.json` checkpoints).
pub const CAMPAIGNS_DIR: &str = "campaigns";

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct SchedulerOptions {
    /// Simulation worker threads.
    pub workers: usize,
    /// Attempts per job (>= 1).
    pub attempts: u32,
    /// Execution knobs shared with the batch runner.
    pub exec: ExecOptions,
    /// Skip configs with this many consecutive recorded failures.
    pub quarantine_after: Option<u32>,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            attempts: 1,
            exec: ExecOptions::default(),
            quarantine_after: None,
        }
    }
}

/// Memoization and execution counters, exposed on `GET /healthz`.
#[derive(Debug, Default)]
pub struct Counters {
    /// Jobs resolved from an already-published artifact.
    pub hits: AtomicU64,
    /// Jobs that had to simulate (no artifact existed).
    pub misses: AtomicU64,
    /// Jobs parked behind an identical in-flight config hash.
    pub inflight_dedup: AtomicU64,
    /// Simulations that completed and published an artifact.
    pub sims_ok: AtomicU64,
    /// Simulations that exhausted their attempts.
    pub sims_failed: AtomicU64,
}

impl Counters {
    /// The counters as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hits", Json::U64(self.hits.load(Ordering::Relaxed))),
            ("misses", Json::U64(self.misses.load(Ordering::Relaxed))),
            ("inflight_dedup", Json::U64(self.inflight_dedup.load(Ordering::Relaxed))),
            ("sims_ok", Json::U64(self.sims_ok.load(Ordering::Relaxed))),
            ("sims_failed", Json::U64(self.sims_failed.load(Ordering::Relaxed))),
        ])
    }
}

/// Where one job stands. `Waiting` is the in-flight-dedup parking state;
/// everything from `Ok` down is terminal.
#[derive(Clone, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Waiting,
    Ok,
    Hit,
    Dedup,
    Failed(String),
    Quarantined(String),
}

impl JobState {
    fn terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running | JobState::Waiting)
    }

    /// Protocol status string (see `remote::JobBrief::status`).
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            // A waiter's work is in flight on another worker; report it
            // as running rather than inventing a fourth live state.
            JobState::Running | JobState::Waiting => "running",
            JobState::Ok => "ok",
            JobState::Hit => "hit",
            JobState::Dedup => "dedup",
            JobState::Failed(_) => "failed",
            JobState::Quarantined(_) => "quarantined",
        }
    }

    fn error(&self) -> Option<&str> {
        match self {
            JobState::Failed(msg) | JobState::Quarantined(msg) => Some(msg),
            _ => None,
        }
    }
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
}

struct Campaign {
    scale: Scale,
    jobs: Vec<JobEntry>,
}

impl Campaign {
    fn done(&self) -> bool {
        self.jobs.iter().all(|j| j.state.terminal())
    }
}

struct Inner {
    campaigns: BTreeMap<String, Campaign>,
    /// Round-robin rotation of campaign ids that may still have queued
    /// jobs. An id appears at most once.
    rotation: VecDeque<String>,
    /// Config hashes currently simulating → the jobs parked behind them.
    inflight: BTreeMap<u64, Vec<(String, usize)>>,
    next_serial: u64,
    stopping: bool,
}

/// A claimed unit of work: simulate `spec`, then publish under `hash`.
struct Task {
    campaign: String,
    index: usize,
    spec: JobSpec,
    hash: u64,
}

/// The execution hook: maps `(context, spec, exec)` to a finished
/// [`Attempt`]. Production uses [`ff_harness::attempt_job`]; tests swap
/// in latched executors to freeze jobs mid-flight deterministically.
pub type Executor = dyn Fn(&mut JobContext, &JobSpec, &ExecOptions) -> Attempt + Send + Sync;

/// The scheduler: shared store, counters, quarantine ledger, and the
/// worker pool. Construct with [`Scheduler::start`]; always shut down via
/// [`Scheduler::shutdown`] to checkpoint in-flight campaigns.
pub struct Scheduler {
    inner: Mutex<Inner>,
    work: Condvar,
    store: ShardedStore,
    counters: Counters,
    opts: SchedulerOptions,
    quarantine: Mutex<Quarantine>,
    executor: Box<Executor>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts the scheduler and its worker pool over `store`, resuming
    /// any checkpointed campaigns found under `<store>/campaigns/`.
    pub fn start(store: ShardedStore, opts: SchedulerOptions) -> Arc<Scheduler> {
        Self::start_with_executor(
            store,
            opts,
            Box::new(|ctx, spec, exec| attempt_job(ctx, spec, exec, None)),
        )
    }

    /// [`Scheduler::start`] with a custom executor (tests).
    pub fn start_with_executor(
        store: ShardedStore,
        opts: SchedulerOptions,
        executor: Box<Executor>,
    ) -> Arc<Scheduler> {
        let quarantine = Quarantine::load(store.root());
        let scheduler = Arc::new(Scheduler {
            inner: Mutex::new(Inner {
                campaigns: BTreeMap::new(),
                rotation: VecDeque::new(),
                inflight: BTreeMap::new(),
                next_serial: 1,
                stopping: false,
            }),
            work: Condvar::new(),
            store,
            counters: Counters::default(),
            opts,
            quarantine: Mutex::new(quarantine),
            executor,
            workers: Mutex::new(Vec::new()),
        });
        scheduler.resume_checkpointed();
        let handles: Vec<JoinHandle<()>> = (0..scheduler.opts.workers.max(1))
            .map(|_| {
                let s = Arc::clone(&scheduler);
                std::thread::spawn(move || s.worker_loop())
            })
            .collect();
        *scheduler.lock_workers() = handles;
        scheduler
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_workers(&self) -> MutexGuard<'_, Vec<JoinHandle<()>>> {
        self.workers.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_quarantine(&self) -> MutexGuard<'_, Quarantine> {
        self.quarantine.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The shared artifact store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// The memoization counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    fn campaign_dir(&self, id: &str) -> std::path::PathBuf {
        self.store.root().join(CAMPAIGNS_DIR).join(id)
    }

    /// Re-enqueues every campaign checkpointed under `<store>/campaigns/`.
    /// Finished jobs resolve as memoization hits without re-simulating;
    /// jobs checkpointed as `pending` simulate now.
    fn resume_checkpointed(&self) {
        let dir = self.store.root().join(CAMPAIGNS_DIR);
        let Ok(entries) = std::fs::read_dir(&dir) else { return };
        let mut resumed: Vec<(String, CampaignRequest)> = Vec::new();
        for entry in entries.flatten() {
            let id = entry.file_name().to_string_lossy().into_owned();
            let Ok(text) = std::fs::read_to_string(entry.path().join("request.json")) else {
                continue;
            };
            let Ok(doc) = Json::parse(&text) else { continue };
            let Ok(request) = CampaignRequest::from_json(&doc) else { continue };
            resumed.push((id, request));
        }
        // Deterministic resume order, and the serial counter must clear
        // every resumed id so new submissions never collide.
        resumed.sort_by(|a, b| a.0.cmp(&b.0));
        let mut inner = self.lock_inner();
        for (id, request) in resumed {
            if let Some(serial) = id.strip_prefix('c').and_then(|n| n.parse::<u64>().ok()) {
                inner.next_serial = inner.next_serial.max(serial + 1);
            }
            Self::enqueue(&mut inner, id, &request);
        }
        drop(inner);
        self.work.notify_all();
    }

    fn enqueue(inner: &mut Inner, id: String, request: &CampaignRequest) -> usize {
        let jobs: Vec<JobEntry> = request
            .expand()
            .into_iter()
            .map(|spec| JobEntry { spec, state: JobState::Queued })
            .collect();
        let total = jobs.len();
        inner.campaigns.insert(id.clone(), Campaign { scale: request.scale, jobs });
        if !inner.rotation.contains(&id) {
            inner.rotation.push_back(id);
        }
        total
    }

    /// Submits a campaign: expands the request, persists it for resume,
    /// and queues its jobs. Returns `(campaign id, total jobs)`.
    ///
    /// # Errors
    ///
    /// When the request matches no jobs or the scheduler is stopping.
    pub fn submit(&self, request: &CampaignRequest) -> Result<(String, usize), String> {
        if request.expand().is_empty() {
            return Err("the request matches no jobs".to_string());
        }
        let (id, total) = {
            let mut inner = self.lock_inner();
            if inner.stopping {
                return Err("server is shutting down".to_string());
            }
            let id = format!("c{}", inner.next_serial);
            inner.next_serial += 1;
            let total = Self::enqueue(&mut inner, id.clone(), request);
            (id, total)
        };
        // Persist the spec so a restarted server resumes this campaign —
        // durably (tmp + fsync + rename), so a crash mid-submit leaves
        // either no checkpoint or a complete one, never a torn file
        // `resume_checkpointed` would silently skip.
        let dir = self.campaign_dir(&id);
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| {
            ff_harness::durable_write(&dir.join("request.json"), &request.to_json().render())
        }) {
            eprintln!("ff-server: warning: could not persist campaign {id}: {e}");
        }
        self.work.notify_all();
        Ok((id, total))
    }

    /// The status document for `GET /campaigns/{id}`, or `None` for an
    /// unknown id.
    pub fn status(&self, id: &str) -> Option<Json> {
        let inner = self.lock_inner();
        let campaign = inner.campaigns.get(id)?;
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for job in &campaign.jobs {
            *counts.entry(job.state.name()).or_insert(0) += 1;
        }
        let jobs: Vec<Json> = campaign
            .jobs
            .iter()
            .map(|job| {
                let mut fields = vec![
                    ("id", Json::Str(job.spec.id())),
                    ("hash", Json::Str(format!("{:016x}", job.spec.config_hash()))),
                    ("status", Json::Str(job.state.name().into())),
                ];
                if let Some(msg) = job.state.error() {
                    fields.push(("error", Json::Str(msg.to_string())));
                }
                Json::obj(fields)
            })
            .collect();
        Some(Json::obj(vec![
            ("id", Json::Str(id.to_string())),
            ("done", Json::Bool(campaign.done())),
            ("scale", Json::Str(scale_name(campaign.scale).into())),
            (
                "counts",
                Json::Obj(counts.into_iter().map(|(k, v)| (k.to_string(), Json::U64(v))).collect()),
            ),
            ("jobs", Json::Arr(jobs)),
        ]))
    }

    /// Whether every job of every campaign is terminal.
    pub fn idle(&self) -> bool {
        let inner = self.lock_inner();
        inner.campaigns.values().all(Campaign::done)
    }

    /// The `GET /healthz` document.
    pub fn health(&self) -> Json {
        let inner = self.lock_inner();
        let campaigns = inner.campaigns.len() as u64;
        let done = inner.campaigns.values().filter(|c| c.done()).count() as u64;
        drop(inner);
        Json::obj(vec![
            ("status", Json::Str("ok".into())),
            ("campaigns", Json::U64(campaigns)),
            ("campaigns_done", Json::U64(done)),
            ("counters", self.counters.to_json()),
        ])
    }

    /// Claims the next runnable job in round-robin campaign order,
    /// resolving hits/waiters/quarantined jobs inline until a job that
    /// actually needs simulation turns up (or nothing is queued).
    fn claim(&self, inner: &mut Inner) -> Option<Task> {
        // Each pass pops one campaign; a campaign with remaining queued
        // work is pushed back, giving rotation fairness. Every iteration
        // either drops a drained campaign from the rotation or moves one
        // Queued job to another state, so the loop terminates.
        loop {
            let id = inner.rotation.pop_front()?;
            let Some(campaign) = inner.campaigns.get_mut(&id) else { continue };
            let Some(index) = campaign.jobs.iter().position(|j| j.state == JobState::Queued) else {
                continue; // drained: leave out of the rotation
            };
            let spec = campaign.jobs[index].spec.clone();
            let hash = spec.config_hash();
            let more_queued =
                campaign.jobs.iter().skip(index + 1).any(|j| j.state == JobState::Queued);

            // Quarantine gate: a config hash benched by *any* prior
            // campaign is skipped, not executed.
            if let Some(threshold) = self.opts.quarantine_after {
                let quarantine = self.lock_quarantine();
                if quarantine.blocks(&spec, threshold) {
                    let strikes = quarantine.strikes(&spec);
                    drop(quarantine);
                    campaign.jobs[index].state = JobState::Quarantined(format!(
                        "quarantined after {strikes} consecutive failed runs"
                    ));
                    if more_queued {
                        inner.rotation.push_back(id);
                    }
                    continue;
                }
            }

            // Memoization gate: an existing artifact is a hit, shared
            // with every past campaign and CLI run against this store.
            if self.store.contains(&spec) {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                campaign.jobs[index].state = JobState::Hit;
                self.lock_quarantine().record(&spec, false);
                if more_queued {
                    inner.rotation.push_back(id);
                }
                continue;
            }

            // In-flight gate: an identical hash already simulating means
            // this job parks and resolves when the runner publishes.
            if let Some(waiters) = inner.inflight.get_mut(&hash) {
                waiters.push((id.clone(), index));
                self.counters.inflight_dedup.fetch_add(1, Ordering::Relaxed);
                let campaign = inner.campaigns.get_mut(&id).expect("campaign exists");
                campaign.jobs[index].state = JobState::Waiting;
                if more_queued {
                    inner.rotation.push_back(id);
                }
                continue;
            }

            // A real miss: this worker simulates it.
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            inner.inflight.insert(hash, Vec::new());
            let campaign = inner.campaigns.get_mut(&id).expect("campaign exists");
            campaign.jobs[index].state = JobState::Running;
            if more_queued {
                inner.rotation.push_back(id.clone());
            }
            return Some(Task { campaign: id, index, spec, hash });
        }
    }

    fn worker_loop(&self) {
        let mut ctx = JobContext::new();
        loop {
            let task = {
                let mut inner = self.lock_inner();
                loop {
                    if inner.stopping {
                        return;
                    }
                    if let Some(task) = self.claim(&mut inner) {
                        break task;
                    }
                    inner =
                        self.work.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            self.execute(&mut ctx, task);
        }
    }

    /// Runs one claimed task outside the scheduler lock, publishes on
    /// success, and resolves the task plus every parked waiter.
    fn execute(&self, ctx: &mut JobContext, task: Task) {
        let attempts = self.opts.attempts.max(1);
        let mut outcome: Result<(), String> = Err("no attempt ran".to_string());
        for _attempt in 0..attempts {
            let attempt = (self.executor)(ctx, &task.spec, &self.opts.exec);
            match attempt.result {
                Ok(ref text) => {
                    outcome = self
                        .store
                        .publish(&task.spec, text)
                        .map(|_| ())
                        .map_err(|e| format!("publish artifact: {e}"));
                    if outcome.is_ok() {
                        break;
                    }
                }
                Err(ref err) => {
                    outcome = Err(err.to_string());
                    if _attempt + 1 == attempts {
                        // Terminal failure: leave a replayable crash
                        // bundle next to the store, as the CLI would.
                        attempt.write_crash_bundle(
                            self.store.root(),
                            &task.spec,
                            self.opts.exec.cycle_budget,
                        );
                    }
                }
            }
        }
        let failed = outcome.is_err();
        {
            let mut quarantine = self.lock_quarantine();
            quarantine.record(&task.spec, failed);
            if let Err(e) = quarantine.save(self.store.root()) {
                eprintln!("ff-server: warning: could not save quarantine ledger: {e}");
            }
        }
        if failed {
            self.counters.sims_failed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.sims_ok.fetch_add(1, Ordering::Relaxed);
        }
        let mut inner = self.lock_inner();
        let waiters = inner.inflight.remove(&task.hash).unwrap_or_default();
        let resolve = |inner: &mut Inner, id: &str, index: usize, state: JobState| {
            if let Some(campaign) = inner.campaigns.get_mut(id) {
                if let Some(job) = campaign.jobs.get_mut(index) {
                    job.state = state;
                }
            }
        };
        match &outcome {
            Ok(()) => {
                resolve(&mut inner, &task.campaign, task.index, JobState::Ok);
                for (id, index) in waiters {
                    resolve(&mut inner, &id, index, JobState::Dedup);
                }
            }
            Err(msg) => {
                resolve(&mut inner, &task.campaign, task.index, JobState::Failed(msg.clone()));
                for (id, index) in waiters {
                    resolve(
                        &mut inner,
                        &id,
                        index,
                        JobState::Failed(format!("deduplicated onto a failed run: {msg}")),
                    );
                }
            }
        }
        drop(inner);
        self.work.notify_all();
    }

    /// Builds the checkpoint report for one campaign: terminal jobs keep
    /// their outcome, queued/running/waiting jobs checkpoint as
    /// [`JobStatus::Pending`].
    fn checkpoint_report(campaign: &Campaign) -> CampaignReport {
        let outcomes = campaign
            .jobs
            .iter()
            .map(|job| {
                let (status, error) = match &job.state {
                    JobState::Ok => (JobStatus::Ok, None),
                    JobState::Hit | JobState::Dedup => (JobStatus::Cached, None),
                    JobState::Failed(msg) => {
                        (JobStatus::Failed, Some(JobError::other(msg.clone())))
                    }
                    JobState::Quarantined(msg) => {
                        (JobStatus::Quarantined, Some(JobError::other(msg.clone())))
                    }
                    JobState::Queued | JobState::Running | JobState::Waiting => {
                        (JobStatus::Pending, None)
                    }
                };
                JobOutcome { spec: job.spec.clone(), status, error, wall_ms: 0, attempts: 0 }
            })
            .collect();
        CampaignReport { outcomes, wall_s: 0.0, workers: 0, scale: campaign.scale }
    }

    /// Writes a checkpoint manifest for every campaign under
    /// `<store>/campaigns/<id>/manifest.json`, in the same format
    /// `ff-campaign run` writes.
    pub fn checkpoint_all(&self) {
        let inner = self.lock_inner();
        let reports: Vec<(String, CampaignReport)> = inner
            .campaigns
            .iter()
            .map(|(id, campaign)| (id.clone(), Self::checkpoint_report(campaign)))
            .collect();
        drop(inner);
        for (id, report) in reports {
            let dir = self.campaign_dir(&id);
            if let Err(e) =
                std::fs::create_dir_all(&dir).and_then(|()| write_manifest(&dir, &report))
            {
                eprintln!("ff-server: warning: could not checkpoint campaign {id}: {e}");
            }
        }
    }

    /// Graceful shutdown: stop handing out work, let in-flight jobs
    /// finish, join the workers, then checkpoint every campaign.
    pub fn shutdown(&self) {
        {
            let mut inner = self.lock_inner();
            inner.stopping = true;
        }
        self.work.notify_all();
        let handles: Vec<JoinHandle<()>> = self.lock_workers().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.checkpoint_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_experiments::{HierKind, ModelKind};
    use ff_harness::campaign::JobFilter;
    use ff_harness::JobError;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::time::{Duration, Instant};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ff-scheduler-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn request(model: ModelKind, benches: &[&str]) -> CampaignRequest {
        CampaignRequest {
            scale: Scale::Test,
            filter: JobFilter {
                models: vec![model],
                hiers: vec![HierKind::Base],
                benches: benches.iter().map(|b| b.to_string()).collect(),
                // The grid's seed sweep would add s1..s3 duplicates for
                // the swept models; pin seed 0 for exact job counts.
                seeds: vec![0],
            },
            reports: false,
        }
    }

    /// A counting executor that returns a tiny synthetic artifact.
    fn counting_executor(count: Arc<AtomicUsize>) -> Box<Executor> {
        Box::new(move |_ctx, spec, _exec| {
            count.fetch_add(1, Ordering::SeqCst);
            Attempt::synthetic(Ok(format!("{{\"synthetic\": \"{}\"}}\n", spec.id())))
        })
    }

    fn wait_done(scheduler: &Scheduler, id: &str) -> Json {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let status = scheduler.status(id).expect("campaign exists");
            if matches!(status.get("done"), Some(Json::Bool(true))) {
                return status;
            }
            assert!(Instant::now() < deadline, "campaign {id} did not finish");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn count_of(status: &Json, state: &str) -> u64 {
        status.get("counts").and_then(|c| c.get(state)).and_then(Json::as_u64).unwrap_or(0)
    }

    #[test]
    fn resubmitting_a_campaign_resolves_every_job_from_the_memo_cache() {
        let dir = temp_dir("memo");
        let sims = Arc::new(AtomicUsize::new(0));
        let scheduler = Scheduler::start_with_executor(
            ShardedStore::open(&dir).unwrap(),
            SchedulerOptions { workers: 2, ..SchedulerOptions::default() },
            counting_executor(Arc::clone(&sims)),
        );
        let req = request(ModelKind::InOrder, &["gzip", "mcf"]);
        let (first, total) = scheduler.submit(&req).unwrap();
        assert_eq!(total, 2);
        let status = wait_done(&scheduler, &first);
        assert_eq!(count_of(&status, "ok"), 2);
        assert_eq!(sims.load(Ordering::SeqCst), 2);

        let (second, _) = scheduler.submit(&req).unwrap();
        assert_ne!(first, second, "resubmission gets a fresh campaign id");
        let status = wait_done(&scheduler, &second);
        assert_eq!(count_of(&status, "hit"), 2, "status: {}", status.render());
        assert_eq!(sims.load(Ordering::SeqCst), 2, "the memo cache must prevent re-simulation");
        assert_eq!(scheduler.counters().hits.load(Ordering::Relaxed), 2);
        assert_eq!(scheduler.counters().misses.load(Ordering::Relaxed), 2);
        scheduler.shutdown();
    }

    #[test]
    fn concurrent_duplicate_jobs_simulate_once_via_inflight_dedup() {
        let dir = temp_dir("dedup");
        let sims = Arc::new(AtomicUsize::new(0));
        let entered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (entered_e, release_e) = (Arc::clone(&entered), Arc::clone(&release));
        let scheduler = Scheduler::start_with_executor(
            ShardedStore::open(&dir).unwrap(),
            SchedulerOptions { workers: 2, ..SchedulerOptions::default() },
            Box::new({
                let sims = Arc::clone(&sims);
                move |_ctx, spec, _exec| {
                    sims.fetch_add(1, Ordering::SeqCst);
                    entered_e.store(true, Ordering::SeqCst);
                    while !release_e.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Attempt::synthetic(Ok(format!("{{\"synthetic\": \"{}\"}}\n", spec.id())))
                }
            }),
        );
        let req = request(ModelKind::Runahead, &["vpr"]);
        let (first, _) = scheduler.submit(&req).unwrap();
        // Wait until the first campaign's job is inside the executor, so
        // the duplicate is guaranteed to arrive while it is in flight.
        while !entered.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let (second, _) = scheduler.submit(&req).unwrap();
        // The duplicate must park as a waiter, not start a second sim.
        let deadline = Instant::now() + Duration::from_secs(30);
        while scheduler.counters().inflight_dedup.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "duplicate was never deduplicated");
            std::thread::sleep(Duration::from_millis(1));
        }
        release.store(true, Ordering::SeqCst);
        let status_1 = wait_done(&scheduler, &first);
        let status_2 = wait_done(&scheduler, &second);
        assert_eq!(count_of(&status_1, "ok"), 1);
        assert_eq!(count_of(&status_2, "dedup"), 1, "status: {}", status_2.render());
        assert_eq!(sims.load(Ordering::SeqCst), 1, "the in-flight config must simulate once");
        assert_eq!(scheduler.counters().inflight_dedup.load(Ordering::Relaxed), 1);
        assert_eq!(scheduler.counters().misses.load(Ordering::Relaxed), 1);
        scheduler.shutdown();
    }

    #[test]
    fn round_robin_interleaves_concurrent_campaigns() {
        let dir = temp_dir("fairness");
        let order = Arc::new(Mutex::new(Vec::<String>::new()));
        let go = Arc::new(AtomicBool::new(false));
        let (order_e, go_e) = (Arc::clone(&order), Arc::clone(&go));
        let scheduler = Scheduler::start_with_executor(
            ShardedStore::open(&dir).unwrap(),
            SchedulerOptions { workers: 1, ..SchedulerOptions::default() },
            Box::new(move |_ctx, spec, _exec| {
                while !go_e.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                order_e.lock().unwrap().push(spec.id());
                Attempt::synthetic(Ok(format!("{{\"synthetic\": \"{}\"}}\n", spec.id())))
            }),
        );
        // The lone worker claims c1's first job and blocks on the gate;
        // c2 then joins the rotation before any further claims.
        let (c1, _) =
            scheduler.submit(&request(ModelKind::InOrder, &["gzip", "vpr", "mcf"])).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while scheduler.counters().misses.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "first job never claimed");
            std::thread::sleep(Duration::from_millis(1));
        }
        let (c2, _) = scheduler.submit(&request(ModelKind::Multipass, &["gzip", "vpr"])).unwrap();
        go.store(true, Ordering::SeqCst);
        wait_done(&scheduler, &c1);
        wait_done(&scheduler, &c2);
        let ran = order.lock().unwrap().clone();
        let campaigns: Vec<&str> =
            ran.iter().map(|id| if id.contains("/inorder/") { "c1" } else { "c2" }).collect();
        // After the pre-gate claim, the rotation alternates campaigns
        // instead of draining c1 before starting c2.
        assert_eq!(campaigns, vec!["c1", "c1", "c2", "c1", "c2"], "ran: {ran:?}");
        scheduler.shutdown();
    }

    #[test]
    fn shutdown_checkpoints_and_restart_resumes_without_resimulating() {
        let dir = temp_dir("resume");
        let sims = Arc::new(AtomicUsize::new(0));
        let scheduler = Scheduler::start_with_executor(
            ShardedStore::open(&dir).unwrap(),
            SchedulerOptions { workers: 2, ..SchedulerOptions::default() },
            counting_executor(Arc::clone(&sims)),
        );
        let req = request(ModelKind::Ooo, &["twolf", "art"]);
        let (id, _) = scheduler.submit(&req).unwrap();
        wait_done(&scheduler, &id);
        scheduler.shutdown();
        let manifest = dir.join(CAMPAIGNS_DIR).join(&id).join("manifest.json");
        assert!(manifest.exists(), "shutdown must checkpoint a manifest");
        assert_eq!(sims.load(Ordering::SeqCst), 2);

        // A fresh scheduler over the same store resumes the campaign;
        // every job resolves from the memo cache.
        let resumed = Scheduler::start_with_executor(
            ShardedStore::open(&dir).unwrap(),
            SchedulerOptions { workers: 2, ..SchedulerOptions::default() },
            counting_executor(Arc::clone(&sims)),
        );
        let status = wait_done(&resumed, &id);
        assert_eq!(count_of(&status, "hit"), 2, "status: {}", status.render());
        assert_eq!(sims.load(Ordering::SeqCst), 2, "resume must not re-simulate");
        // The serial counter cleared the resumed id: no collision.
        let (next, _) = resumed.submit(&req).unwrap();
        assert_ne!(next, id);
        resumed.shutdown();
    }

    #[test]
    fn a_failing_config_quarantines_across_campaigns() {
        let dir = temp_dir("quarantine");
        let scheduler = Scheduler::start_with_executor(
            ShardedStore::open(&dir).unwrap(),
            SchedulerOptions {
                workers: 1,
                quarantine_after: Some(2),
                ..SchedulerOptions::default()
            },
            Box::new(|_ctx, _spec, _exec| {
                Attempt::synthetic(Err(JobError::other("synthetic failure")))
            }),
        );
        let req = request(ModelKind::MpNoRegroup, &["gap"]);
        for expected in ["failed", "failed", "quarantined"] {
            let (id, _) = scheduler.submit(&req).unwrap();
            let status = wait_done(&scheduler, &id);
            assert_eq!(count_of(&status, expected), 1, "status: {}", status.render());
        }
        scheduler.shutdown();
    }
}
