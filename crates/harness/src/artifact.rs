//! Content-addressed result artifacts.
//!
//! One completed job writes exactly one JSON artifact. Artifacts are
//! byte-deterministic: field order is fixed, numbers are integers, and no
//! wall-clock timing is stored (timing lives in the manifest, which is not
//! content-addressed). This is what makes `--jobs 4` and `--jobs 1` runs
//! bit-for-bit comparable, and what lets resume trust an existing file.

use ff_engine::stats::CycleBreakdown;
use ff_engine::{Activity, RunResult, RunStats};
use ff_isa::ArchState;
use ff_mem::MemStats;

use crate::job::{JobKind, JobSpec, FORMAT_VERSION};
use crate::json::Json;

fn stats_json(s: &RunStats) -> Json {
    Json::obj(vec![
        ("cycles", Json::U64(s.cycles)),
        ("retired", Json::U64(s.retired)),
        ("executions", Json::U64(s.executions)),
        (
            "breakdown",
            Json::obj(vec![
                ("execution", Json::U64(s.breakdown.execution)),
                ("front_end", Json::U64(s.breakdown.front_end)),
                ("other", Json::U64(s.breakdown.other)),
                ("load", Json::U64(s.breakdown.load)),
            ]),
        ),
        ("branches", Json::U64(s.branches)),
        ("mispredicts", Json::U64(s.mispredicts)),
        ("early_resolved_mispredicts", Json::U64(s.early_resolved_mispredicts)),
        ("spec_mode_entries", Json::U64(s.spec_mode_entries)),
        ("advance_restarts", Json::U64(s.advance_restarts)),
        ("spec_mode_cycles", Json::U64(s.spec_mode_cycles)),
        ("rally_cycles", Json::U64(s.rally_cycles)),
        ("rs_reuses", Json::U64(s.rs_reuses)),
        ("value_flushes", Json::U64(s.value_flushes)),
        ("regroup_merges", Json::U64(s.regroup_merges)),
    ])
}

fn activity_json(a: &Activity) -> Json {
    Json::obj(vec![
        ("cycles", Json::U64(a.cycles)),
        ("regfile_reads", Json::U64(a.regfile_reads)),
        ("regfile_writes", Json::U64(a.regfile_writes)),
        ("srf_reads", Json::U64(a.srf_reads)),
        ("srf_writes", Json::U64(a.srf_writes)),
        ("rs_reads", Json::U64(a.rs_reads)),
        ("rs_writes", Json::U64(a.rs_writes)),
        ("rat_reads", Json::U64(a.rat_reads)),
        ("rat_writes", Json::U64(a.rat_writes)),
        ("wakeup_broadcasts", Json::U64(a.wakeup_broadcasts)),
        ("issue_selections", Json::U64(a.issue_selections)),
        ("iq_reads", Json::U64(a.iq_reads)),
        ("iq_writes", Json::U64(a.iq_writes)),
        ("load_buffer_searches", Json::U64(a.load_buffer_searches)),
        ("store_buffer_searches", Json::U64(a.store_buffer_searches)),
        ("smaq_accesses", Json::U64(a.smaq_accesses)),
        ("asc_accesses", Json::U64(a.asc_accesses)),
    ])
}

fn mem_json(m: &MemStats) -> Json {
    Json::obj(vec![
        ("data_accesses", Json::U64(m.data_accesses)),
        ("l1d_misses", Json::U64(m.l1d_misses)),
        ("l2_hits", Json::U64(m.l2_hits)),
        ("l3_hits", Json::U64(m.l3_hits)),
        ("mm_accesses", Json::U64(m.mm_accesses)),
        ("ifetches", Json::U64(m.ifetches)),
        ("l1i_misses", Json::U64(m.l1i_misses)),
        ("mshr_retries", Json::U64(m.mshr_retries)),
        ("speculative_reads", Json::U64(m.speculative_reads)),
        ("mshr_allocations", Json::U64(m.mshr_allocations)),
        ("mshr_releases", Json::U64(m.mshr_releases)),
        ("mshr_leaked", Json::U64(m.mshr_leaked)),
    ])
}

fn descriptor_json(spec: &JobSpec) -> Json {
    match &spec.kind {
        JobKind::Sim { model, hier, bench, seed } => Json::obj(vec![
            ("kind", Json::Str("sim".into())),
            ("model", Json::Str(model.name().into())),
            ("hier", Json::Str(hier.name().into())),
            ("bench", Json::Str((*bench).into())),
            ("seed", Json::U64(*seed)),
            ("scale", Json::Str(crate::job::scale_name(spec.scale).into())),
        ]),
        JobKind::Report { name } => Json::obj(vec![
            ("kind", Json::Str("report".into())),
            ("name", Json::Str((*name).into())),
            ("scale", Json::Str(crate::job::scale_name(spec.scale).into())),
        ]),
    }
}

fn header(spec: &JobSpec) -> Vec<(&'static str, Json)> {
    vec![
        ("format", Json::U64(FORMAT_VERSION as u64)),
        ("config_hash", Json::Str(format!("{:016x}", spec.config_hash()))),
        ("job", descriptor_json(spec)),
    ]
}

/// Renders the artifact for a completed simulation job.
pub fn render_sim_artifact(spec: &JobSpec, result: &RunResult) -> String {
    let mut fields = header(spec);
    fields.push(("stats", stats_json(&result.stats)));
    fields.push(("activity", activity_json(&result.activity)));
    fields.push(("mem_stats", mem_json(&result.mem_stats)));
    Json::obj(fields).render()
}

/// Renders the artifact for a completed report job (rendered report text).
pub fn render_report_artifact(spec: &JobSpec, text: &str) -> String {
    let mut fields = header(spec);
    fields.push(("text", Json::Str(text.to_string())));
    Json::obj(fields).render()
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing integer field `{key}`"))
}

/// Checks that `doc` is an artifact for exactly `spec` (format version and
/// config hash both match). A mismatch means the artifact was produced by
/// a different configuration and must be recomputed.
pub fn verify_header(spec: &JobSpec, doc: &Json) -> Result<(), String> {
    let format = u64_field(doc, "format")?;
    if format != FORMAT_VERSION as u64 {
        return Err(format!("format version {format} != {FORMAT_VERSION}"));
    }
    let hash = doc
        .get("config_hash")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing config_hash".to_string())?;
    let want = format!("{:016x}", spec.config_hash());
    if hash != want {
        return Err(format!("config hash {hash} != {want} for {}", spec.id()));
    }
    Ok(())
}

/// Parses a simulation artifact back into a [`RunResult`].
///
/// The artifact stores timing/activity/memory counters only, so the
/// returned result carries a zeroed [`ArchState`] — correctness of final
/// state is asserted at simulation time, not re-checked from artifacts.
pub fn parse_sim_artifact(spec: &JobSpec, text: &str) -> Result<RunResult, String> {
    let doc = Json::parse(text)?;
    verify_header(spec, &doc)?;
    let s = doc.get("stats").ok_or("missing stats")?;
    let b = s.get("breakdown").ok_or("missing stats.breakdown")?;
    let a = doc.get("activity").ok_or("missing activity")?;
    let m = doc.get("mem_stats").ok_or("missing mem_stats")?;
    Ok(RunResult {
        stats: RunStats {
            cycles: u64_field(s, "cycles")?,
            retired: u64_field(s, "retired")?,
            executions: u64_field(s, "executions")?,
            breakdown: CycleBreakdown {
                execution: u64_field(b, "execution")?,
                front_end: u64_field(b, "front_end")?,
                other: u64_field(b, "other")?,
                load: u64_field(b, "load")?,
            },
            branches: u64_field(s, "branches")?,
            mispredicts: u64_field(s, "mispredicts")?,
            early_resolved_mispredicts: u64_field(s, "early_resolved_mispredicts")?,
            spec_mode_entries: u64_field(s, "spec_mode_entries")?,
            advance_restarts: u64_field(s, "advance_restarts")?,
            spec_mode_cycles: u64_field(s, "spec_mode_cycles")?,
            rally_cycles: u64_field(s, "rally_cycles")?,
            rs_reuses: u64_field(s, "rs_reuses")?,
            value_flushes: u64_field(s, "value_flushes")?,
            regroup_merges: u64_field(s, "regroup_merges")?,
        },
        activity: Activity {
            cycles: u64_field(a, "cycles")?,
            regfile_reads: u64_field(a, "regfile_reads")?,
            regfile_writes: u64_field(a, "regfile_writes")?,
            srf_reads: u64_field(a, "srf_reads")?,
            srf_writes: u64_field(a, "srf_writes")?,
            rs_reads: u64_field(a, "rs_reads")?,
            rs_writes: u64_field(a, "rs_writes")?,
            rat_reads: u64_field(a, "rat_reads")?,
            rat_writes: u64_field(a, "rat_writes")?,
            wakeup_broadcasts: u64_field(a, "wakeup_broadcasts")?,
            issue_selections: u64_field(a, "issue_selections")?,
            iq_reads: u64_field(a, "iq_reads")?,
            iq_writes: u64_field(a, "iq_writes")?,
            load_buffer_searches: u64_field(a, "load_buffer_searches")?,
            store_buffer_searches: u64_field(a, "store_buffer_searches")?,
            smaq_accesses: u64_field(a, "smaq_accesses")?,
            asc_accesses: u64_field(a, "asc_accesses")?,
            // Simulator self-instrumentation (select_visits / alloc_count)
            // describes the host-side implementation, not the modeled
            // machine, and is deliberately excluded from artifacts so the
            // content-addressed store stays stable across simulator
            // optimizations. It surfaces through `BENCH_*.json` instead.
            select_visits: 0,
            alloc_count: 0,
        },
        mem_stats: MemStats {
            data_accesses: u64_field(m, "data_accesses")?,
            l1d_misses: u64_field(m, "l1d_misses")?,
            l2_hits: u64_field(m, "l2_hits")?,
            l3_hits: u64_field(m, "l3_hits")?,
            mm_accesses: u64_field(m, "mm_accesses")?,
            ifetches: u64_field(m, "ifetches")?,
            l1i_misses: u64_field(m, "l1i_misses")?,
            mshr_retries: u64_field(m, "mshr_retries")?,
            speculative_reads: u64_field(m, "speculative_reads")?,
            mshr_allocations: u64_field(m, "mshr_allocations")?,
            mshr_releases: u64_field(m, "mshr_releases")?,
            mshr_leaked: u64_field(m, "mshr_leaked")?,
        },
        final_state: ArchState::new(),
    })
}

/// Reconstructs the [`JobSpec`] from an artifact's embedded `job`
/// descriptor — what lets a client that fetched an artifact by config
/// hash alone file it under its proper content-addressed name.
///
/// # Errors
///
/// On a missing/malformed descriptor or a descriptor naming a model,
/// hierarchy, benchmark, or report this build does not know.
pub fn spec_from_artifact(text: &str) -> Result<JobSpec, String> {
    let doc = Json::parse(text)?;
    let job = doc.get("job").ok_or("artifact missing `job` descriptor")?;
    let field = |key: &str| {
        job.get(key).and_then(Json::as_str).ok_or_else(|| format!("job missing `{key}`"))
    };
    let scale_str = field("scale")?;
    let scale =
        crate::job::parse_scale(scale_str).ok_or_else(|| format!("unknown scale `{scale_str}`"))?;
    match field("kind")? {
        "sim" => {
            let model = ff_experiments::ModelKind::parse(field("model")?)
                .ok_or_else(|| format!("unknown model `{}`", field("model").unwrap()))?;
            let hier = ff_experiments::HierKind::parse(field("hier")?)
                .ok_or_else(|| format!("unknown hier `{}`", field("hier").unwrap()))?;
            let bench_name = field("bench")?;
            let bench = ff_workloads::Workload::NAMES
                .iter()
                .copied()
                .find(|b| *b == bench_name)
                .ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
            let seed = job.get("seed").and_then(Json::as_u64).ok_or("job missing `seed`")?;
            Ok(JobSpec::sim(model, hier, bench, seed, scale))
        }
        "report" => {
            let report_name = field("name")?;
            let name = crate::job::REPORT_NAMES
                .iter()
                .copied()
                .find(|n| *n == report_name)
                .ok_or_else(|| format!("unknown report `{report_name}`"))?;
            Ok(JobSpec::report(name, scale))
        }
        other => Err(format!("unknown job kind `{other}`")),
    }
}

/// Parses a report artifact back into its rendered text.
pub fn parse_report_artifact(spec: &JobSpec, text: &str) -> Result<String, String> {
    let doc = Json::parse(text)?;
    verify_header(spec, &doc)?;
    doc.get("text")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "missing text field".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_experiments::{HierKind, ModelKind};
    use ff_workloads::Scale;

    fn sample_spec() -> JobSpec {
        JobSpec::sim(ModelKind::InOrder, HierKind::Base, "gzip", 0, Scale::Test)
    }

    fn sample_result() -> RunResult {
        RunResult {
            stats: RunStats {
                cycles: 1234,
                retired: 567,
                executions: 600,
                breakdown: CycleBreakdown { execution: 400, front_end: 300, other: 234, load: 300 },
                branches: 80,
                mispredicts: 7,
                ..RunStats::default()
            },
            activity: Activity {
                cycles: 1234,
                regfile_reads: 999,
                iq_reads: 55,
                select_visits: 7,
                alloc_count: 3,
                ..Activity::default()
            },
            mem_stats: MemStats { data_accesses: 321, l1d_misses: 12, ..MemStats::default() },
            final_state: ArchState::new(),
        }
    }

    #[test]
    fn sim_artifact_round_trips_all_counters() {
        let spec = sample_spec();
        let result = sample_result();
        let text = render_sim_artifact(&spec, &result);
        let back = parse_sim_artifact(&spec, &text).unwrap();
        assert_eq!(back.stats, result.stats);
        // Simulator self-instrumentation is not serialized: it round-trips
        // to zero by design.
        assert_eq!(back.activity, Activity { select_visits: 0, alloc_count: 0, ..result.activity });
        assert_eq!(back.mem_stats, result.mem_stats);
        // Re-rendering the parsed artifact is byte-identical.
        assert_eq!(render_sim_artifact(&spec, &back), text);
    }

    #[test]
    fn wrong_spec_is_rejected() {
        let spec = sample_spec();
        let text = render_sim_artifact(&spec, &sample_result());
        let other = JobSpec::sim(ModelKind::InOrder, HierKind::Base, "gzip", 1, Scale::Test);
        let err = parse_sim_artifact(&other, &text).unwrap_err();
        assert!(err.contains("config hash"), "{err}");
    }

    #[test]
    fn report_artifact_round_trips() {
        let spec = JobSpec::report("unroll_effect", Scale::Test);
        let body = "=== report ===\nline with \"quotes\" and\ttabs\n";
        let text = render_report_artifact(&spec, body);
        assert_eq!(parse_report_artifact(&spec, &text).unwrap(), body);
    }

    #[test]
    fn spec_round_trips_through_the_embedded_descriptor() {
        let sim = sample_spec();
        assert_eq!(spec_from_artifact(&render_sim_artifact(&sim, &sample_result())).unwrap(), sim);
        let report = JobSpec::report("unroll_effect", Scale::Paper);
        assert_eq!(spec_from_artifact(&render_report_artifact(&report, "body\n")).unwrap(), report);
        let err = spec_from_artifact("{\"format\": 1}\n").unwrap_err();
        assert!(err.contains("job"), "{err}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let spec = sample_spec();
        let result = sample_result();
        assert_eq!(render_sim_artifact(&spec, &result), render_sim_artifact(&spec, &result));
        // No wall-clock contamination: the artifact must not mention time.
        assert!(!render_sim_artifact(&spec, &result).contains("wall"));
    }
}
