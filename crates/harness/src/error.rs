//! The structured job-failure taxonomy.
//!
//! Every way a campaign job can fail collapses into one of four
//! [`JobErrorKind`]s, so the manifest, the quarantine ledger, and CI can
//! react to *classes* of failure (a panic is a bug, a timeout is a wedged
//! simulation, an invariant violation is silent corruption made loud)
//! instead of string-matching error prose.

use std::fmt;

/// Why a job failed, at taxonomy granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobErrorKind {
    /// The job's compute closure panicked. The panic is caught at the job
    /// boundary; the campaign and its other workers keep running.
    Panic,
    /// The simulation hit its watchdog cycle budget
    /// ([`ff_engine::RunError::CycleBudgetExceeded`]).
    Timeout,
    /// A sentinel invariant checker fired during the run (`--sentinels`).
    InvariantViolation,
    /// Everything else: artifact I/O errors, unknown report names, and the
    /// test-only injected failures.
    Other,
}

impl JobErrorKind {
    /// Stable lower-case name (the manifest's `error_kind` field).
    pub fn name(self) -> &'static str {
        match self {
            JobErrorKind::Panic => "panic",
            JobErrorKind::Timeout => "timeout",
            JobErrorKind::InvariantViolation => "invariant-violation",
            JobErrorKind::Other => "other",
        }
    }

    /// Parses a kind name (manifest/bundle round-trip).
    pub fn parse(s: &str) -> Option<JobErrorKind> {
        [
            JobErrorKind::Panic,
            JobErrorKind::Timeout,
            JobErrorKind::InvariantViolation,
            JobErrorKind::Other,
        ]
        .into_iter()
        .find(|k| k.name() == s)
    }
}

/// One classified job failure: a [`JobErrorKind`] plus the human-readable
/// detail. Implements [`std::error::Error`] and renders as
/// `"<kind>: <message>"`, matching [`ff_engine::RunError`]'s convention.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobError {
    /// The failure class.
    pub kind: JobErrorKind,
    /// What went wrong, in detail.
    pub message: String,
}

impl JobError {
    /// A caught panic.
    pub fn panic(message: impl Into<String>) -> Self {
        JobError { kind: JobErrorKind::Panic, message: message.into() }
    }

    /// A watchdog timeout.
    pub fn timeout(message: impl Into<String>) -> Self {
        JobError { kind: JobErrorKind::Timeout, message: message.into() }
    }

    /// A sentinel invariant violation.
    pub fn invariant(message: impl Into<String>) -> Self {
        JobError { kind: JobErrorKind::InvariantViolation, message: message.into() }
    }

    /// An unclassified failure.
    pub fn other(message: impl Into<String>) -> Self {
        JobError { kind: JobErrorKind::Other, message: message.into() }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.message)
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            JobErrorKind::Panic,
            JobErrorKind::Timeout,
            JobErrorKind::InvariantViolation,
            JobErrorKind::Other,
        ] {
            assert_eq!(JobErrorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(JobErrorKind::parse("no-such-kind"), None);
    }

    #[test]
    fn display_leads_with_the_kind() {
        let e = JobError::timeout("cycle budget exceeded: 10 cycles simulated, 0 retired");
        assert!(e.to_string().starts_with("timeout:"), "{e}");
        let boxed: Box<dyn std::error::Error> = Box::new(JobError::panic("boom"));
        assert_eq!(boxed.to_string(), "panic: boom");
    }
}
