//! Gshare branch predictor (Table 2: "1024-entry gshare").

use ff_isa::Pc;

/// Width of the global history register in bits.
const HISTORY_BITS: u32 = 10;

/// A gshare predictor: a table of 2-bit saturating counters indexed by the
/// XOR of branch-address bits with a global history register. The history
/// register is updated *speculatively* at prediction time; each in-flight
/// branch carries a snapshot so a mispredict can repair it.
///
/// # Examples
///
/// ```
/// use ff_frontend::Gshare;
/// use ff_isa::{Pc, program::BlockId};
///
/// let mut g = Gshare::new(1024);
/// let pc = Pc::new(BlockId(3), 0);
/// let (pred, snap) = g.predict(pc);
/// // Resolve: the branch was actually taken. Train, and repair history if
/// // the prediction was wrong.
/// g.update(pc, snap, true);
/// if pred != true {
///     g.repair(snap, true);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    /// 2-bit saturating counters; >=2 predicts taken.
    table: Vec<u8>,
    history: u16,
    predictions: u64,
    mispredict_trainings: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` 2-bit counters, initialized to
    /// weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "gshare table size must be a power of two");
        Gshare { table: vec![1; entries], history: 0, predictions: 0, mispredict_trainings: 0 }
    }

    fn index(&self, pc: Pc, history: u16) -> usize {
        let pc_bits = (pc.fetch_address() >> 4) as usize;
        (pc_bits ^ (history as usize & ((1 << HISTORY_BITS) - 1))) & (self.table.len() - 1)
    }

    /// Predicts the conditional branch at `pc`. Returns the prediction and a
    /// history snapshot to be carried with the branch for later
    /// [`Gshare::update`]/[`Gshare::repair`]. The global history is updated
    /// speculatively with the prediction.
    pub fn predict(&mut self, pc: Pc) -> (bool, u16) {
        let snapshot = self.history;
        let taken = self.table[self.index(pc, snapshot)] >= 2;
        self.history = shift_in(self.history, taken);
        self.predictions += 1;
        (taken, snapshot)
    }

    /// Trains the counter for the branch at `pc` (predicted under
    /// `snapshot`) with the actual outcome. Call on every resolved branch,
    /// correctly predicted or not. Multipass also calls this from advance
    /// mode when a branch preexecutes with valid operands — the mechanism
    /// behind the paper's twolf front-end improvement.
    pub fn update(&mut self, pc: Pc, snapshot: u16, taken: bool) {
        let idx = self.index(pc, snapshot);
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Repairs the global history after a mispredict: restores the
    /// pre-branch `snapshot` and shifts in the actual outcome.
    pub fn repair(&mut self, snapshot: u16, taken: bool) {
        self.history = shift_in(snapshot, taken);
        self.mispredict_trainings += 1;
    }

    /// Number of predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of history repairs (== mispredicts observed by the front end).
    pub fn repairs(&self) -> u64 {
        self.mispredict_trainings
    }

    /// The current (speculative) global history register.
    pub fn history(&self) -> u16 {
        self.history
    }
}

fn shift_in(history: u16, taken: bool) -> u16 {
    ((history << 1) | taken as u16) & ((1 << HISTORY_BITS) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::program::BlockId;

    fn pc(b: u32) -> Pc {
        Pc::new(BlockId(b), 0)
    }

    #[test]
    fn learns_always_taken() {
        let mut g = Gshare::new(1024);
        let p = pc(1);
        // With speculative history update, the history register converges to
        // all-ones for an always-taken branch (via mispredict repairs) and
        // the counter at that index then saturates.
        for _ in 0..20 {
            let (pred, snap) = g.predict(p);
            g.update(p, snap, true);
            if !pred {
                g.repair(snap, true);
            }
        }
        let (pred, _) = g.predict(p);
        assert!(pred, "should have learned taken");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut g = Gshare::new(1024);
        let p = pc(2);
        let mut actual = false;
        // Train an alternating branch; with history the pattern becomes
        // linearly separable and accuracy should approach 100%.
        let mut correct = 0;
        for i in 0..400 {
            let (pred, snap) = g.predict(p);
            if pred == actual && i >= 100 {
                correct += 1;
            }
            g.update(p, snap, actual);
            if pred != actual {
                g.repair(snap, actual);
            }
            actual = !actual;
        }
        assert!(correct > 290, "late-phase accuracy too low: {correct}/300");
    }

    #[test]
    fn repair_restores_history() {
        let mut g = Gshare::new(64);
        let (_, snap) = g.predict(pc(3));
        g.repair(snap, true);
        assert_eq!(g.history(), shift_in(snap, true));
        assert_eq!(g.repairs(), 1);
    }

    #[test]
    fn counters_saturate() {
        let mut g = Gshare::new(64);
        let p = pc(4);
        let (_, snap) = g.predict(p);
        for _ in 0..10 {
            g.update(p, snap, true);
        }
        for _ in 0..2 {
            g.update(p, snap, false);
        }
        // Two not-taken updates from saturation (3) leave counter at 1:
        // predicts not-taken but is one update from flipping.
        let (pred, _) = g.predict(p);
        assert!(!pred);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn table_size_must_be_pow2() {
        let _ = Gshare::new(1000);
    }
}
