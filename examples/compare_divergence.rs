//! Runs one execution model against the golden interpreter in lockstep and
//! prints the `ff-debug` first-divergence triage report.
//!
//! ```sh
//! cargo run --release --example compare_divergence -- <workload> <model> [fault-index]
//! ```
//!
//! `<workload>` is a workload name (`mcf`, `bzip2`, ... — see
//! `inspect_workload`), `<model>` one of `inorder`, `runahead`, `ooo`,
//! `ooo-real`, `mp`, `mp-noregroup`, `mp-norestart`. The optional
//! `fault-index` injects a single-bit corruption into the N-th multipass
//! result-store merge (`MultipassConfig::fault_corrupt_rs_merge`) so the
//! triage output can be demonstrated on a healthy tree.

use std::process::ExitCode;

use flea_flicker::baselines::{InOrder, OutOfOrder, Runahead};
use flea_flicker::debug::compare_model;
use flea_flicker::engine::{ExecutionModel, MachineConfig, SimCase};
use flea_flicker::multipass::{Multipass, MultipassConfig};
use flea_flicker::workloads::{Scale, Workload};

fn usage() -> ExitCode {
    eprintln!("usage: compare_divergence <workload> <model> [fault-index]");
    eprintln!("  models: inorder runahead ooo ooo-real mp mp-noregroup mp-norestart");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(workload), Some(model_name)) = (args.get(1), args.get(2)) else {
        return usage();
    };
    let fault: Option<u64> = match args.get(3) {
        Some(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => return usage(),
        },
        None => None,
    };

    let Some(w) = Workload::by_name(workload, Scale::Test) else {
        eprintln!("unknown workload `{workload}`");
        return usage();
    };

    let machine = MachineConfig::itanium2_base();
    let mp_config = |mut c: MultipassConfig| {
        c.fault_corrupt_rs_merge = fault;
        c
    };
    let mut model: Box<dyn ExecutionModel> = match model_name.as_str() {
        "inorder" => Box::new(InOrder::new(machine)),
        "runahead" => Box::new(Runahead::new(machine)),
        "ooo" => Box::new(OutOfOrder::new(machine)),
        "ooo-real" => Box::new(OutOfOrder::realistic(machine)),
        "mp" => Box::new(Multipass::with_config(mp_config(MultipassConfig::new(machine)))),
        "mp-noregroup" => Box::new(Multipass::with_config(mp_config(
            MultipassConfig::without_regrouping(machine),
        ))),
        "mp-norestart" => {
            Box::new(Multipass::with_config(mp_config(MultipassConfig::without_restart(machine))))
        }
        other => {
            eprintln!("unknown model `{other}`");
            return usage();
        }
    };
    if fault.is_some() && !model_name.starts_with("mp") {
        eprintln!("fault injection only applies to multipass models");
        return usage();
    }

    let case = SimCase::new(&w.program, w.mem.clone());
    let report = compare_model(&mut *model, &case);
    println!("{report}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
