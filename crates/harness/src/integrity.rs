//! Artifact integrity: checksum footers, verified reads, and `fsck`.
//!
//! Every artifact the store writes carries a one-line footer after its
//! JSON payload:
//!
//! ```text
//! #ff-checksum v1 crc64=995dc9bbdf1939fa bytes=1234
//! ```
//!
//! `crc64` is CRC-64/XZ over the payload bytes (everything before the
//! footer line, including the payload's trailing newline) and `bytes` is
//! the payload length, so both silent truncation and bit rot are caught
//! on read. The footer is a *storage-layer* concern: [`open`] verifies
//! and strips it, so everything above the store — artifact parsing,
//! byte-identity contracts between served and locally-rendered
//! artifacts, report rendering — sees pure payload bytes.
//!
//! Footerless files are accepted as **legacy** artifacts only when their
//! payload still parses as JSON. The JSON parser rejects both partial
//! documents and trailing garbage, so a sealed artifact truncated
//! anywhere (mid-payload or mid-footer) can never masquerade as legacy:
//! truncation mid-payload leaves unbalanced JSON, truncation mid-footer
//! leaves `#…` trailing garbage, and truncation exactly at the footer
//! boundary leaves the complete, valid payload — harmless by
//! construction.
//!
//! [`fsck`] walks a store, classifies every artifact ok / legacy /
//! corrupt, sweeps orphaned `.tmp-*` files left by crashed writers, and
//! moves corrupt files into a `corrupt/` ledger directory so the
//! scheduler transparently re-simulates them as memoization misses
//! (self-healing). The same routine backs `ff-campaign fsck` and the
//! `ff-server` startup scan.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::chaos;
use crate::json::Json;
use crate::store::artifact_hash_of;

/// The footer tag. A versioned format: v2 readers can accept v1 files.
pub const FOOTER_TAG: &str = "#ff-checksum v1";

/// The ledger directory corrupt artifacts are moved into.
pub const CORRUPT_DIR: &str = "corrupt";

/// The append-only ledger file inside [`CORRUPT_DIR`].
pub const LEDGER_NAME: &str = "ledger.jsonl";

/// CRC-64/XZ (reflected, polynomial `0xC96C5795D7870F42`, init and
/// xorout all-ones) — the checksum used by `xz` and compatible with
/// `python3 -c 'import crcmod; …'` CI checks. Bitwise: artifacts are a
/// few KB, table-free keeps the code obviously correct.
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut crc = !0u64;
    for &b in bytes {
        crc ^= u64::from(b);
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
    }
    !crc
}

/// Appends the integrity footer to `payload`, which must end with a
/// newline (artifact renderers guarantee it; one is added otherwise).
pub fn seal(payload: &str) -> String {
    let mut text = payload.to_string();
    if !text.ends_with('\n') {
        text.push('\n');
    }
    let crc = crc64(text.as_bytes());
    let bytes = text.len();
    text.push_str(&format!("{FOOTER_TAG} crc64={crc:016x} bytes={bytes}\n"));
    text
}

/// Where a verified artifact's integrity came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// The file carried a valid checksum footer.
    Sealed,
    /// A footerless pre-checksum file whose payload still parses.
    Legacy,
}

/// Verifies `text` and strips its footer, returning the payload.
///
/// # Errors
///
/// With a human-readable reason when the footer is malformed, the
/// length or checksum mismatches, or a footerless file fails to parse
/// as JSON (the legacy gate).
pub fn open(text: &str) -> Result<(&str, Provenance), String> {
    let footer_start = if text.starts_with(FOOTER_TAG) {
        Some(0)
    } else {
        text.rfind(&format!("\n{FOOTER_TAG}")).map(|i| i + 1)
    };
    let Some(footer_start) = footer_start else {
        // No footer at all: legacy only if the payload is intact JSON.
        return match Json::parse(text) {
            Ok(_) => Ok((text, Provenance::Legacy)),
            Err(e) => Err(format!("no checksum footer and payload is not valid JSON ({e})")),
        };
    };
    let payload = &text[..footer_start];
    let footer = &text[footer_start..];
    let Some(line) = footer.strip_suffix('\n') else {
        return Err("truncated checksum footer (missing trailing newline)".into());
    };
    if line.contains('\n') {
        return Err("garbage after checksum footer".into());
    }
    let rest = &line[FOOTER_TAG.len()..];
    let mut crc_field = None;
    let mut bytes_field = None;
    for part in rest.split_whitespace() {
        if let Some(v) = part.strip_prefix("crc64=") {
            crc_field = u64::from_str_radix(v, 16).ok();
        } else if let Some(v) = part.strip_prefix("bytes=") {
            bytes_field = v.parse::<usize>().ok();
        }
    }
    let (Some(crc), Some(bytes)) = (crc_field, bytes_field) else {
        return Err(format!("malformed checksum footer `{line}`"));
    };
    if payload.len() != bytes {
        return Err(format!(
            "length mismatch: footer says {bytes} bytes, payload has {}",
            payload.len()
        ));
    }
    let actual = crc64(payload.as_bytes());
    if actual != crc {
        return Err(format!("checksum mismatch: footer says {crc:016x}, payload is {actual:016x}"));
    }
    Ok((payload, Provenance::Sealed))
}

/// Why a verified read failed.
#[derive(Debug)]
pub enum ReadError {
    /// The file could not be read at all (missing, permissions, I/O).
    Io(std::io::Error),
    /// The file was read but failed integrity verification.
    Corrupt(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "{e}"),
            ReadError::Corrupt(reason) => write!(f, "{reason}"),
        }
    }
}

/// Reads `path` (through the chaos layer) and verifies its integrity,
/// returning the footer-stripped payload.
///
/// # Errors
///
/// [`ReadError::Io`] when the file cannot be read, [`ReadError::Corrupt`]
/// when it fails verification.
pub fn read_verified(path: &Path) -> Result<(String, Provenance), ReadError> {
    let text = chaos::read_to_string(path).map_err(ReadError::Io)?;
    match open(&text) {
        Ok((payload, provenance)) => Ok((payload.to_string(), provenance)),
        Err(reason) => Err(ReadError::Corrupt(reason)),
    }
}

/// Moves a corrupt artifact into `<root>/corrupt/` and appends a line to
/// the ledger recording the file, where it came from, and why. Returns
/// the quarantined path. Name collisions get a numeric suffix, so
/// repeated corruption of the same grid point keeps every specimen.
///
/// # Errors
///
/// On a filesystem error moving the file (the ledger append is
/// best-effort: losing a ledger line must not block self-healing).
pub fn quarantine_corrupt(root: &Path, path: &Path, reason: &str) -> std::io::Result<PathBuf> {
    let dir = root.join(CORRUPT_DIR);
    std::fs::create_dir_all(&dir)?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let mut dest = dir.join(&name);
    let mut n = 1;
    while dest.exists() {
        dest = dir.join(format!("{name}.{n}"));
        n += 1;
    }
    std::fs::rename(path, &dest)?;
    let from = path.strip_prefix(root).unwrap_or(path).to_string_lossy().into_owned();
    let line = format!(
        "{{\"file\": {:?}, \"from\": {:?}, \"reason\": {:?}}}\n",
        dest.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default(),
        from,
        reason,
    );
    if let Ok(mut ledger) =
        std::fs::OpenOptions::new().create(true).append(true).open(dir.join(LEDGER_NAME))
    {
        let _ = ledger.write_all(line.as_bytes());
    }
    Ok(dest)
}

/// What [`fsck`] found (and fixed) in one store.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Artifacts with a valid checksum footer.
    pub ok: usize,
    /// Footerless pre-checksum artifacts that still parse.
    pub legacy: usize,
    /// Corrupt artifacts, as (store-relative path, reason); each has
    /// been moved to the `corrupt/` ledger.
    pub corrupt: Vec<(String, String)>,
    /// Orphaned `.tmp-*` files swept (crashed or torn writers).
    pub orphan_tmp: usize,
}

impl FsckReport {
    /// Whether the store needed no healing.
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty() && self.orphan_tmp == 0
    }

    /// A one-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} ok, {} legacy, {} corrupt (moved to {CORRUPT_DIR}/), {} orphaned tmp swept",
            self.ok,
            self.legacy,
            self.corrupt.len(),
            self.orphan_tmp,
        )
    }
}

/// Whether `name` is a shard directory name (`"00"`..`"ff"`).
fn is_shard_dir(name: &str) -> bool {
    name.len() == 2 && name.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// Whether `name` is a writer temp file (see `durable_write`).
pub fn is_tmp_name(name: &str) -> bool {
    name.starts_with(".tmp-")
}

/// Walks the store at `root` — the flat root plus every shard directory
/// — verifying every artifact and sweeping every orphaned `.tmp-*`
/// file. Corrupt artifacts are moved to `<root>/corrupt/` and ledgered;
/// a subsequent campaign or server run transparently re-simulates them
/// as memoization misses.
///
/// # Errors
///
/// On a filesystem error scanning directories (per-file read failures
/// are classified as corrupt, not fatal).
pub fn fsck(root: &Path) -> std::io::Result<FsckReport> {
    let mut report = FsckReport::default();
    let mut dirs = vec![root.to_path_buf()];
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name();
        if is_shard_dir(&name.to_string_lossy()) && entry.path().is_dir() {
            dirs.push(entry.path());
        }
    }
    for dir in dirs {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if is_tmp_name(&name) {
                std::fs::remove_file(&path)?;
                report.orphan_tmp += 1;
                continue;
            }
            if artifact_hash_of(&name).is_none() {
                continue; // manifest.json, quarantine.json, bundles, …
            }
            match read_verified(&path) {
                Ok((_, Provenance::Sealed)) => report.ok += 1,
                Ok((_, Provenance::Legacy)) => report.legacy += 1,
                Err(e) => {
                    let reason = e.to_string();
                    let rel =
                        path.strip_prefix(root).unwrap_or(&path).to_string_lossy().into_owned();
                    quarantine_corrupt(root, &path, &reason)?;
                    report.corrupt.push((rel, reason));
                }
            }
        }
    }
    report.corrupt.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ff-integrity-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc64_matches_the_xz_check_vector() {
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn seal_then_open_round_trips_and_reports_sealed() {
        let payload = "{\n  \"x\": 1\n}\n";
        let sealed = seal(payload);
        assert!(sealed.starts_with(payload));
        assert!(sealed.contains(FOOTER_TAG));
        let (back, prov) = open(&sealed).unwrap();
        assert_eq!(back, payload);
        assert_eq!(prov, Provenance::Sealed);
    }

    #[test]
    fn open_accepts_intact_legacy_json_only() {
        let (payload, prov) = open("{\n  \"x\": 1\n}\n").unwrap();
        assert_eq!(prov, Provenance::Legacy);
        assert_eq!(payload, "{\n  \"x\": 1\n}\n");
        // A truncated legacy file is corrupt, not legacy.
        assert!(open("{\n  \"x\": ").is_err());
        // Trailing garbage is corrupt too.
        assert!(open("{\"x\": 1}\ngarbage\n").is_err());
    }

    #[test]
    fn every_truncation_point_of_a_sealed_artifact_is_detected() {
        let original = "{\n  \"answer\": 42\n}\n";
        let sealed = seal(original);
        let full = Json::parse(original).unwrap();
        for cut in 1..sealed.len() {
            let clipped = &sealed[..cut];
            // Either the cut is detected, or — for cuts that land exactly
            // on the end of the JSON document (the legacy-acceptance
            // boundary) — the surviving payload is the *complete*
            // document: a JSON object has no valid proper prefix, so no
            // cut can ever expose a partial artifact.
            if let Ok((payload, _)) = open(clipped) {
                assert_eq!(
                    Json::parse(payload).unwrap(),
                    full,
                    "cut {cut} served a document that differs from the original",
                );
            }
        }
    }

    #[test]
    fn bit_flips_anywhere_in_the_payload_are_detected() {
        let sealed = seal("{\n  \"answer\": 42\n}\n");
        let payload_len = sealed.find(FOOTER_TAG).unwrap();
        for i in 0..payload_len {
            let mut bytes = sealed.as_bytes().to_vec();
            bytes[i] ^= 0x01;
            let Ok(text) = String::from_utf8(bytes) else { continue };
            assert!(open(&text).is_err(), "flip at byte {i} not detected");
        }
    }

    #[test]
    fn length_and_checksum_mismatches_name_the_cause() {
        let err =
            open(&format!("{{}}\n{FOOTER_TAG} crc64=0000000000000000 bytes=3\n")).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        let err =
            open(&format!("{{}}\n{FOOTER_TAG} crc64=0000000000000000 bytes=99\n")).unwrap_err();
        assert!(err.contains("length mismatch"), "{err}");
        let err = open(&format!("{{}}\n{FOOTER_TAG} nonsense\n")).unwrap_err();
        assert!(err.contains("malformed checksum footer"), "{err}");
    }

    #[test]
    fn fsck_classifies_sweeps_and_ledgers() {
        use crate::job::JobSpec;
        use ff_experiments::{HierKind, ModelKind};
        use ff_workloads::Scale;

        let dir = temp("fsck");
        let ok_spec = JobSpec::sim(ModelKind::Multipass, HierKind::Base, "gzip", 0, Scale::Test);
        let bad_spec = JobSpec::sim(ModelKind::InOrder, HierKind::Base, "mcf", 0, Scale::Test);
        crate::store::write_artifact(&dir, &ok_spec, "{\"ok\": 1}\n").unwrap();
        let bad_path = crate::store::write_artifact(&dir, &bad_spec, "{\"bad\": 1}\n").unwrap();
        // Silently truncate one artifact and plant a legacy flat one plus
        // an orphaned tmp file and a bystander.
        let text = std::fs::read_to_string(&bad_path).unwrap();
        std::fs::write(&bad_path, &text[..text.len() / 2]).unwrap();
        let legacy_spec = JobSpec::sim(ModelKind::Ooo, HierKind::Base, "art", 0, Scale::Test);
        std::fs::write(dir.join(legacy_spec.artifact_filename()), "{\"legacy\": 1}\n").unwrap();
        std::fs::write(dir.join(".tmp-123-0-sim-x.json"), "partial").unwrap();
        std::fs::write(dir.join("manifest.json"), "not json, not an artifact").unwrap();

        let report = fsck(&dir).unwrap();
        assert_eq!(report.ok, 1);
        assert_eq!(report.legacy, 1);
        assert_eq!(report.orphan_tmp, 1);
        assert_eq!(report.corrupt.len(), 1, "{report:?}");
        assert!(!report.clean());
        assert!(!bad_path.exists(), "corrupt artifact must be moved out");
        let ledger = std::fs::read_to_string(dir.join(CORRUPT_DIR).join(LEDGER_NAME)).unwrap();
        assert!(ledger.contains(&bad_spec.artifact_filename()), "{ledger}");
        assert!(dir.join("manifest.json").exists(), "bystanders stay put");

        // Idempotent: a second pass finds a clean store.
        let again = fsck(&dir).unwrap();
        assert!(again.clean(), "{again:?}");
        assert_eq!((again.ok, again.legacy), (1, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
