//! Critical-load identification and RESTART insertion (paper §3.3).
//!
//! "Restart may be desirable if a deferred instruction will cause the vast
//! majority of subsequent preexecution to be deferred. … If an SCC precedes
//! a much larger number of multiple-cycle or variable-latency (such as
//! load) instructions than the SCC succeeds in the dataflow graph, the
//! loads in the SCC are considered critical. A RESTART is inserted after
//! every load in the SCC, consuming the load's destination."

use ff_isa::{program::BlockId, Inst, Op, Program};

use crate::scc::loop_sccs;

/// Policy deciding when a loop SCC's loads are *critical*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RestartPolicy {
    /// The SCC must precede at least `ratio` times as many variable-latency
    /// instructions as it succeeds.
    pub ratio: f64,
    /// Minimum number of downstream variable-latency instructions.
    pub min_downstream: usize,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy { ratio: 2.0, min_downstream: 2 }
    }
}

impl RestartPolicy {
    /// Applies the criticality test to an SCC's downstream/upstream
    /// variable-latency counts.
    pub fn is_critical(&self, downstream: usize, upstream: usize) -> bool {
        downstream >= self.min_downstream
            && downstream as f64 >= self.ratio * upstream as f64
            && downstream > upstream
    }
}

/// Returns a copy of `program` with a `RESTART` instruction inserted after
/// every load belonging to a critical loop SCC. The `RESTART` consumes the
/// load's destination register, so its operand is unready exactly while the
/// load miss is outstanding — the trigger condition for advance restart.
pub fn insert_restarts(program: &Program, policy: &RestartPolicy) -> Program {
    // Collect (block, inst-index) of critical loads.
    let mut critical: Vec<(BlockId, usize)> = Vec::new();
    for scc in loop_sccs(program) {
        if scc.loads.is_empty() {
            continue;
        }
        if policy.is_critical(scc.downstream_variable, scc.upstream_variable) {
            for &l in &scc.loads {
                critical.push((scc.block, l));
            }
        }
    }

    let mut out = Program::new();
    for b in 0..program.num_blocks() {
        let id = out.add_block();
        let block_id = BlockId(b as u32);
        let block = program.block(block_id).expect("block exists");
        for (i, inst) in block.iter().enumerate() {
            out.push(id, inst.clone());
            if critical.contains(&(block_id, i)) {
                let dst = inst.dst_reg().expect("critical load has a destination register");
                out.push(id, Inst::new(Op::Restart).src(dst));
            }
        }
    }
    out
}

/// Counts `RESTART` instructions in a program (testing/diagnostics).
pub fn count_restarts(program: &Program) -> usize {
    program.iter().filter(|(_, i)| matches!(i.op(), Op::Restart)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::interp::Interpreter;
    use ff_isa::Reg;

    /// mcf-like loop: a pointer chase whose value feeds several dependent
    /// loads — the canonical critical SCC.
    fn critical_loop() -> Program {
        let mut p = Program::new();
        let b0 = p.add_block();
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)));
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(1)).imm(8));
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(3)).src(Reg::int(1)).imm(16));
        p.push(b0, Inst::new(Op::Add).dst(Reg::int(4)).src(Reg::int(2)).src(Reg::int(3)));
        p.push(b0, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)));
        p.push(b0, Inst::new(Op::Br { target: b0 }).qp(Reg::pred(1)));
        let b1 = p.add_block();
        p.push(b1, Inst::new(Op::Halt));
        p
    }

    #[test]
    fn inserts_restart_after_critical_load() {
        let p = critical_loop();
        let out = insert_restarts(&p, &RestartPolicy::default());
        assert_eq!(count_restarts(&out), 1);
        let block = out.block(BlockId(0)).unwrap();
        // RESTART is right after the chase load and consumes r1.
        assert!(matches!(block[0].op(), Op::Load));
        assert!(matches!(block[1].op(), Op::Restart));
        assert_eq!(block[1].src_n(0), Some(Reg::int(1)));
    }

    #[test]
    fn restart_does_not_change_semantics() {
        let p = critical_loop();
        let out = insert_restarts(&p, &RestartPolicy::default());
        let mut a = Interpreter::new(&p);
        a.run(100_000).unwrap();
        let mut b = Interpreter::new(&out);
        b.run(100_000).unwrap();
        assert!(a.state().semantically_eq(b.state()));
    }

    #[test]
    fn accumulator_only_loop_gets_no_restart() {
        // Streaming loop: address is an induction variable (no load SCC).
        let mut p = Program::new();
        let b0 = p.add_block();
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(1)));
        p.push(b0, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(8));
        p.push(b0, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(2)));
        p.push(b0, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)));
        p.push(b0, Inst::new(Op::Br { target: b0 }).qp(Reg::pred(1)));
        let b1 = p.add_block();
        p.push(b1, Inst::new(Op::Halt));
        let out = insert_restarts(&p, &RestartPolicy::default());
        assert_eq!(count_restarts(&out), 0);
    }

    #[test]
    fn policy_thresholds() {
        let pol = RestartPolicy::default();
        assert!(pol.is_critical(4, 1));
        assert!(!pol.is_critical(1, 0), "below min_downstream");
        assert!(!pol.is_critical(4, 3), "ratio not met");
        assert!(pol.is_critical(2, 0));
    }

    #[test]
    fn chase_without_dependent_loads_not_critical() {
        // Chase load feeding only single-cycle ALU work: downstream
        // variable-latency count is 0 -> not critical.
        let mut p = Program::new();
        let b0 = p.add_block();
        p.push(b0, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)));
        p.push(b0, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(1)).imm(1));
        p.push(b0, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)));
        p.push(b0, Inst::new(Op::Br { target: b0 }).qp(Reg::pred(1)));
        let b1 = p.add_block();
        p.push(b1, Inst::new(Op::Halt));
        let out = insert_restarts(&p, &RestartPolicy::default());
        assert_eq!(count_restarts(&out), 0);
    }
}
