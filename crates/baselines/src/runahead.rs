//! Dundas–Mudge runahead preexecution (§2 and §5.4 of the paper).
//!
//! The pipeline behaves exactly like [`crate::InOrder`] until the oldest
//! instruction stalls on an unready *load* result. It then checkpoints
//! (architectural issue pauses without consuming the buffer) and
//! pre-executes subsequent instructions speculatively:
//!
//! * operands produced by deferred instructions are *invalid* and poison
//!   their consumers;
//! * valid-address loads access the memory hierarchy — the prefetching that
//!   is this scheme's entire benefit — but loads that miss the L1 produce
//!   invalid results;
//! * stores are dropped (runahead is purely a prefetching technique);
//! * branches with valid predicates resolve early, training the predictor
//!   and redirecting fetch.
//!
//! When the blocking load returns, *all* speculative work is discarded and
//! architectural execution re-executes every instruction — the two
//! limitations (no persistence, no restart) that motivate multipass
//! pipelining.

use std::borrow::Cow;

use ff_engine::{
    operand_wake, Activity, ExecutionModel, FuPool, MachineConfig, PendingKind, RetireEvent,
    RetireHook, RetireMode, RunError, RunResult, RunStats, Scoreboard, SimCase, StallKind,
    TickMode,
};
use ff_frontend::{FetchUnit, Gshare};
use ff_isa::eval::{alu, effective_address};
use ff_isa::{ArchState, Op, Reg};
use ff_mem::{AccessKind, MemAccess, MemorySystem};

use crate::inorder::operand_stall;

/// A speculative value in the runahead overlay: either a real value
/// available at some cycle, or invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SpecVal {
    /// Valid data, usable for bypass at `ready_at`.
    Valid {
        /// The speculative value.
        value: u64,
        /// Cycle at which the value can be bypassed.
        ready_at: u64,
    },
    /// Poisoned by a deferred producer.
    Invalid,
}

/// Speculative register overlay used during a runahead episode. Registers
/// not present fall through to the architectural file, with validity taken
/// from the scoreboard (a register whose writer is still in flight is
/// unavailable *now* but may arrive during the episode).
///
/// The overlay is a flat epoch-stamped array rather than a map: one
/// allocation at model start, and "discard all speculative state" on
/// episode entry is an epoch bump instead of a per-episode container —
/// zero heap traffic no matter how many episodes a run enters.
#[derive(Clone, Debug)]
struct SpecRegs {
    epoch: u64,
    slots: Vec<(u64, SpecVal)>,
}

impl SpecRegs {
    fn new() -> Self {
        SpecRegs { epoch: 1, slots: vec![(0, SpecVal::Invalid); Reg::FLAT_COUNT] }
    }

    /// Discards every overlay entry (entries stamped with older epochs
    /// read as absent).
    fn reset(&mut self) {
        self.epoch += 1;
    }

    fn write(&mut self, r: Reg, v: SpecVal) {
        if !r.is_hardwired() {
            self.slots[r.flat_index()] = (self.epoch, v);
        }
    }

    /// Reads `r` at cycle `now`: `Some(value)` when valid and ready, `None`
    /// when invalid or still in flight.
    fn read(&self, r: Reg, state: &ArchState, sb: &Scoreboard, now: u64) -> Option<u64> {
        if r.is_hardwired() {
            return Some(state.read(r));
        }
        match &self.slots[r.flat_index()] {
            (e, SpecVal::Valid { value, ready_at }) if *e == self.epoch && *ready_at <= now => {
                Some(*value)
            }
            (e, _) if *e == self.epoch => None,
            _ => {
                if sb.ready(r, now) {
                    Some(state.read(r))
                } else {
                    None
                }
            }
        }
    }
}

/// The Dundas–Mudge runahead model.
#[derive(Clone, Debug)]
pub struct Runahead {
    config: MachineConfig,
    tick: TickMode,
}

impl Runahead {
    /// Creates the model with the given machine configuration.
    pub fn new(config: MachineConfig) -> Self {
        Runahead { config, tick: TickMode::default() }
    }
}

impl ExecutionModel for Runahead {
    fn name(&self) -> &'static str {
        "runahead"
    }

    fn set_tick_mode(&mut self, mode: TickMode) {
        self.tick = mode;
    }

    fn try_run_hooked(
        &mut self,
        case: &SimCase<'_>,
        hook: &mut dyn RetireHook,
    ) -> Result<RunResult, RunError> {
        let program = case.program;
        let cfg = &self.config;
        let cycle_cap = case.cycle_cap(cfg.max_cycles);
        let mut state: ArchState = case.initial_state();
        let mut mem = MemorySystem::new(cfg.hierarchy);
        let mut fetch = FetchUnit::new(
            program,
            cfg.inorder_buffer,
            cfg.fetch_width as usize,
            Gshare::new(cfg.gshare_entries),
        );
        let mut sb = Scoreboard::new();
        let mut fu = FuPool::new(cfg);
        let mut stats = RunStats::default();
        let mut activity = Activity::new();
        let hook_enabled = hook.enabled();

        // Runahead episode state: `Some(peek_seq)` while running ahead of a
        // blocking load. The speculative overlay persists across episodes
        // (reset is an epoch bump), so episode entry allocates nothing.
        let mut episode: Option<u64> = None;
        let mut spec = SpecRegs::new();
        activity.alloc_count += 1; // the overlay's single allocation

        let mut now: u64 = 0;
        let mut halted = false;

        while !halted {
            if now >= cycle_cap {
                return Err(RunError::CycleBudgetExceeded {
                    limit: cycle_cap,
                    retired: stats.retired,
                });
            }
            assert!(stats.retired < case.max_insts, "instruction budget exceeded");
            fetch.tick(program, &mut mem, now);
            fu.new_cycle(now);

            let mut issued_arch = 0u32;
            let mut stall: Option<StallKind> = None;
            let mut blocked_on_load = false;

            // ---- architectural issue (identical to the in-order core) ----
            if episode.is_none() {
                while issued_arch < cfg.issue_width {
                    let (pc, seq, predicted_next, snap) = match fetch.get(fetch.head_seq()) {
                        Some(e) if e.fetched_at <= now => {
                            (e.pc, e.seq, e.predicted_next, e.history_snapshot)
                        }
                        _ => break,
                    };
                    // Borrow the program's instruction rather than cloning
                    // the fetch buffer's copy into every issue slot.
                    let inst = program.inst(pc).expect("fetched pc is valid");
                    activity.select_visits += 1;

                    if let Some(kind) = operand_stall(inst, &sb, now) {
                        stall = Some(kind);
                        blocked_on_load = kind == StallKind::Load;
                        break;
                    }
                    if !fu.try_issue(inst, now) {
                        stall = Some(StallKind::Other);
                        break;
                    }

                    let qp_true = state.read(inst.qp_reg()) != 0;
                    activity.regfile_reads += inst.reads().count() as u64;
                    let ends_group = inst.ends_group();
                    let mut flushed = false;
                    let mut stored = None;

                    if qp_true {
                        match inst.op() {
                            Op::Halt => halted = true,
                            Op::Br { target } => {
                                let actual_next = program.first_pc_from(*target);
                                if inst.is_predicated() {
                                    stats.branches += 1;
                                    fetch.predictor_mut().update(pc, snap, true);
                                }
                                if predicted_next != actual_next {
                                    stats.mispredicts += 1;
                                    fetch.flush_after(
                                        seq,
                                        actual_next,
                                        now + cfg.mispredict_penalty,
                                        snap,
                                        true,
                                    );
                                    flushed = true;
                                }
                            }
                            Op::Load | Op::LoadFp => {
                                let base = state.read(inst.src_n(0).expect("load base"));
                                let addr = effective_address(base, inst.imm_val());
                                match mem.access(addr, AccessKind::DataRead, now) {
                                    MemAccess::Done { complete_at, .. } => {
                                        let v = state.mem.load(addr);
                                        if let Some(d) = inst.writes() {
                                            state.write(d, v);
                                            sb.set_pending(d, complete_at, PendingKind::Load);
                                            activity.regfile_writes += 1;
                                        }
                                        stats.executions += 1;
                                    }
                                    MemAccess::Retry => {
                                        stall = Some(StallKind::Other);
                                        break;
                                    }
                                }
                            }
                            Op::Store => {
                                let base = state.read(inst.src_n(0).expect("store base"));
                                let data = state.read(inst.src_n(1).expect("store data"));
                                let addr = effective_address(base, inst.imm_val());
                                state.mem.store(addr, data);
                                let _ = mem.access(addr, AccessKind::DataWrite, now);
                                stored = Some((addr, data));
                                stats.executions += 1;
                            }
                            Op::Nop | Op::Restart => {}
                            op => {
                                let a = inst.src_n(0).map(|r| state.read(r)).unwrap_or(0);
                                let b = inst.src_n(1).map(|r| state.read(r)).unwrap_or(0);
                                let v = alu(op, a, b, inst.imm_val());
                                if let Some(d) = inst.writes() {
                                    state.write(d, v);
                                    sb.set_pending(d, now + op.latency() as u64, PendingKind::Exec);
                                    activity.regfile_writes += 1;
                                }
                                stats.executions += 1;
                            }
                        }
                    } else if let Op::Br { .. } = inst.op() {
                        let actual_next = program.next_pc(pc);
                        stats.branches += 1;
                        fetch.predictor_mut().update(pc, snap, false);
                        if predicted_next != actual_next {
                            stats.mispredicts += 1;
                            fetch.flush_after(
                                seq,
                                actual_next,
                                now + cfg.mispredict_penalty,
                                snap,
                                false,
                            );
                            flushed = true;
                        }
                    }

                    if hook_enabled {
                        hook.on_retire(&RetireEvent {
                            seq,
                            cycle: now,
                            pc,
                            inst: Cow::Borrowed(inst),
                            qp_true: Some(qp_true),
                            wrote: if qp_true {
                                inst.writes().map(|d| (d, state.read(d)))
                            } else {
                                None
                            },
                            stored,
                            mode: RetireMode::Architectural,
                            merged: false,
                            episode: None,
                        });
                    }
                    fetch.pop_front();
                    stats.retired += 1;
                    issued_arch += 1;
                    if halted || flushed || ends_group {
                        break;
                    }
                }

                // Enter runahead on a load-use stall.
                if issued_arch == 0 && blocked_on_load && !halted {
                    episode = Some(fetch.head_seq());
                    spec.reset();
                    stats.spec_mode_entries += 1;
                }
            }

            // ---- runahead pre-execution ----
            if episode.is_some() {
                // Exit check: is the blocking instruction ready now?
                let head_ready = fetch
                    .get(fetch.head_seq())
                    .map(|e| {
                        let inst = program.inst(e.pc).expect("fetched pc is valid");
                        operand_stall(inst, &sb, now).is_none()
                    })
                    .unwrap_or(false);
                if head_ready {
                    // Discard all speculative state; architectural execution
                    // resumes next cycle and re-executes everything.
                    episode = None;
                    stats.breakdown.charge(StallKind::Load);
                    stats.spec_mode_cycles += 1;
                    now += 1;
                    continue;
                }
            }
            if let Some(peek) = &mut episode {
                let spec = &mut spec;
                let mut pseudo_issued = 0u32;
                while pseudo_issued < cfg.issue_width {
                    let (pc, predicted_next, snap) = match fetch.get(*peek) {
                        Some(e) if e.fetched_at <= now => {
                            (e.pc, e.predicted_next, e.history_snapshot)
                        }
                        _ => break,
                    };
                    let inst = program.inst(pc).expect("fetched pc is valid");
                    activity.select_visits += 1;
                    if !fu.try_issue(inst, now) {
                        break;
                    }
                    let ends_group = inst.ends_group();
                    let qp = if inst.is_predicated() {
                        spec.read(inst.qp_reg(), &state, &sb, now)
                    } else {
                        Some(1)
                    };
                    let mut redirected = false;

                    match (qp, inst.op()) {
                        (None, _) => {
                            // Unknown predicate: defer the whole instruction.
                            if let Some(d) = inst.writes() {
                                spec.write(d, SpecVal::Invalid);
                            }
                        }
                        (Some(0), _) => {} // predicated off: no-op
                        (Some(_), Op::Halt) => {
                            // Stop pre-executing past the end of the program.
                            break;
                        }
                        (Some(_), Op::Br { target }) => {
                            // Valid branch: train the predictor early.
                            // (Runahead discards all work on exit, so fetch
                            // is *not* redirected — the architectural
                            // re-execution resolves the branch normally.)
                            let actual_next = program.first_pc_from(*target);
                            if inst.is_predicated() {
                                fetch.predictor_mut().update(pc, snap, true);
                            }
                            if predicted_next != actual_next {
                                stats.early_resolved_mispredicts += 1;
                                // Pre-executing past a known-wrong branch is
                                // useless; stop this cycle's group here.
                                redirected = true;
                            }
                        }
                        (Some(_), Op::Load | Op::LoadFp) => {
                            let base = inst.src_n(0).and_then(|r| spec.read(r, &state, &sb, now));
                            match base {
                                Some(b) => {
                                    let addr = effective_address(b, inst.imm_val());
                                    match mem.access(addr, AccessKind::SpeculativeRead, now) {
                                        MemAccess::Done { complete_at, level } => {
                                            stats.executions += 1;
                                            if let Some(d) = inst.writes() {
                                                if level.is_miss() {
                                                    // Missing loads defer their
                                                    // consumers (prefetch only).
                                                    spec.write(d, SpecVal::Invalid);
                                                } else {
                                                    spec.write(
                                                        d,
                                                        SpecVal::Valid {
                                                            value: state.mem.load(addr),
                                                            ready_at: complete_at,
                                                        },
                                                    );
                                                }
                                            }
                                        }
                                        MemAccess::Retry => {
                                            if let Some(d) = inst.writes() {
                                                spec.write(d, SpecVal::Invalid);
                                            }
                                        }
                                    }
                                }
                                None => {
                                    if let Some(d) = inst.writes() {
                                        spec.write(d, SpecVal::Invalid);
                                    }
                                }
                            }
                        }
                        (Some(_), Op::Store) => {
                            // Stores are dropped in runahead; a valid address
                            // still prefetches the line.
                            if let Some(b) =
                                inst.src_n(0).and_then(|r| spec.read(r, &state, &sb, now))
                            {
                                let addr = effective_address(b, inst.imm_val());
                                let _ = mem.access(addr, AccessKind::DataWrite, now);
                                stats.executions += 1;
                            }
                        }
                        (Some(_), Op::Nop | Op::Restart) => {}
                        (Some(_), op) => {
                            let a = inst.src_n(0).and_then(|r| spec.read(r, &state, &sb, now));
                            let b = inst.src_n(1).and_then(|r| spec.read(r, &state, &sb, now));
                            let a_ok = inst.src_n(0).is_none() || a.is_some();
                            let b_ok = inst.src_n(1).is_none() || b.is_some();
                            if let Some(d) = inst.writes() {
                                if a_ok && b_ok {
                                    let v = alu(op, a.unwrap_or(0), b.unwrap_or(0), inst.imm_val());
                                    spec.write(
                                        d,
                                        SpecVal::Valid {
                                            value: v,
                                            ready_at: now + op.latency() as u64,
                                        },
                                    );
                                    stats.executions += 1;
                                } else {
                                    spec.write(d, SpecVal::Invalid);
                                }
                            } else if a_ok && b_ok {
                                stats.executions += 1;
                            }
                        }
                    }

                    *peek += 1;
                    pseudo_issued += 1;
                    if redirected {
                        // Fetch was truncated; peek continues at the next
                        // (corrected) sequence number when it arrives.
                        *peek = (*peek).min(fetch.next_seq());
                        break;
                    }
                    if ends_group {
                        break;
                    }
                }

                // All runahead cycles are charged to the blocking load
                // (architecturally the pipeline is stalled on it).
                stats.breakdown.charge(StallKind::Load);
                stats.spec_mode_cycles += 1;
                now += 1;

                // Event-driven fast-forward inside an episode: skip ahead
                // only while the exit check provably stays false, the
                // pseudo-issue loop has nothing to chew on (PEEK ran past
                // fetch), and fetch itself is idle. Each skipped cycle is
                // charged to the blocking load, exactly as polled.
                if self.tick == TickMode::EventDriven && !halted {
                    if let Some(fetch_wake) = fetch.quiescent_until(now) {
                        let peek_wake = match fetch.get(*peek) {
                            None => Some(u64::MAX),
                            Some(e) if e.fetched_at > now => Some(e.fetched_at),
                            Some(_) => None, // live entry: pre-execution would run
                        };
                        let head_wake = fetch.get(fetch.head_seq()).and_then(|e| {
                            if e.fetched_at > now {
                                return Some(e.fetched_at);
                            }
                            let inst = program.inst(e.pc).expect("fetched pc is valid");
                            if operand_stall(inst, &sb, now).is_none() {
                                None // exit check fires: poll
                            } else {
                                Some(operand_wake(inst, &sb, now).unwrap_or(u64::MAX))
                            }
                        });
                        if let (Some(p), Some(h)) = (peek_wake, head_wake) {
                            let wake = p
                                .min(h)
                                .min(fetch_wake)
                                .min(mem.next_mshr_fill(now))
                                .min(cycle_cap);
                            if wake > now {
                                let skipped = wake - now;
                                stats.breakdown.charge_n(StallKind::Load, skipped);
                                stats.spec_mode_cycles += skipped;
                                now = wake;
                            }
                        }
                    }
                }
                continue;
            }

            if issued_arch > 0 {
                stats.breakdown.charge(StallKind::Execution);
            } else if let Some(kind) = stall {
                stats.breakdown.charge(kind);
            } else {
                stats.breakdown.charge(StallKind::FrontEnd);
            }
            now += 1;

            // Event-driven fast-forward in the architectural regime: same
            // analysis as the in-order baseline, except a predicted *load*
            // stall is never skipped — it enters a runahead episode the
            // very cycle it is detected.
            if self.tick == TickMode::EventDriven && !halted {
                if let Some(fetch_wake) = fetch.quiescent_until(now) {
                    // The third tuple element is issue-select visits per
                    // skipped cycle: a live stalled head is examined once
                    // every polled cycle, a drained or not-yet-fetched head
                    // is never examined.
                    let window = match fetch.get(fetch.head_seq()) {
                        None => Some((u64::MAX, StallKind::FrontEnd, 0)),
                        Some(e) if e.fetched_at > now => {
                            Some((e.fetched_at, StallKind::FrontEnd, 0))
                        }
                        Some(e) => {
                            let inst = program.inst(e.pc).expect("fetched pc is valid");
                            match operand_stall(inst, &sb, now) {
                                Some(kind) if kind != StallKind::Load => {
                                    operand_wake(inst, &sb, now).map(|w| (w, kind, 1))
                                }
                                Some(_) => None,
                                None if !fu.can_issue_fresh(inst, now) => {
                                    Some((fu.next_fp_release(now), StallKind::Other, 1))
                                }
                                None => None,
                            }
                        }
                    };
                    if let Some((target, kind, visits)) = window {
                        let wake =
                            target.min(fetch_wake).min(mem.next_mshr_fill(now)).min(cycle_cap);
                        if wake > now {
                            stats.breakdown.charge_n(kind, wake - now);
                            activity.select_visits += visits * (wake - now);
                            now = wake;
                        }
                    }
                }
            }
        }

        stats.cycles = now;
        activity.cycles = now;
        Ok(RunResult { stats, activity, mem_stats: mem.final_stats(), final_state: state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inorder::InOrder;
    use ff_isa::interp::Interpreter;
    use ff_isa::{Inst, MemoryImage, Program};

    /// Pointer-chase program over a pre-built linked list, with independent
    /// streaming loads after each chase step — the Figure 1 scenario.
    fn chase_with_stream(nodes: u64) -> (Program, MemoryImage) {
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x1_0000).stop());
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(5)).imm(0x80_0000).stop());
        // loop: r1 = load r1 (next); r4 = r1 + 0 (immediate use: the
        // in-order pipe stalls *here*); then an independent streaming miss
        // that only runahead can hoist under the chase miss (Figure 1).
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(1)).region(0).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(4)).src(Reg::int(1)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Load).dst(Reg::int(2)).src(Reg::int(5)).region(1));
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(5)).src(Reg::int(5)).imm(4096).stop());
        p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(2)));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(4)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
        p.push(b2, Inst::new(Op::Halt).stop());
        let mut mem = MemoryImage::new();
        // Linked list with large strides to defeat the caches.
        let stride = 64 * 1024;
        for i in 0..nodes {
            let a = 0x1_0000 + i * stride;
            let next = if i + 1 == nodes { 0 } else { 0x1_0000 + (i + 1) * stride };
            mem.store(a, next);
        }
        for i in 0..nodes {
            mem.store(0x80_0000 + i * 4096, i);
        }
        (p, mem)
    }

    #[test]
    fn matches_interpreter() {
        let (p, mem) = chase_with_stream(20);
        let case = SimCase::new(&p, mem.clone());
        let r = Runahead::new(MachineConfig::default()).run(&case);
        let mut s = ArchState::new();
        s.mem = mem;
        let mut i = Interpreter::with_state(&p, s);
        i.run(10_000_000).unwrap();
        assert!(r.final_state.semantically_eq(i.state()));
        assert_eq!(r.stats.retired, i.retired());
    }

    #[test]
    fn runahead_beats_inorder_on_chased_misses() {
        let (p, mem) = chase_with_stream(64);
        let case = SimCase::new(&p, mem);
        let base = InOrder::new(MachineConfig::default()).run(&case);
        let ra = Runahead::new(MachineConfig::default()).run(&case);
        assert!(
            ra.stats.cycles < base.stats.cycles,
            "runahead {} !< inorder {}",
            ra.stats.cycles,
            base.stats.cycles
        );
        assert!(ra.stats.spec_mode_entries > 0);
        assert!(ra.stats.spec_mode_cycles > 0);
    }

    #[test]
    fn runahead_issues_speculative_prefetches() {
        let (p, mem) = chase_with_stream(64);
        let case = SimCase::new(&p, mem);
        let ra = Runahead::new(MachineConfig::default()).run(&case);
        assert!(ra.mem_stats.speculative_reads > 0);
    }

    #[test]
    fn no_benefit_without_misses() {
        // A purely register-resident loop never enters runahead.
        let mut p = Program::new();
        let b0 = p.add_block();
        let b1 = p.add_block();
        let b2 = p.add_block();
        p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(100).stop());
        p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(1)).imm(-1));
        p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(1)).src(Reg::int(0)).stop());
        p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)).stop());
        p.push(b2, Inst::new(Op::Halt).stop());
        let case = SimCase::new(&p, MemoryImage::new());
        let ra = Runahead::new(MachineConfig::default()).run(&case);
        assert_eq!(ra.stats.spec_mode_entries, 0);
    }

    #[test]
    fn wasted_work_is_visible() {
        // Runahead re-executes pre-executed instructions, so dynamic
        // executions exceed retirements on miss-heavy code.
        let (p, mem) = chase_with_stream(64);
        let case = SimCase::new(&p, mem);
        let ra = Runahead::new(MachineConfig::default()).run(&case);
        assert!(
            ra.stats.executions > ra.stats.retired,
            "executions {} should exceed retired {}",
            ra.stats.executions,
            ra.stats.retired
        );
    }
}
