//! Register scoreboard with stall-cause tracking.

use ff_isa::{Inst, Op, Reg};

use crate::stats::StallKind;

/// Why a register write is outstanding — used to attribute stall cycles to
/// the paper's Figure 6 categories (`load` vs `other`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PendingKind {
    /// No outstanding write.
    #[default]
    None,
    /// The in-flight writer is a load (cache-miss stall category).
    Load,
    /// The in-flight writer is a multi-cycle execution op (other category).
    Exec,
}

/// Per-register ready cycles for all three register files.
///
/// A register is *ready at cycle `t`* when its most recent writer's result
/// is available for bypass at `t`. Hardwired registers are always ready.
///
/// # Examples
///
/// ```
/// use ff_engine::{PendingKind, Scoreboard};
/// use ff_isa::Reg;
///
/// let mut sb = Scoreboard::new();
/// sb.set_pending(Reg::int(3), 10, PendingKind::Load);
/// assert!(!sb.ready(Reg::int(3), 9));
/// assert!(sb.ready(Reg::int(3), 10));
/// assert_eq!(sb.pending_kind(Reg::int(3), 9), PendingKind::Load);
/// ```
#[derive(Clone, Debug)]
pub struct Scoreboard {
    ready_at: Vec<u64>,
    kind: Vec<PendingKind>,
}

impl Default for Scoreboard {
    fn default() -> Self {
        Self::new()
    }
}

impl Scoreboard {
    /// Creates a scoreboard with every register ready at cycle 0.
    pub fn new() -> Self {
        Scoreboard {
            ready_at: vec![0; Reg::FLAT_COUNT],
            kind: vec![PendingKind::None; Reg::FLAT_COUNT],
        }
    }

    /// Whether `reg` is ready at cycle `now`.
    pub fn ready(&self, reg: Reg, now: u64) -> bool {
        reg.is_hardwired() || self.ready_at[reg.flat_index()] <= now
    }

    /// The cycle at which `reg` becomes ready.
    pub fn ready_cycle(&self, reg: Reg) -> u64 {
        if reg.is_hardwired() {
            0
        } else {
            self.ready_at[reg.flat_index()]
        }
    }

    /// Marks `reg` as written by an operation whose result is available at
    /// `ready_at`.
    pub fn set_pending(&mut self, reg: Reg, ready_at: u64, kind: PendingKind) {
        if reg.is_hardwired() {
            return;
        }
        let i = reg.flat_index();
        self.ready_at[i] = ready_at;
        self.kind[i] = kind;
    }

    /// The cause of `reg`'s outstanding write at `now`, or
    /// [`PendingKind::None`] when ready.
    pub fn pending_kind(&self, reg: Reg, now: u64) -> PendingKind {
        if self.ready(reg, now) {
            PendingKind::None
        } else {
            self.kind[reg.flat_index()]
        }
    }

    /// The latest ready cycle across all registers (drain time).
    pub fn drain_cycle(&self) -> u64 {
        self.ready_at.iter().copied().max().unwrap_or(0)
    }

    /// Resets every register to ready-now (used on pipeline flushes where
    /// in-flight results are discarded).
    pub fn clear(&mut self) {
        self.ready_at.fill(0);
        self.kind.fill(PendingKind::None);
    }
}

/// Why an instruction cannot enter the REG stage this cycle, or `None`
/// when all of its operands (and its destination, for §3.5 WAW
/// scoreboarding) are ready.
///
/// `RESTART` is an architectural no-op and never interlocks here; only the
/// multipass advance pipeline gives it meaning.
pub fn operand_stall(inst: &Inst, sb: &Scoreboard, now: u64) -> Option<StallKind> {
    if matches!(inst.op(), Op::Restart) {
        return None;
    }
    let classify = |r: Reg| match sb.pending_kind(r, now) {
        PendingKind::None => None,
        PendingKind::Load => Some(StallKind::Load),
        PendingKind::Exec => Some(StallKind::Other),
    };
    for r in inst.reads() {
        if let Some(k) = classify(r) {
            return Some(k);
        }
    }
    if let Some(d) = inst.writes() {
        if let Some(k) = classify(d) {
            return Some(k);
        }
    }
    None
}

/// The earliest future cycle at which one of `inst`'s interlocked
/// registers (sources, predicate, and the §3.5 WAW destination) becomes
/// ready — i.e. the first cycle at which [`operand_stall`]'s answer can
/// change through the passage of time alone. `None` when nothing pends
/// past `now`. The event-driven tick uses this as a conservative wake
/// point: the *kind* of stall may differ once the earliest operand
/// readies, so the window must be re-evaluated there, not at the max.
pub fn operand_wake(inst: &Inst, sb: &Scoreboard, now: u64) -> Option<u64> {
    if matches!(inst.op(), Op::Restart) {
        return None;
    }
    let mut wake: Option<u64> = None;
    let mut consider = |r: Reg| {
        let rc = sb.ready_cycle(r);
        if rc > now {
            wake = Some(wake.map_or(rc, |w: u64| w.min(rc)));
        }
    };
    for r in inst.reads() {
        consider(r);
    }
    if let Some(d) = inst.writes() {
        consider(d);
    }
    wake
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_stall_classifies_blocking_writer() {
        let mut sb = Scoreboard::new();
        sb.set_pending(Reg::int(1), 50, PendingKind::Load);
        let consumer = Inst::new(Op::Add).dst(Reg::int(2)).src(Reg::int(1)).src(Reg::int(3));
        assert_eq!(operand_stall(&consumer, &sb, 10), Some(StallKind::Load));
        assert_eq!(operand_stall(&consumer, &sb, 50), None);
        // WAW on the destination also stalls.
        let waw = Inst::new(Op::MovImm).dst(Reg::int(1)).imm(1);
        assert_eq!(operand_stall(&waw, &sb, 10), Some(StallKind::Load));
        // RESTART never interlocks architecturally.
        let restart = Inst::new(Op::Restart).src(Reg::int(1));
        assert_eq!(operand_stall(&restart, &sb, 10), None);
    }

    #[test]
    fn registers_start_ready() {
        let sb = Scoreboard::new();
        assert!(sb.ready(Reg::int(5), 0));
        assert!(sb.ready(Reg::fp(5), 0));
        assert!(sb.ready(Reg::pred(5), 0));
    }

    #[test]
    fn pending_blocks_until_ready_cycle() {
        let mut sb = Scoreboard::new();
        sb.set_pending(Reg::fp(2), 7, PendingKind::Exec);
        assert!(!sb.ready(Reg::fp(2), 6));
        assert!(sb.ready(Reg::fp(2), 7));
        assert_eq!(sb.pending_kind(Reg::fp(2), 6), PendingKind::Exec);
        assert_eq!(sb.pending_kind(Reg::fp(2), 7), PendingKind::None);
    }

    #[test]
    fn hardwired_never_pend() {
        let mut sb = Scoreboard::new();
        sb.set_pending(Reg::int(0), 100, PendingKind::Load);
        assert!(sb.ready(Reg::int(0), 0));
        sb.set_pending(Reg::pred(0), 100, PendingKind::Load);
        assert!(sb.ready(Reg::pred(0), 0));
    }

    #[test]
    fn drain_cycle_is_max() {
        let mut sb = Scoreboard::new();
        sb.set_pending(Reg::int(1), 5, PendingKind::Exec);
        sb.set_pending(Reg::int(2), 12, PendingKind::Load);
        assert_eq!(sb.drain_cycle(), 12);
        sb.clear();
        assert_eq!(sb.drain_cycle(), 0);
    }
}
