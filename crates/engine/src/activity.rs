//! Per-structure activity counters for the Wattch-style power models.
//!
//! Each pipeline model increments the counters for the structures it
//! actually contains; `ff-power` combines them with per-access energies and
//! the clock-gating model to produce the *average power* column of the
//! paper's Table 1.

use std::ops::{Add, AddAssign};

/// Access counts for every modeled microarchitectural structure.
///
/// Out-of-order-specific and multipass-specific structures coexist here;
/// a model leaves the counters of structures it lacks at zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Activity {
    /// Cycles simulated (denominator for per-cycle activity factors).
    pub cycles: u64,
    // ---- register/data structures ----
    /// Architectural register-file read ports exercised.
    pub regfile_reads: u64,
    /// Architectural register-file writes.
    pub regfile_writes: u64,
    /// Speculative register-file (SRF) reads (multipass).
    pub srf_reads: u64,
    /// Speculative register-file (SRF) writes (multipass).
    pub srf_writes: u64,
    /// Result-store reads (multipass).
    pub rs_reads: u64,
    /// Result-store writes (multipass).
    pub rs_writes: u64,
    /// Register-alias-table lookups (out-of-order rename).
    pub rat_reads: u64,
    /// Register-alias-table updates (out-of-order rename).
    pub rat_writes: u64,
    // ---- scheduling structures ----
    /// Wakeup tag broadcasts into the scheduling window (out-of-order).
    pub wakeup_broadcasts: u64,
    /// Instructions selected/issued from the scheduling window.
    pub issue_selections: u64,
    /// Instruction-queue wide reads (multipass DEQ/PEEK).
    pub iq_reads: u64,
    /// Instruction-queue wide writes (multipass ENQ).
    pub iq_writes: u64,
    // ---- memory-ordering structures ----
    /// Load-buffer CAM searches (out-of-order).
    pub load_buffer_searches: u64,
    /// Store-buffer CAM searches (out-of-order).
    pub store_buffer_searches: u64,
    /// SMAQ reads/writes (multipass).
    pub smaq_accesses: u64,
    /// Advance-store-cache accesses (multipass).
    pub asc_accesses: u64,
    // ---- simulator self-instrumentation (tick-mode invariant) ----
    /// Live in-flight entries examined by issue select. With wakeup-driven
    /// ready sets this scales with instructions that *become* ready, not
    /// with window size x cycles.
    pub select_visits: u64,
    /// Growth events of in-flight state containers (slab/ring/overlay).
    /// Zero per retired instruction once the pipeline reaches steady state.
    pub alloc_count: u64,
}

impl Activity {
    /// Creates a zeroed activity record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average accesses per cycle for a counter value.
    pub fn per_cycle(&self, count: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            count as f64 / self.cycles as f64
        }
    }
}

impl Add for Activity {
    type Output = Activity;
    fn add(self, r: Activity) -> Activity {
        Activity {
            cycles: self.cycles + r.cycles,
            regfile_reads: self.regfile_reads + r.regfile_reads,
            regfile_writes: self.regfile_writes + r.regfile_writes,
            srf_reads: self.srf_reads + r.srf_reads,
            srf_writes: self.srf_writes + r.srf_writes,
            rs_reads: self.rs_reads + r.rs_reads,
            rs_writes: self.rs_writes + r.rs_writes,
            rat_reads: self.rat_reads + r.rat_reads,
            rat_writes: self.rat_writes + r.rat_writes,
            wakeup_broadcasts: self.wakeup_broadcasts + r.wakeup_broadcasts,
            issue_selections: self.issue_selections + r.issue_selections,
            iq_reads: self.iq_reads + r.iq_reads,
            iq_writes: self.iq_writes + r.iq_writes,
            load_buffer_searches: self.load_buffer_searches + r.load_buffer_searches,
            store_buffer_searches: self.store_buffer_searches + r.store_buffer_searches,
            smaq_accesses: self.smaq_accesses + r.smaq_accesses,
            asc_accesses: self.asc_accesses + r.asc_accesses,
            select_visits: self.select_visits + r.select_visits,
            alloc_count: self.alloc_count + r.alloc_count,
        }
    }
}

impl AddAssign for Activity {
    fn add_assign(&mut self, rhs: Activity) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cycle_guards_zero() {
        let a = Activity::new();
        assert_eq!(a.per_cycle(100), 0.0);
        let b = Activity { cycles: 50, regfile_reads: 100, ..Activity::default() };
        assert!((b.per_cycle(b.regfile_reads) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn addition_sums_fields() {
        let a = Activity { cycles: 1, iq_reads: 2, asc_accesses: 3, ..Activity::default() };
        let b = Activity { cycles: 10, iq_reads: 20, asc_accesses: 30, ..Activity::default() };
        let c = a + b;
        assert_eq!(c.cycles, 11);
        assert_eq!(c.iq_reads, 22);
        assert_eq!(c.asc_accesses, 33);
    }
}
