//! Read side of the campaign checkpoint: an artifact directory as a
//! [`ResultSource`].
//!
//! The figure/table experiments in `ff-experiments` are written against
//! [`ResultSource`], so pointing them at an [`ArtifactStore`] renders the
//! same reports from checkpointed artifacts that `Suite` renders from live
//! simulations — without re-running anything.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ff_engine::RunResult;
use ff_experiments::{HierKind, ModelKind, ResultSource};
use ff_workloads::{Scale, Workload};

use crate::artifact::{parse_report_artifact, parse_sim_artifact};
use crate::job::JobSpec;

/// A campaign artifact directory, memoized per grid point.
pub struct ArtifactStore {
    dir: PathBuf,
    scale: Scale,
    cache: BTreeMap<(ModelKind, HierKind, &'static str, u64), RunResult>,
}

impl ArtifactStore {
    /// Opens (without scanning) the artifact directory for `scale`.
    pub fn new(dir: impl Into<PathBuf>, scale: Scale) -> Self {
        ArtifactStore { dir: dir.into(), scale, cache: BTreeMap::new() }
    }

    /// The scale this store reads artifacts for.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The artifact path for `spec` inside this store.
    pub fn path_for(&self, spec: &JobSpec) -> PathBuf {
        self.dir.join(spec.artifact_filename())
    }

    /// Whether a (content-address-matching) artifact exists for `spec`.
    pub fn contains(&self, spec: &JobSpec) -> bool {
        self.path_for(spec).is_file()
    }

    /// Loads the simulation result for one grid point.
    ///
    /// # Errors
    ///
    /// Describes the missing/corrupt artifact, including the `ff-campaign`
    /// invocation that would produce it.
    pub fn try_result_seeded(
        &mut self,
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
    ) -> Result<&RunResult, String> {
        let key = (model, hier, bench, seed);
        if !self.cache.contains_key(&key) {
            let spec = JobSpec::sim(model, hier, bench, seed, self.scale);
            let path = self.path_for(&spec);
            let text = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "no artifact for {} at {} ({e}); run `ff-campaign run --all --scale {}` first",
                    spec.id(),
                    path.display(),
                    crate::job::scale_name(self.scale),
                )
            })?;
            let result = parse_sim_artifact(&spec, &text)
                .map_err(|e| format!("corrupt artifact {}: {e}", path.display()))?;
            self.cache.insert(key, result);
        }
        Ok(&self.cache[&key])
    }

    /// Like [`ArtifactStore::try_result_seeded`] but panics with the error
    /// message (matching [`ResultSource::result`]'s contract).
    pub fn result_seeded(
        &mut self,
        model: ModelKind,
        hier: HierKind,
        bench: &'static str,
        seed: u64,
    ) -> &RunResult {
        // Two-phase to satisfy the borrow checker: probe first, then return.
        if let Err(e) = self.try_result_seeded(model, hier, bench, seed) {
            panic!("{e}");
        }
        &self.cache[&(model, hier, bench, seed)]
    }

    /// Cycle count for a seeded grid point (seed-sensitivity rendering).
    pub fn seeded_cycles(&mut self, model: ModelKind, bench: &'static str, seed: u64) -> u64 {
        self.result_seeded(model, HierKind::Base, bench, seed).stats.cycles
    }

    /// The rendered text of a report artifact.
    ///
    /// # Errors
    ///
    /// Describes the missing/corrupt artifact.
    pub fn report_text(&self, name: &'static str) -> Result<String, String> {
        let spec = JobSpec::report(name, self.scale);
        let path = self.path_for(&spec);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "no artifact for {} at {} ({e}); run `ff-campaign run --all --scale {}` first",
                spec.id(),
                path.display(),
                crate::job::scale_name(self.scale),
            )
        })?;
        parse_report_artifact(&spec, &text)
            .map_err(|e| format!("corrupt artifact {}: {e}", path.display()))
    }

    /// The directory this store reads from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl ResultSource for ArtifactStore {
    fn benchmarks(&self) -> Vec<&'static str> {
        Workload::NAMES.to_vec()
    }

    fn result(&mut self, model: ModelKind, hier: HierKind, bench: &'static str) -> &RunResult {
        self.result_seeded(model, hier, bench, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::render_sim_artifact;
    use ff_experiments::Suite;

    #[test]
    fn store_round_trips_a_live_result() {
        let dir = std::env::temp_dir().join(format!("ff-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let w = Workload::by_name("mesa", Scale::Test).unwrap();
        let live = Suite::execute(ModelKind::InOrder, HierKind::Base, &w);
        let spec = JobSpec::sim(ModelKind::InOrder, HierKind::Base, "mesa", 0, Scale::Test);
        std::fs::write(dir.join(spec.artifact_filename()), render_sim_artifact(&spec, &live))
            .unwrap();

        let mut store = ArtifactStore::new(&dir, Scale::Test);
        assert!(store.contains(&spec));
        let loaded = store.result(ModelKind::InOrder, HierKind::Base, "mesa");
        assert_eq!(loaded.stats, live.stats);
        assert_eq!(loaded.activity, live.activity);
        assert_eq!(loaded.mem_stats, live.mem_stats);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_artifact_error_names_the_campaign_command() {
        let mut store = ArtifactStore::new("/nonexistent-ff-campaign-dir", Scale::Test);
        let err = store.try_result_seeded(ModelKind::Ooo, HierKind::Base, "mcf", 0).unwrap_err();
        assert!(err.contains("ff-campaign run --all"), "{err}");
        assert!(err.contains("mcf/ooo/base/s0@test"), "{err}");
    }
}
