//! # ff-server: the long-running campaign service
//!
//! A daemon that turns the batch campaign runner into a multi-tenant
//! service: clients `POST` campaign specs, a fair round-robin scheduler
//! drains them on a panic-isolated worker pool, and every artifact lands
//! in a sharded, content-addressed store that doubles as a global
//! memoization cache — resubmitting any previously-simulated config
//! (from any campaign, or from a past CLI run against the same store)
//! costs a directory probe, not a simulation.
//!
//! The stack, bottom up:
//!
//! * [`http`] — a hand-rolled `std::net` HTTP/1.1 layer (the build
//!   environment is offline; no hyper/tokio).
//! * [`scheduler`] — campaign expansion, round-robin fairness, in-flight
//!   deduplication, memoization counters, the shared quarantine ledger,
//!   and graceful-shutdown checkpointing in the batch manifest format.
//! * [`service`] — the five JSON routes.
//!
//! The client side lives in `ff_harness::remote` and is shared with the
//! `ff-campaign` CLI (`submit` / `status` / `fetch` / `render --server`).
//! Server-executed jobs go through the same [`ff_harness::attempt_job`]
//! path as `ff-campaign run`, so artifacts are byte-identical either way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod scheduler;
pub mod service;

use std::sync::Arc;

pub use http::{HttpOptions, HttpServer, Request, Response, TransportCounters};
pub use scheduler::{Counters, Scheduler, SchedulerOptions, CAMPAIGNS_DIR};
pub use service::Service;

use ff_harness::store::ShardedStore;

/// How many HTTP worker threads serve requests. Requests are cheap
/// (simulation happens on the scheduler's pool), so a small fixed pool
/// suffices.
const HTTP_THREADS: usize = 4;

/// A running campaign server: HTTP front end plus scheduler back end.
pub struct Server {
    http: HttpServer,
    service: Arc<Service>,
}

impl Server {
    /// Starts a server over the store at `store_root`, listening on
    /// `addr` (use port 0 for an ephemeral port). Campaigns checkpointed
    /// by a previous run of this store resume automatically.
    ///
    /// # Errors
    ///
    /// On failure to open the store or bind the address.
    pub fn start(
        addr: &str,
        store_root: impl Into<std::path::PathBuf>,
        opts: SchedulerOptions,
    ) -> std::io::Result<Server> {
        let store = ShardedStore::open(store_root)?;
        // Startup integrity scan: quarantine anything corrupt *before*
        // the scheduler starts trusting the memo cache, so a damaged
        // artifact reads as a miss and re-simulates instead of being
        // served. A clean store scans silently.
        let scan = store.fsck()?;
        if !scan.clean() {
            eprintln!("ff-server: store integrity scan: {}", scan.summary());
        }
        let scheduler = Scheduler::start(store, opts);
        let service = Arc::new(Service::new(scheduler));
        let handler_service = Arc::clone(&service);
        let http = HttpServer::start_with(
            addr,
            HttpOptions { threads: HTTP_THREADS, ..HttpOptions::default() },
            Arc::clone(service.transport()),
            move |request| handler_service.handle(request),
        )?;
        Ok(Server { http, service })
    }

    /// The bound socket address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.http.addr()
    }

    /// The service (exposes the scheduler and the shutdown latch).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Whether a client has requested shutdown via `POST /shutdown`.
    pub fn wants_shutdown(&self) -> bool {
        self.service.wants_shutdown()
    }

    /// Graceful shutdown: stop the HTTP front end, let in-flight
    /// simulations finish, and checkpoint every campaign's manifest.
    pub fn shutdown(self) {
        self.http.shutdown();
        self.service.scheduler().shutdown();
    }
}
