//! Architectural register and memory state.

use crate::memimg::MemoryImage;
use crate::reg::{Reg, RegClass, NUM_FP_REGS, NUM_INT_REGS, NUM_PRED_REGS};

/// Complete architectural state: the three register files plus data memory.
///
/// All register values are carried as raw 64-bit words; floating-point
/// registers hold `f64` bit patterns and predicate registers hold 0 or 1.
/// Reads of `r0` always return 0 and reads of `p0` always return 1; writes
/// to either are ignored ([`Reg::is_hardwired`]).
///
/// # Examples
///
/// ```
/// use ff_isa::{ArchState, Reg};
/// let mut s = ArchState::new();
/// s.write(Reg::int(3), 99);
/// assert_eq!(s.read(Reg::int(3)), 99);
/// s.write(Reg::int(0), 7); // dropped: r0 is hardwired
/// assert_eq!(s.read(Reg::int(0)), 0);
/// assert_eq!(s.read(Reg::pred(0)), 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ArchState {
    int: Vec<u64>,
    fp: Vec<u64>,
    pred: Vec<bool>,
    /// Data memory.
    pub mem: MemoryImage,
}

impl Default for ArchState {
    fn default() -> Self {
        Self::new()
    }
}

impl ArchState {
    /// Creates a zeroed state (with `p0` reading as true by construction).
    pub fn new() -> Self {
        ArchState {
            int: vec![0; NUM_INT_REGS],
            fp: vec![0; NUM_FP_REGS],
            pred: vec![false; NUM_PRED_REGS],
            mem: MemoryImage::new(),
        }
    }

    /// Reads a register as a raw 64-bit value (predicates read as 0/1).
    pub fn read(&self, r: Reg) -> u64 {
        if r.is_hardwired() {
            return match r.class() {
                RegClass::Pred => 1,
                _ => 0,
            };
        }
        match r.class() {
            RegClass::Int => self.int[r.index() as usize],
            RegClass::Fp => self.fp[r.index() as usize],
            RegClass::Pred => self.pred[r.index() as usize] as u64,
        }
    }

    /// Writes a register (predicates store `value != 0`). Writes to
    /// hardwired registers are silently dropped.
    pub fn write(&mut self, r: Reg, value: u64) {
        if r.is_hardwired() {
            return;
        }
        match r.class() {
            RegClass::Int => self.int[r.index() as usize] = value,
            RegClass::Fp => self.fp[r.index() as usize] = value,
            RegClass::Pred => self.pred[r.index() as usize] = value != 0,
        }
    }

    /// Convenience: reads integer register `i`.
    pub fn int(&self, i: u8) -> u64 {
        self.read(Reg::int(i))
    }

    /// Convenience: reads floating-point register `i` as an `f64`.
    pub fn fp(&self, i: u8) -> f64 {
        f64::from_bits(self.read(Reg::fp(i)))
    }

    /// Convenience: reads predicate register `i` as a bool.
    pub fn pred(&self, i: u8) -> bool {
        self.read(Reg::pred(i)) != 0
    }

    /// Whether two states have identical register files and semantically
    /// equal memories. This is the cross-model equivalence check used by the
    /// integration tests: every timing model must finish in the same
    /// architectural state as the golden interpreter.
    pub fn semantically_eq(&self, other: &ArchState) -> bool {
        self.int == other.int
            && self.fp == other.fp
            && self.pred == other.pred
            && self.mem.semantically_eq(&other.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_start_zeroed() {
        let s = ArchState::new();
        assert_eq!(s.int(5), 0);
        assert_eq!(s.fp(5), 0.0);
        assert!(!s.pred(5));
    }

    #[test]
    fn predicate_stores_nonzero_as_true() {
        let mut s = ArchState::new();
        s.write(Reg::pred(3), 42);
        assert_eq!(s.read(Reg::pred(3)), 1);
        s.write(Reg::pred(3), 0);
        assert_eq!(s.read(Reg::pred(3)), 0);
    }

    #[test]
    fn fp_round_trips_bit_patterns() {
        let mut s = ArchState::new();
        s.write(Reg::fp(7), (-1.5f64).to_bits());
        assert_eq!(s.fp(7), -1.5);
    }

    #[test]
    fn hardwired_reads() {
        let s = ArchState::new();
        assert_eq!(s.read(Reg::int(0)), 0);
        assert_eq!(s.read(Reg::pred(0)), 1);
    }

    #[test]
    fn semantic_equality_covers_memory() {
        let mut a = ArchState::new();
        let b = ArchState::new();
        assert!(a.semantically_eq(&b));
        a.mem.store(16, 3);
        assert!(!a.semantically_eq(&b));
    }
}
