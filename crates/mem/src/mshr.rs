//! Miss status holding registers (MSHRs).
//!
//! The MSHR file bounds the number of outstanding cache misses (Table 2's
//! "Max Outstanding Misses: 16") and merges accesses to a line whose miss is
//! already in flight. Because overlap of outstanding misses is exactly what
//! runahead-family techniques exploit, this bound is a first-order limit on
//! how much memory-level parallelism any model can expose.

/// Outcome of asking the MSHR file to track a miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the miss completes at the given cycle.
    Allocated {
        /// Completion cycle of the newly tracked miss.
        complete_at: u64,
    },
    /// The line already has a miss in flight; this access merges with it and
    /// completes when the existing miss does.
    Merged {
        /// Completion cycle of the in-flight miss.
        complete_at: u64,
    },
    /// All entries are busy; the requester must retry later.
    Full,
}

/// A bounded file of in-flight misses, keyed by line address.
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    /// `(line_address, complete_at)` pairs for in-flight misses.
    entries: Vec<(u64, u64)>,
    allocations: u64,
    merges: u64,
    full_stalls: u64,
    releases: u64,
    peak_occupancy: usize,
    fault_lose_dealloc: Option<u64>,
    /// The `(line, complete_at)` entry pinned by the lost-deallocation
    /// fault: it keeps occupying a slot but is never released.
    pinned: Option<(u64, u64)>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            allocations: 0,
            merges: 0,
            full_stalls: 0,
            releases: 0,
            peak_occupancy: 0,
            fault_lose_dealloc: None,
            pinned: None,
        }
    }

    /// Releases entries whose misses have completed by cycle `now`. An
    /// entry pinned by the lost-deallocation fault survives every expiry
    /// and is never counted as released.
    pub fn expire(&mut self, now: u64) {
        let pinned = self.pinned;
        let before = self.entries.len();
        self.entries.retain(|&e| e.1 > now || Some(e) == pinned);
        self.releases += (before - self.entries.len()) as u64;
    }

    /// Releases every entry whose miss has a finite completion, regardless
    /// of the current cycle — the end-of-run drain. A pinned entry (the
    /// lost-deallocation fault) survives the drain and shows up as a leak.
    pub fn drain(&mut self) {
        self.expire(u64::MAX - 1);
    }

    /// Fault-injection hook: the `n`-th allocated entry (0-based) is never
    /// deallocated. The fill itself still arrives — waiters merged on the
    /// line wake at the real completion cycle — but the slot is never
    /// reclaimed. Models the classic MSHR leak where the free-list update
    /// is dropped after the fill response.
    pub fn inject_lost_dealloc(&mut self, n: u64) {
        self.fault_lose_dealloc = Some(n);
    }

    /// Requests tracking of a miss to `line` issued at `now`, completing at
    /// `complete_at` if newly allocated. Expired entries are reclaimed
    /// first. See [`MshrOutcome`].
    pub fn request(&mut self, line: u64, now: u64, complete_at: u64) -> MshrOutcome {
        self.expire(now);
        // A pinned entry whose miss already completed must not serve
        // merges: its fill arrived long ago, only the slot leaked.
        if let Some(&(_, done)) = self.entries.iter().find(|&&(l, d)| l == line && d > now) {
            self.merges += 1;
            return MshrOutcome::Merged { complete_at: done };
        }
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            return MshrOutcome::Full;
        }
        if self.fault_lose_dealloc == Some(self.allocations) {
            self.pinned = Some((line, complete_at));
        }
        self.entries.push((line, complete_at));
        self.allocations += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        MshrOutcome::Allocated { complete_at }
    }

    /// Records a merge that was detected by the caller via
    /// [`MshrFile::in_flight`] rather than by [`MshrFile::request`].
    pub fn note_merge(&mut self) {
        self.merges += 1;
    }

    /// If `line` has a miss in flight at `now`, its completion cycle.
    pub fn in_flight(&self, line: u64, now: u64) -> Option<u64> {
        self.entries.iter().find(|&&(l, done)| l == line && done > now).map(|&(_, d)| d)
    }

    /// Entries currently occupied at cycle `now`.
    pub fn occupancy(&self, now: u64) -> usize {
        self.entries.iter().filter(|&&(_, done)| done > now).count()
    }

    /// Total new-entry allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total same-line merges.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total requests rejected because the file was full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Total entries released back to the free pool by expiry.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Entries still resident, counting completed-but-unreclaimed ones
    /// (reclamation is lazy; see [`MshrFile::expire`]). After
    /// [`MshrFile::drain`], any nonzero residue is a leak.
    pub fn live(&self) -> usize {
        self.entries.len()
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// The earliest cycle after `now` at which an in-flight miss fills,
    /// or `None` when nothing is outstanding — the MSHR file's wake event
    /// for the event-driven tick. A fill both delivers a value (waking
    /// merged requesters) and frees a slot (unblocking `Full` retries),
    /// so fast-forwarded windows never skip past one.
    pub fn next_fill_at(&self, now: u64) -> Option<u64> {
        self.entries.iter().map(|&(_, done)| done).filter(|&d| d > now).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_until_full() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.request(0, 0, 100), MshrOutcome::Allocated { complete_at: 100 });
        assert_eq!(m.request(64, 0, 100), MshrOutcome::Allocated { complete_at: 100 });
        assert_eq!(m.request(128, 0, 100), MshrOutcome::Full);
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    fn merges_same_line() {
        let mut m = MshrFile::new(2);
        m.request(0, 0, 100);
        assert_eq!(m.request(0, 5, 200), MshrOutcome::Merged { complete_at: 100 });
        assert_eq!(m.merges(), 1);
        assert_eq!(m.occupancy(5), 1);
    }

    #[test]
    fn expires_completed_entries() {
        let mut m = MshrFile::new(1);
        m.request(0, 0, 10);
        assert_eq!(m.request(64, 5, 100), MshrOutcome::Full);
        // At cycle 10 the first miss is done; the slot frees.
        assert_eq!(m.request(64, 10, 100), MshrOutcome::Allocated { complete_at: 100 });
        assert_eq!(m.occupancy(10), 1);
    }

    #[test]
    fn in_flight_reports_completion() {
        let mut m = MshrFile::new(4);
        m.request(0, 0, 42);
        assert_eq!(m.in_flight(0, 10), Some(42));
        assert_eq!(m.in_flight(0, 42), None);
        assert_eq!(m.in_flight(64, 10), None);
    }

    #[test]
    fn drain_balances_allocations_and_releases() {
        let mut m = MshrFile::new(4);
        m.request(0, 0, 10);
        m.request(64, 0, 20);
        m.request(128, 15, 30); // reclaims the first entry on the way in
        m.drain();
        assert_eq!(m.allocations(), 3);
        assert_eq!(m.releases(), 3);
        assert_eq!(m.live(), 0);
    }

    #[test]
    fn lost_dealloc_fault_leaks_one_entry() {
        let mut m = MshrFile::new(4);
        m.inject_lost_dealloc(1);
        assert_eq!(m.request(0, 0, 10), MshrOutcome::Allocated { complete_at: 10 });
        // The faulted allocation still reports its real completion cycle to
        // the requester; only the bookkeeping entry is pinned.
        assert_eq!(m.request(64, 0, 20), MshrOutcome::Allocated { complete_at: 20 });
        m.drain();
        assert_eq!(m.allocations(), 2);
        assert_eq!(m.releases(), 1);
        assert_eq!(m.live(), 1);
    }

    #[test]
    fn peak_occupancy_tracks_maximum() {
        let mut m = MshrFile::new(8);
        for i in 0..5u64 {
            m.request(i * 64, 0, 50);
        }
        m.expire(60);
        m.request(999 * 64, 60, 100);
        assert_eq!(m.peak_occupancy(), 5);
    }
}
