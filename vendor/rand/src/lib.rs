//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate implements exactly the subset of the `rand 0.8` API the
//! workspace uses: `rngs::StdRng`, `SeedableRng::{seed_from_u64, from_seed}`,
//! the `Rng` extension methods `gen`, `gen_range`, `gen_bool`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and statistically solid for workload
//! synthesis. It does **not** promise stream compatibility with the real
//! `rand` crate; all in-repo consumers only require determinism.

#![forbid(unsafe_code)]

/// Core RNG trait: a source of uniformly distributed `u64` values.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from an RNG (`rand::Rng::gen`).
pub trait Standard: Sized {
    fn sample(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly sampleable over a half-open range (`rand::distributions::
/// uniform::SampleUniform` equivalent).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)`; `lo < hi` already checked by the caller.
    fn sample_between(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
}

/// Uniform draw in `0..span` via rejection sampling (no modulo bias);
/// `span == 0` denotes the full `u64` domain.
fn uniform_below(span: u64, rng: &mut impl RngCore) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                (lo as $u).wrapping_add(uniform_below(span, rng) as $u) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 as u8,
    u16 as u16,
    u32 as u32,
    u64 as u64,
    usize as usize,
    i8 as u8,
    i16 as u16,
    i32 as u32,
    i64 as u64,
    isize as usize
);

impl SampleUniform for f64 {
    fn sample_between(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if end == <$t>::MAX {
                    if start == <$t>::MIN {
                        return <$t>::sample(rng);
                    }
                    // Shift down to keep the half-open span representable.
                    return <$t>::sample_between(start - 1, end, rng) + 1;
                }
                <$t>::sample_between(start, end + 1, rng)
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Mirror of `rand::seq::SliceRandom` for the methods the workspace uses.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i8 = rng.gen_range(-5i8..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
