//! Regenerates Table 1: peak and average power ratios of out-of-order to
//! multipass structures, with average activity measured from the Figure 6
//! runs.

use std::time::Instant;

use ff_bench::scale_from_env;
use ff_experiments::{table1_experiment, Suite};

fn main() {
    let scale = scale_from_env();
    let t0 = Instant::now();
    let mut suite = Suite::new(scale);
    let rows = table1_experiment(&mut suite);
    println!("=== Table 1: power ratios, out-of-order / multipass ({scale:?} scale) ===\n");
    println!("{}", ff_power::table1::render(&rows));
    println!("paper reference: register/data 0.99 peak / 1.20 avg;");
    println!("                 scheduling 10.28 peak / 7.15 avg;");
    println!("                 memory ordering 3.21 peak / 9.79 avg");
    println!("\nwall time: {:.1}s", t0.elapsed().as_secs_f64());
}
