//! End-to-end HTTP tests: a real `Server` on an ephemeral port, driven
//! through the same `ff_harness::remote` client the CLI uses, running
//! real simulations at test scale.

use std::time::{Duration, Instant};

use ff_experiments::{HierKind, ModelKind};
use ff_harness::campaign::{attempt_job, ExecOptions, JobContext, JobFilter};
use ff_harness::job::{JobKind, JobSpec};
use ff_harness::json::Json;
use ff_harness::remote::{
    campaign_status, fetch_artifact, http_get, http_request, submit_campaign, CampaignRequest,
    ServerUrl,
};
use ff_server::{Scheduler, SchedulerOptions, Server, CAMPAIGNS_DIR};
use ff_workloads::Scale;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ff-server-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn start(store: &std::path::Path) -> (Server, ServerUrl) {
    let opts = SchedulerOptions { workers: 2, ..SchedulerOptions::default() };
    let server = Server::start("127.0.0.1:0", store, opts).expect("server starts");
    let url = ServerUrl::parse(&server.addr().to_string()).expect("addr parses");
    (server, url)
}

fn tiny_request() -> CampaignRequest {
    CampaignRequest {
        scale: Scale::Test,
        filter: JobFilter {
            models: vec![ModelKind::InOrder],
            hiers: vec![HierKind::Base],
            benches: vec!["gzip".to_string(), "mcf".to_string()],
            seeds: vec![0],
        },
        reports: false,
    }
}

fn wait_done(url: &ServerUrl, id: &str) -> ff_harness::remote::CampaignStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = campaign_status(url, id).expect("status");
        if status.done {
            return status;
        }
        assert!(Instant::now() < deadline, "campaign {id} did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn counter(url: &ServerUrl, name: &str) -> u64 {
    let body = http_get(url, "/healthz").expect("healthz");
    let doc = Json::parse(&body).expect("healthz JSON");
    doc.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

#[test]
fn http_submission_memoizes_and_serves_byte_identical_artifacts() {
    let store = temp_dir("memo");
    let (server, url) = start(&store);

    let request = tiny_request();
    let (first, total) = submit_campaign(&url, &request).expect("submit");
    assert_eq!(total, 2);
    let status = wait_done(&url, &first);
    assert_eq!(status.counts.get("ok"), Some(&2), "counts: {:?}", status.counts);
    assert_eq!(counter(&url, "misses"), 2);

    // Every artifact the server serves must be byte-identical to what a
    // direct in-process run of the same job produces.
    let mut ctx = JobContext::new();
    let exec = ExecOptions::default();
    for job in &status.jobs {
        let served = fetch_artifact(&url, &job.hash).expect("fetch");
        let spec =
            request.expand().into_iter().find(|s| s.id() == job.id).expect("job spec in expansion");
        let direct = attempt_job(&mut ctx, &spec, &exec, None).result.expect("direct run");
        assert_eq!(served, direct, "artifact for {} must match a direct run", job.id);
    }

    // Resubmitting the identical request is a fresh campaign that costs
    // zero simulations: every job is a memo hit.
    let (second, _) = submit_campaign(&url, &request).expect("resubmit");
    assert_ne!(first, second);
    let status = wait_done(&url, &second);
    assert_eq!(status.counts.get("hit"), Some(&2), "counts: {:?}", status.counts);
    assert_eq!(counter(&url, "misses"), 2, "resubmission must not simulate");
    assert_eq!(counter(&url, "hits"), 2);

    server.shutdown();
}

#[test]
fn unknown_routes_and_bad_requests_report_json_errors() {
    let store = temp_dir("errors");
    let (server, url) = start(&store);

    let (code, body) = http_request(&url, "GET", "/nope", None).expect("request");
    assert_eq!(code, 404);
    assert!(body.contains("error"), "body: {body}");

    let (code, _) = http_request(&url, "GET", "/campaigns/c999", None).expect("request");
    assert_eq!(code, 404);

    let (code, _) = http_request(&url, "GET", "/jobs/not-hex", None).expect("request");
    assert_eq!(code, 400);

    let (code, _) =
        http_request(&url, "POST", "/campaigns", Some("{\"scale\": \"bogus\"}")).expect("request");
    assert_eq!(code, 400);

    let (code, _) = http_request(&url, "DELETE", "/campaigns", None).expect("request");
    assert_eq!(code, 405);

    server.shutdown();
}

#[test]
fn shutdown_checkpoints_and_a_restarted_server_resumes_from_the_store() {
    let store = temp_dir("restart");
    let (server, url) = start(&store);
    let request = tiny_request();
    let (id, _) = submit_campaign(&url, &request).expect("submit");
    wait_done(&url, &id);
    server.shutdown();

    let manifest = store.join(CAMPAIGNS_DIR).join(&id).join("manifest.json");
    assert!(manifest.exists(), "graceful shutdown must write a checkpoint manifest");

    // The restarted server resumes the checkpointed campaign under its
    // original id; the artifacts already published make every job a memo
    // hit, so the resume costs zero simulations.
    let (server, url) = start(&store);
    let status = wait_done(&url, &id);
    assert_eq!(status.counts.get("hit"), Some(&2), "counts: {:?}", status.counts);
    assert_eq!(counter(&url, "misses"), 0, "resume must not re-simulate");
    server.shutdown();
}

#[test]
fn the_server_memoizes_artifacts_published_by_a_direct_cli_style_run() {
    let store = temp_dir("cross");
    let request = tiny_request();

    // Simulate the jobs "by hand" into the store first — the equivalent
    // of a past `ff-campaign run --out <store>`.
    let direct = Scheduler::start(
        ff_harness::store::ShardedStore::open(&store).expect("store"),
        SchedulerOptions { workers: 2, ..SchedulerOptions::default() },
    );
    let (id, _) = direct.submit(&request).expect("submit");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !matches!(direct.status(&id).and_then(|s| s.get("done").cloned()), Some(Json::Bool(true)))
    {
        assert!(Instant::now() < deadline, "direct campaign did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }
    direct.shutdown();
    // Drop the campaign ledger so only the artifacts remain.
    std::fs::remove_dir_all(store.join(CAMPAIGNS_DIR)).expect("clear campaigns");

    let (server, url) = start(&store);
    let (id, _) = submit_campaign(&url, &request).expect("submit");
    let status = wait_done(&url, &id);
    assert_eq!(status.counts.get("hit"), Some(&2), "counts: {:?}", status.counts);
    assert_eq!(counter(&url, "misses"), 0, "existing artifacts must be reused");

    // And the served bytes are exactly the stored bytes.
    for job in &status.jobs {
        let spec: Vec<JobSpec> = request.expand();
        let spec = spec.into_iter().find(|s| s.id() == job.id).expect("spec");
        assert!(matches!(spec.kind, JobKind::Sim { .. }));
        let served = fetch_artifact(&url, &job.hash).expect("fetch");
        let stored = ff_harness::store::ShardedStore::open(&store)
            .expect("store")
            .read(&spec)
            .expect("stored artifact");
        assert_eq!(served, stored);
    }
    server.shutdown();
}
