//! §4.2's memory-consistency claim: "performance stalls are not
//! significantly impacted by the pipeline flushes caused by the maintenance
//! of semantic memory ordering since conflicts between the loads and stores
//! were rarely observed". This bench reports value-misspeculation flushes
//! per benchmark under multipass and the share of cycles they cost.

use ff_bench::scale_from_env;
use ff_engine::{ExecutionModel, MachineConfig, SimCase};
use ff_multipass::{Multipass, MultipassConfig};
use ff_workloads::Workload;

fn main() {
    let scale = scale_from_env();
    let machine = MachineConfig::itanium2_base();
    let flush_penalty = MultipassConfig::new(machine).flush_penalty;
    println!("=== §4.2: value-based memory-consistency flushes ({scale:?} scale) ===\n");
    println!(
        "{:<8} {:>10} {:>8} {:>14} {:>12}",
        "bench", "cycles", "flushes", "flush cycles", "% of cycles"
    );
    let mut total_flushes = 0u64;
    for w in Workload::all(scale) {
        let case = SimCase::new(&w.program, w.mem.clone());
        let r = Multipass::new(machine).run(&case);
        let flush_cycles = r.stats.value_flushes * flush_penalty;
        total_flushes += r.stats.value_flushes;
        println!(
            "{:<8} {:>10} {:>8} {:>14} {:>11.3}%",
            w.name,
            r.stats.cycles,
            r.stats.value_flushes,
            flush_cycles,
            100.0 * flush_cycles as f64 / r.stats.cycles as f64,
        );
    }
    println!(
        "\ntotal flushes across the suite: {total_flushes} (paper: conflicts \"rarely observed\")"
    );
}
