//! Text rendering of experiment results in the paper's layout.

use crate::figures::{Figure6, Figure6Row, Figure7, Figure8, RealisticOooResult, RunaheadResult};

/// Renders Figure 6 as per-benchmark stacked-bar rows (execution /
/// front-end / other / load), normalized to the baseline.
pub fn figure6(f: &Figure6) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<6} {:>7} {:>7} {:>7} {:>7} {:>8}\n",
        "bench", "model", "exec", "front", "other", "load", "total"
    ));
    for r in &f.rows {
        for (model, b) in [("base", &r.base), ("MP", &r.mp), ("OOO", &r.ooo)] {
            out.push_str(&format!(
                "{:<8} {:<6} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>8.3}\n",
                r.bench,
                model,
                b[0],
                b[1],
                b[2],
                b[3],
                Figure6Row::total(b)
            ));
        }
    }
    out.push_str(&format!("\nmean MP speedup over base: {:.2}x  (paper: 1.36x)\n", f.mp_speedup()));
    out.push_str(&format!("mean OOO speedup over MP:  {:.2}x  (paper: 1.14x)\n", f.ooo_over_mp()));
    out.push_str(&format!(
        "mean MP stall reduction:   {:.0}%  (paper: 49%)\n",
        100.0 * f.mp_stall_reduction()
    ));
    out.push_str(&format!(
        "mcf load-stall reduction:  {:.0}%  (paper: 56%)\n",
        100.0 * f.load_stall_reduction("mcf")
    ));
    out
}

/// Renders Figure 6 as ASCII stacked bars (execution `#`, front-end `%`,
/// other `o`, load `.`), 50 columns per normalized-baseline unit — a
/// terminal rendition of the paper's stacked-bar figure.
pub fn figure6_bars(f: &Figure6) -> String {
    const COLS: f64 = 50.0;
    let mut out = String::new();
    out.push_str("legend: # execution, % front-end, o other, . load (50 cols = baseline)\n\n");
    for r in &f.rows {
        for (model, b) in [("base", &r.base), ("MP", &r.mp), ("OOO", &r.ooo)] {
            let mut bar = String::new();
            for (ch, v) in [('#', b[0]), ('%', b[1]), ('o', b[2]), ('.', b[3])] {
                let n = (v * COLS).round() as usize;
                bar.extend(std::iter::repeat_n(ch, n));
            }
            out.push_str(&format!(
                "{:<8} {:<5}|{:<52}| {:.3}\n",
                if model == "base" { r.bench } else { "" },
                model,
                bar,
                Figure6Row::total(b)
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders Figure 7 speedups per hierarchy.
pub fn figure7(f: &Figure7) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<8}", "bench"));
    for c in &f.configs {
        out.push_str(&format!(" {:>9} {:>9}", format!("MP/{}", c.name), format!("OOO/{}", c.name)));
    }
    out.push('\n');
    let n = f.configs[0].rows.len();
    for i in 0..n {
        out.push_str(&format!("{:<8}", f.configs[0].rows[i].0));
        for c in &f.configs {
            out.push_str(&format!(" {:>9.2} {:>9.2}", c.rows[i].1, c.rows[i].2));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<8}", "mean"));
    for c in &f.configs {
        out.push_str(&format!(" {:>9.2} {:>9.2}", c.mean_mp(), c.mean_ooo()));
    }
    out.push('\n');
    out.push_str("OOO:MP gap per config (paper: narrows with restrictive hierarchies): ");
    for c in &f.configs {
        out.push_str(&format!("{}={:.3} ", c.name, c.gap()));
    }
    out.push('\n');
    out
}

/// Renders Figure 8 ablation percentages.
pub fn figure8(f: &Figure8) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>22} {:>22}\n",
        "bench", "% speedup w/o regroup", "% speedup w/o restart"
    ));
    for (bench, nr, ns) in &f.rows {
        out.push_str(&format!("{bench:<8} {nr:>22.0} {ns:>22.0}\n"));
    }
    out
}

/// Renders the §5.2 realistic-OOO comparison.
pub fn realistic_ooo(r: &RealisticOooResult) -> String {
    let mut out = String::new();
    out.push_str("MP speedup over realistic (3x16-entry) OOO (paper: 1.05x mean)\n");
    for (bench, s) in &r.rows {
        out.push_str(&format!("{bench:<8} {s:>6.2}x\n"));
    }
    out.push_str(&format!("{:<8} {:>6.2}x\n", "mean", r.mean()));
    out
}

/// Renders the §5.4 runahead comparison.
pub fn runahead(r: &RunaheadResult) -> String {
    let mut out = String::new();
    out.push_str("Cycle reduction vs in-order (paper: runahead ~half of multipass)\n");
    out.push_str(&format!("{:<8} {:>10} {:>10}\n", "bench", "runahead", "multipass"));
    for (bench, ra, mp) in &r.rows {
        out.push_str(&format!("{bench:<8} {:>9.1}% {:>9.1}%\n", 100.0 * ra, 100.0 * mp));
    }
    out.push_str(&format!(
        "runahead/multipass reduction ratio: {:.2} (paper: ~0.5)\n",
        r.reduction_ratio()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::suite::Suite;
    use ff_workloads::Scale;

    #[test]
    fn renderers_produce_tables() {
        let mut s = Suite::new(Scale::Test);
        let f6 = figures::figure6(&mut s);
        let t = figure6(&f6);
        assert!(t.contains("mcf"));
        assert!(t.contains("mean MP speedup"));
        let f8 = figures::figure8(&mut s);
        assert!(figure8(&f8).contains("restart"));
        let ra = figures::runahead_compare(&mut s);
        assert!(runahead(&ra).contains("ratio"));
    }

    #[test]
    fn ascii_bars_scale_with_totals() {
        let mut s = Suite::new(Scale::Test);
        let f6 = figures::figure6(&mut s);
        let bars = figure6_bars(&f6);
        assert!(bars.contains("legend"));
        // Every baseline bar is ~50 columns of glyphs.
        for line in bars.lines().filter(|l| l.contains("base |")) {
            let bar = line.split('|').nth(1).unwrap();
            let glyphs = bar.chars().filter(|c| !c.is_whitespace()).count();
            assert!((48..=52).contains(&glyphs), "bad baseline bar: {line}");
        }
    }
}
