//! Test execution: RNG, config, case errors, and the regression-file-aware
//! runner.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::strategy::Strategy;

/// Deterministic xoshiro256++ generator used for case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
        }
        TestRng { s }
    }

    pub fn from_seed_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended for xoshiro seeding.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut seed_bytes = [0u8; 32];
        for chunk in seed_bytes.chunks_exact_mut(8) {
            chunk.copy_from_slice(&next().to_le_bytes());
        }
        Self::from_seed_bytes(seed_bytes)
    }

    pub fn seed_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(8).zip(self.s.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `0..bound` (`bound == 0` means the full u64 domain).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % bound;
            }
        }
    }
}

/// Runner configuration. Only `cases` matters to this implementation; the
/// other fields exist so `..ProptestConfig::default()` updates compile.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of fresh cases to generate per test (after regressions).
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Maximum number of `prop_assume!` rejections tolerated.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 1024 }
    }
}

/// Failure of a single test case: a genuine assertion failure or a
/// `prop_assume!` rejection.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs one property test: replays persisted regression seeds, then
/// generates fresh cases; persists the seed of any new failure.
pub struct TestRunner {
    config: ProptestConfig,
    source_file: &'static str,
    test_name: String,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, source_file: &'static str, test_name: &str) -> Self {
        TestRunner { config, source_file, test_name: test_name.to_string() }
    }

    /// Path of the `.proptest-regressions` file next to the test source,
    /// tolerating the `file!()`-vs-CWD mismatch for workspace members by
    /// stripping leading path components until the parent directory exists.
    fn regression_path(&self) -> Option<PathBuf> {
        let base = Path::new(self.source_file).with_extension("proptest-regressions");
        let mut candidate = base.as_path();
        loop {
            if candidate.parent().is_some_and(Path::exists) {
                return Some(candidate.to_path_buf());
            }
            let mut comps = candidate.components();
            comps.next()?;
            let rest = comps.as_path();
            if rest.as_os_str().is_empty() {
                return None;
            }
            candidate = rest;
        }
    }

    fn load_regression_seeds(&self) -> Vec<[u8; 32]> {
        let Some(path) = self.regression_path() else { return Vec::new() };
        let Ok(text) = fs::read_to_string(&path) else { return Vec::new() };
        let mut seeds = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("cc ") else { continue };
            let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
            if hex.len() != 64 {
                continue;
            }
            let mut seed = [0u8; 32];
            for (i, byte) in seed.iter_mut().enumerate() {
                *byte = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).unwrap();
            }
            seeds.push(seed);
        }
        seeds
    }

    fn persist_failure(&self, seed: &[u8; 32], value_debug: &str) {
        let Some(path) = self.regression_path() else { return };
        let newly_created = !path.exists();
        let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(&path) else {
            return;
        };
        if newly_created {
            let _ = writeln!(
                f,
                "# Seeds for failure cases proptest has generated in the past. It is\n\
                 # automatically read and these particular cases re-run before any\n\
                 # novel cases are generated.\n\
                 #\n\
                 # It is recommended to check this file in to source control so that\n\
                 # everyone who runs the test benefits from these saved cases."
            );
        }
        let hex: String = seed.iter().map(|b| format!("{b:02x}")).collect();
        let one_line = value_debug.replace('\n', " ");
        let _ = writeln!(f, "cc {hex} # shrinks to {one_line}");
    }

    fn base_seed(&self) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(n) = s.parse::<u64>() {
                return n;
            }
        }
        // FNV-1a over file path and test name: stable across runs and
        // processes, distinct per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.source_file.bytes().chain([0u8]).chain(self.test_name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs the property. Returns `Err(message)` on the first failing case.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> TestCaseResult,
    ) -> Result<(), String> {
        // 1. Replay persisted regressions.
        for seed in self.load_regression_seeds() {
            let mut rng = TestRng::from_seed_bytes(seed);
            let value = strategy.new_value(&mut rng);
            let debug = format!("{value:?}");
            match test(value) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => {
                    let hex: String = seed.iter().map(|b| format!("{b:02x}")).collect();
                    return Err(format!(
                        "persisted regression case failed (seed cc {hex})\n{reason}\ninput: {debug}"
                    ));
                }
            }
        }

        // 2. Fresh cases.
        let base = self.base_seed();
        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut draw = 0u64;
        while case < self.config.cases {
            let case_seed = base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(draw + 1));
            draw += 1;
            let mut rng = TestRng::from_seed_u64(case_seed);
            let seed_bytes = rng.seed_bytes();
            let value = strategy.new_value(&mut rng);
            let debug = format!("{value:?}");
            match test(value) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        return Err(format!(
                            "too many prop_assume! rejections ({rejects}) in {}",
                            self.test_name
                        ));
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    self.persist_failure(&seed_bytes, &debug);
                    let hex: String = seed_bytes.iter().map(|b| format!("{b:02x}")).collect();
                    return Err(format!(
                        "test case failed after {case} passing case(s) (seed persisted as cc {hex})\n\
                         {reason}\ninput: {debug}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_bounds_and_deterministic() {
        let mut a = TestRng::from_seed_u64(1);
        let mut b = TestRng::from_seed_u64(1);
        for _ in 0..200 {
            let x = a.below(13);
            assert!(x < 13);
            assert_eq!(x, b.below(13));
        }
    }

    #[test]
    fn seed_bytes_round_trip() {
        let rng = TestRng::from_seed_u64(99);
        let bytes = rng.seed_bytes();
        let mut c = TestRng::from_seed_bytes(bytes);
        let mut d = TestRng::from_seed_u64(99);
        assert_eq!(c.next_u64(), d.next_u64());
    }
}
