//! A deterministic, panic-tolerant self-scheduling worker pool over
//! scoped threads.
//!
//! Workers pull the next job index from a shared atomic cursor, so the
//! *assignment* of jobs to workers is racy — but every job is independent
//! and results are scattered back by job index, so the returned vector is
//! identical for any worker count. That property (not lock-step
//! scheduling) is what the `--jobs 4` ≡ `--jobs 1` determinism test pins.
//!
//! A panic inside `run` is caught at the job boundary: the job's slot
//! comes back `None`, the worker moves on to the next job, and the other
//! workers never notice. One poisoned grid point cannot take down a
//! multi-hour campaign.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `run` over every job on `workers` threads, returning results in
/// job order regardless of which worker executed which job. A job whose
/// `run` panicked yields `None` in its slot; all other jobs still run and
/// return normally.
///
/// `init(worker_id)` builds one per-worker state value (e.g. a workload
/// cache) that is threaded through every job that worker executes. A
/// panic leaves that state in place — `run` must tolerate state touched
/// by a panicked predecessor (the campaign's workload cache is only ever
/// appended to, so this holds trivially).
pub fn run_jobs<J, S, R>(
    jobs: &[J],
    workers: usize,
    init: impl Fn(usize) -> S + Sync,
    run: impl Fn(&mut S, usize, &J) -> R + Sync,
) -> Vec<Option<R>>
where
    J: Sync,
    R: Send,
{
    let workers = workers.clamp(1, jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|wid| {
                let cursor = &cursor;
                let init = &init;
                let run = &run;
                scope.spawn(move || {
                    let mut state = init(wid);
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let r = catch_unwind(AssertUnwindSafe(|| run(&mut state, i, &jobs[i])));
                        out.push((i, r.ok()));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            // A worker that somehow died outside the per-job boundary
            // (e.g. a panicking `init`) forfeits its results; its jobs'
            // slots stay `None` rather than poisoning the whole pool.
            let Ok(pairs) = h.join() else { continue };
            for (i, r) in pairs {
                slots[i] = r;
            }
        }
    });
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..97).collect();
        let serial = run_jobs(&jobs, 1, |_| (), |_, _, j| j * j);
        for workers in [2, 3, 8] {
            let parallel = run_jobs(&jobs, workers, |_| (), |_, _, j| j * j);
            assert_eq!(parallel, serial, "workers={workers}");
        }
        assert_eq!(serial[10], Some(100));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let jobs: Vec<usize> = (0..50).collect();
        let hits = AtomicU64::new(0);
        let out = run_jobs(
            &jobs,
            4,
            |_| (),
            |_, i, j| {
                hits.fetch_add(1, Ordering::Relaxed);
                assert_eq!(i, *j);
                i
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), 50);
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(Option::is_some));
    }

    #[test]
    fn worker_state_persists_across_jobs() {
        // Each worker counts the jobs it ran; counts must total the job count.
        let jobs: Vec<usize> = (0..40).collect();
        let counts: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        run_jobs(
            &jobs,
            3,
            |wid| wid,
            |wid, _, _| {
                counts[*wid].fetch_add(1, Ordering::Relaxed);
            },
        );
        let total: usize = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        // Quiet the default panic-backtrace printer for the expected panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let jobs: Vec<u64> = (0..20).collect();
        let out = run_jobs(
            &jobs,
            3,
            |_| (),
            |_, _, j| {
                assert!(j % 7 != 3, "poisoned job {j}");
                j * 2
            },
        );
        std::panic::set_hook(prev);
        for (i, slot) in out.iter().enumerate() {
            if i % 7 == 3 {
                assert_eq!(*slot, None, "job {i} should have panicked");
            } else {
                assert_eq!(*slot, Some(i as u64 * 2), "job {i} should have survived");
            }
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<Option<u32>> = run_jobs(&[] as &[u32], 8, |_| (), |_, _, j| *j);
        assert!(out.is_empty());
    }
}
