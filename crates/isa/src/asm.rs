//! A small text assembler for the EPIC ISA.
//!
//! The syntax is exactly the [`crate::Program`] `Display` output, so
//! disassembly and assembly round-trip:
//!
//! ```text
//! B0:
//!     movimm r1 = #4096
//!     movimm r2 = #100 ;;
//! B1:
//!     load r4 = r1 @0
//!     (p2) add r3 = r3 r4
//!     addimm r2 = r2 #-1 ;;
//!     cmpne p1 = r2 r0
//!     (p1) br B1 ;;
//! B2:
//!     halt ;;
//! ```
//!
//! * `BN:` starts basic block `N` (blocks must appear in ascending order,
//!   starting from 0);
//! * `(pN)` is the qualifying predicate;
//! * `dst =` names the destination register;
//! * `#imm` is the immediate; `@N` the alias region; `;;` the stop bit;
//! * `//` and `;` (single) comments run to end of line.
//!
//! # Example
//!
//! ```
//! use ff_isa::asm::parse_program;
//! let p = parse_program("B0:\n  movimm r1 = #7\n  halt ;;\n").unwrap();
//! assert_eq!(p.num_insts(), 2);
//! // Round trip.
//! let again = parse_program(&p.to_string()).unwrap();
//! assert_eq!(p, again);
//! ```

use std::fmt;

use crate::inst::Inst;
use crate::op::Op;
use crate::program::{BlockId, Program};
use crate::reg::Reg;

/// Error produced when assembling fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError { line, message: message.into() }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseAsmError> {
    let (class, idx) = tok.split_at(1);
    let index: u8 = idx.parse().map_err(|_| err(line, format!("bad register index in `{tok}`")))?;
    match class {
        "r" if (index as usize) < crate::reg::NUM_INT_REGS => Ok(Reg::int(index)),
        "f" if (index as usize) < crate::reg::NUM_FP_REGS => Ok(Reg::fp(index)),
        "p" if (index as usize) < crate::reg::NUM_PRED_REGS => Ok(Reg::pred(index)),
        _ => Err(err(line, format!("unknown register `{tok}`"))),
    }
}

fn parse_op(tok: &str, target: Option<&str>, line: usize) -> Result<Op, ParseAsmError> {
    Ok(match tok {
        "add" => Op::Add,
        "sub" => Op::Sub,
        "and" => Op::And,
        "or" => Op::Or,
        "xor" => Op::Xor,
        "shl" => Op::Shl,
        "shr" => Op::Shr,
        "addimm" => Op::AddImm,
        "movimm" => Op::MovImm,
        "cmpeq" => Op::CmpEq,
        "cmplt" => Op::CmpLt,
        "cmpne" => Op::CmpNe,
        "mul" => Op::Mul,
        "div" => Op::Div,
        "fadd" => Op::FAdd,
        "fmul" => Op::FMul,
        "fdiv" => Op::FDiv,
        "fcvt" => Op::FCvt,
        "load" => Op::Load,
        "loadfp" => Op::LoadFp,
        "store" => Op::Store,
        "halt" => Op::Halt,
        "restart" => Op::Restart,
        "nop" => Op::Nop,
        "br" => {
            let t = target.ok_or_else(|| err(line, "`br` needs a target like `B3`"))?;
            let n: u32 = t
                .strip_prefix('B')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(line, format!("bad branch target `{t}`")))?;
            Op::Br { target: BlockId(n) }
        }
        other => return Err(err(line, format!("unknown opcode `{other}`"))),
    })
}

/// Assembles a program from its textual form.
///
/// # Errors
///
/// Returns a [`ParseAsmError`] naming the offending line for unknown
/// opcodes or registers, malformed block headers, out-of-order blocks, or
/// instructions outside any block.
pub fn parse_program(text: &str) -> Result<Program, ParseAsmError> {
    let mut program = Program::new();
    let mut current: Option<BlockId> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments: `//` always; `;` only when not part of `;;`.
        let mut code = raw;
        if let Some(i) = code.find("//") {
            code = &code[..i];
        }
        let code = code.trim();
        if code.is_empty() {
            continue;
        }

        // Block header?
        if let Some(rest) = code.strip_prefix('B') {
            if let Some(numpart) = rest.strip_suffix(':') {
                let n: u32 =
                    numpart.parse().map_err(|_| err(line, format!("bad block header `{code}`")))?;
                if n as usize != program.num_blocks() {
                    return Err(err(
                        line,
                        format!("block B{n} out of order (expected B{})", program.num_blocks()),
                    ));
                }
                current = Some(program.add_block());
                continue;
            }
        }

        let block = current.ok_or_else(|| err(line, "instruction before any block header"))?;

        // Tokenize.
        let mut toks: Vec<&str> = code.split_whitespace().collect();
        let mut inst_stop = false;
        if toks.last() == Some(&";;") {
            inst_stop = true;
            toks.pop();
        }
        let mut i = 0;
        // Qualifying predicate.
        let mut qp: Option<Reg> = None;
        if let Some(t) = toks.first() {
            if let Some(p) = t.strip_prefix('(').and_then(|x| x.strip_suffix(')')) {
                qp = Some(parse_reg(p, line)?);
                i += 1;
            }
        }
        let op_tok = *toks.get(i).ok_or_else(|| err(line, "missing opcode"))?;
        i += 1;
        let br_target = if op_tok == "br" {
            let t = *toks.get(i).ok_or_else(|| err(line, "missing branch target"))?;
            i += 1;
            Some(t)
        } else {
            None
        };
        let op = parse_op(op_tok, br_target, line)?;
        let mut inst = Inst::new(op);
        if let Some(q) = qp {
            inst = inst.qp(q);
        }

        // Destination: `reg =`.
        if toks.get(i + 1) == Some(&"=") {
            inst = inst.dst(parse_reg(toks[i], line)?);
            i += 2;
        }
        // Sources / immediate / region.
        while i < toks.len() {
            let t = toks[i];
            if let Some(immtok) = t.strip_prefix('#') {
                let v: i64 =
                    immtok.parse().map_err(|_| err(line, format!("bad immediate `{t}`")))?;
                inst = inst.imm(v);
            } else if let Some(rtok) = t.strip_prefix('@') {
                let v: u16 =
                    rtok.parse().map_err(|_| err(line, format!("bad alias region `{t}`")))?;
                inst = inst.region(v);
            } else {
                inst = inst.src(parse_reg(t, line)?);
            }
            i += 1;
        }
        if inst_stop {
            inst = inst.stop();
        }
        program.push(block, inst);
    }
    Ok(program)
}

impl std::str::FromStr for Program {
    type Err = ParseAsmError;

    /// Parses the textual assembly form (see [`parse_program`]).
    ///
    /// ```
    /// use ff_isa::Program;
    /// let p: Program = "B0:\n  nop\n  halt ;;\n".parse().unwrap();
    /// assert_eq!(p.num_insts(), 2);
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_program(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;

    const LOOP_ASM: &str = "
B0:
    movimm r1 = #4096
    movimm r2 = #10 ;;
B1:
    load r4 = r1 @0
    add r3 = r3 r4
    addimm r1 = r1 #8
    addimm r2 = r2 #-1 ;;
    cmpne p1 = r2 r0 ;;
    (p1) br B1 ;;
B2:
    halt ;;
";

    #[test]
    fn parses_and_runs_a_loop() {
        let p = parse_program(LOOP_ASM).expect("valid asm");
        assert!(p.validate().is_ok());
        let mut st = crate::ArchState::new();
        for i in 0..10u64 {
            st.mem.store(4096 + i * 8, i + 1);
        }
        let mut interp = Interpreter::with_state(&p, st);
        interp.run(10_000).unwrap();
        assert_eq!(interp.state().int(3), 55);
    }

    #[test]
    fn round_trips_display_output() {
        let p = parse_program(LOOP_ASM).unwrap();
        let text = p.to_string();
        let again = parse_program(&text).expect("disassembly reassembles");
        assert_eq!(p, again);
    }

    #[test]
    fn parses_every_opcode() {
        let all = "
B0:
    add r1 = r2 r3
    sub r1 = r2 r3
    and r1 = r2 r3
    or r1 = r2 r3
    xor r1 = r2 r3
    shl r1 = r2 #3
    shr r1 = r2 #3
    addimm r1 = r2 #-5
    movimm r1 = #9
    cmpeq p1 = r1 r2
    cmplt p1 = r1 r2
    cmpne p1 = r1 r2
    mul r1 = r2 r3
    div r1 = r2 r3
    fadd f1 = f2 f3
    fmul f1 = f2 f3
    fdiv f1 = f2 f3
    fcvt r1 = f2
    load r1 = r2 #8 @1
    loadfp f1 = r2
    store r1 r2 #16 @1
    restart r1
    nop
    br B1
B1:
    halt ;;
";
        let p = parse_program(all).expect("all opcodes parse");
        assert_eq!(p.num_insts(), 25);
        let again = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = parse_program("// header\nB0:\n\n  nop // trailing\n  halt ;;\n").unwrap();
        assert_eq!(p.num_insts(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("B0:\n  frobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        let e = parse_program("  nop\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_program("B1:\n").unwrap_err();
        assert!(e.message.contains("out of order"));
        let e = parse_program("B0:\n  add r1 = r200 r2\n").unwrap_err();
        assert!(e.message.contains("r200"));
        let e = parse_program("B0:\n  br Bx\n").unwrap_err();
        assert!(e.message.contains("Bx"));
    }

    #[test]
    fn predication_and_stop_round_trip() {
        let p = parse_program("B0:\n  (p3) add r1 = r2 r3 ;;\n  halt ;;\n").unwrap();
        let b = p.block(BlockId(0)).unwrap();
        assert!(b[0].is_predicated());
        assert!(b[0].ends_group());
        assert_eq!(parse_program(&p.to_string()).unwrap(), p);
    }
}
