//! Crash-safety chaos suite: seeded I/O faults against real campaign
//! runs, proving the store heals to byte-identical artifacts without
//! re-simulating intact entries.
//!
//! Each scenario follows the same shape: run a campaign with (or after)
//! an injected fault, `fsck`/re-run, and assert (a) the final artifact
//! bytes equal a fault-free control run's bytes and (b) the report's
//! `cached` count proves every intact artifact was reused, never
//! re-simulated.
//!
//! The chaos policy slot is process-global, so scenarios that *install* a
//! policy serialize on [`CHAOS`]; manual-damage scenarios (truncation,
//! bit flips applied with plain `std::fs`) need no policy and run freely.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use ff_experiments::{HierKind, ModelKind};
use ff_harness::chaos::{self, Fault, FsOp, NthOp};
use ff_harness::integrity;
use ff_harness::json::Json;
use ff_harness::store::{sharded_path, ShardedStore};
use ff_harness::{run_campaign, CampaignOptions, CampaignReport, JobSpec};
use ff_workloads::Scale;

/// Serializes the tests that install a global chaos policy.
static CHAOS: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-chaos-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn jobs(benches: &[&'static str]) -> Vec<JobSpec> {
    benches
        .iter()
        .map(|bench| JobSpec::sim(ModelKind::InOrder, HierKind::Base, bench, 0, Scale::Test))
        .collect()
}

fn run(dir: &Path, jobs: &[JobSpec]) -> CampaignReport {
    let mut opts = CampaignOptions::new(Scale::Test, dir);
    opts.workers = 1; // deterministic job order => deterministic fault site
    opts.progress = false;
    run_campaign(jobs, &opts).unwrap()
}

/// Every artifact in the store, keyed by file name (sealed bytes,
/// checksum footer included).
fn artifact_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut dirs = vec![dir.to_path_buf()];
    while let Some(d) = dirs.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.map(|e| e.unwrap()) {
            let name = e.file_name().to_string_lossy().into_owned();
            if e.path().is_dir() {
                if name.len() == 2 && name.chars().all(|c| c.is_ascii_hexdigit()) {
                    dirs.push(e.path());
                }
            } else if name.starts_with("sim-") && name.ends_with(".json") {
                out.insert(name, std::fs::read(e.path()).unwrap());
            }
        }
    }
    out
}

fn tmp_files(dir: &Path) -> usize {
    let mut n = 0;
    let mut dirs = vec![dir.to_path_buf()];
    while let Some(d) = dirs.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.map(|e| e.unwrap()) {
            if e.path().is_dir() {
                dirs.push(e.path());
            } else if e.file_name().to_string_lossy().starts_with(".tmp-") {
                n += 1;
            }
        }
    }
    n
}

/// Kill-during-write: the second artifact's temp-file write dies midway.
/// The job fails, the final name never appears (rename never ran), and
/// the re-run reuses both intact artifacts while re-simulating only the
/// victim — converging on the control run's exact bytes.
#[test]
fn kill_during_write_recovers_to_byte_identical_artifacts() {
    let control_dir = temp_dir("torn-control");
    let plan = jobs(&["gzip", "mcf", "art"]);
    let control = run(&control_dir, &plan);
    assert_eq!(control.ok(), 3);
    let want = artifact_bytes(&control_dir);

    let dir = temp_dir("torn");
    {
        let _serial = CHAOS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _guard = chaos::install(Arc::new(NthOp::new(
            FsOp::Write,
            Fault::TornWrite { keep_pct: 40 },
            dir.to_string_lossy().into_owned(),
            2,
        )));
        let wounded = run(&dir, &plan);
        assert_eq!(wounded.ok(), 2, "two jobs land before/after the kill");
        assert_eq!(wounded.failed(), 1);
        let err = wounded.failures()[0].error.as_ref().unwrap().to_string();
        assert!(err.contains("torn write"), "{err}");
    }
    // The kill happened on the temp file: no torn *artifact* exists, and
    // the partial temp file is still lying around.
    assert_eq!(artifact_bytes(&dir).len(), 2);
    assert_eq!(tmp_files(&dir), 1, "the killed writer leaves its partial temp file");

    let healed = run(&dir, &plan);
    assert_eq!(healed.cached(), 2, "intact artifacts must not re-simulate");
    assert_eq!(healed.ok(), 1, "only the victim re-simulates");
    assert_eq!(tmp_files(&dir), 0, "the orphaned temp file is swept before the run");
    assert_eq!(artifact_bytes(&dir), want, "recovery must converge on the control bytes");

    std::fs::remove_dir_all(&control_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Disk-full during publish: the job fails cleanly; once space "returns"
/// (the policy is gone) the next run completes and matches the control.
#[test]
fn disk_full_fails_the_job_and_the_next_run_heals() {
    let plan = jobs(&["twolf", "gap"]);
    let control_dir = temp_dir("full-control");
    run(&control_dir, &plan);
    let want = artifact_bytes(&control_dir);

    let dir = temp_dir("full");
    {
        let _serial = CHAOS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _guard = chaos::install(Arc::new(NthOp::new(
            FsOp::Write,
            Fault::DiskFull,
            dir.to_string_lossy().into_owned(),
            1,
        )));
        let wounded = run(&dir, &plan);
        assert_eq!(wounded.failed(), 1);
        let err = wounded.failures()[0].error.as_ref().unwrap().to_string();
        assert!(err.contains("no space left"), "{err}");
    }
    let healed = run(&dir, &plan);
    assert_eq!((healed.cached(), healed.ok()), (1, 1));
    assert_eq!(artifact_bytes(&dir), want);

    std::fs::remove_dir_all(&control_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Silent post-publish corruption — a truncated tail on one artifact, a
/// flipped bit on another. `fsck` quarantines exactly the damaged two
/// into `corrupt/` (with ledger lines), and the re-run re-simulates only
/// them, converging on the original bytes.
#[test]
fn truncation_and_bit_flips_are_quarantined_and_resimulated() {
    let dir = temp_dir("silent");
    let plan = jobs(&["gzip", "mcf", "art"]);
    let first = run(&dir, &plan);
    assert_eq!(first.ok(), 3);
    let want = artifact_bytes(&dir);

    // Damage two of the three, with plain fs calls (the store must catch
    // corruption however it arrives, not only via its own wrappers).
    let truncated = sharded_path(&dir, &plan[0]);
    let bytes = std::fs::read(&truncated).unwrap();
    std::fs::write(&truncated, &bytes[..bytes.len() * 3 / 5]).unwrap();
    let flipped = sharded_path(&dir, &plan[1]);
    let mut bytes = std::fs::read(&flipped).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&flipped, &bytes).unwrap();

    let report = integrity::fsck(&dir).unwrap();
    assert_eq!(report.ok, 1, "fsck: {}", report.summary());
    assert_eq!(report.corrupt.len(), 2, "fsck: {}", report.summary());
    assert!(!report.clean());
    // Quarantined out of the store, preserved for forensics, ledgered.
    assert!(!truncated.exists());
    assert!(!flipped.exists());
    let corrupt_dir = dir.join(integrity::CORRUPT_DIR);
    assert_eq!(std::fs::read_dir(&corrupt_dir).unwrap().count(), 3, "2 files + ledger");
    let ledger = std::fs::read_to_string(corrupt_dir.join(integrity::LEDGER_NAME)).unwrap();
    assert_eq!(ledger.lines().count(), 2);
    for line in ledger.lines() {
        let entry = Json::parse(line).expect("ledger lines are JSON");
        assert!(entry.get("reason").is_some(), "{line}");
    }

    let healed = run(&dir, &plan);
    assert_eq!(healed.cached(), 1, "the intact artifact must not re-simulate");
    assert_eq!(healed.ok(), 2);
    assert_eq!(artifact_bytes(&dir), want);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Even *without* an explicit fsck, a damaged artifact reads as a memo
/// miss on the next run (self-healing resume) — and through the
/// [`ShardedStore`] it reads as absent rather than ever serving partial
/// content.
#[test]
fn a_damaged_artifact_is_a_memo_miss_not_a_served_partial() {
    let dir = temp_dir("self-heal");
    let plan = jobs(&["mesa"]);
    run(&dir, &plan);
    let want = artifact_bytes(&dir);

    let victim = sharded_path(&dir, &plan[0]);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 3]).unwrap();

    {
        let store = ShardedStore::open(&dir).unwrap();
        assert!(store.read(&plan[0]).is_none(), "a torn artifact must never be served");
        assert!(!store.contains(&plan[0]), "corrupt == memo miss");
        assert_eq!(store.counters().corrupt_detected.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    // No fsck step: the campaign's own resume path re-simulates.
    let healed = run(&dir, &plan);
    assert_eq!((healed.cached(), healed.ok()), (0, 1));
    assert_eq!(artifact_bytes(&dir), want);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Property test over torn-write/truncation points: for a seeded sample
/// of cut positions (plus the boundary-adjacent ones), a store holding
/// only the prefix either reports the artifact absent or returns the
/// complete original payload — never a partial document.
#[test]
fn no_truncation_point_ever_serves_a_partial_artifact() {
    let dir = temp_dir("prop-src");
    let plan = jobs(&["vpr"]);
    run(&dir, &plan);
    let spec = &plan[0];
    let sealed = std::fs::read(sharded_path(&dir, spec)).unwrap();
    let full_payload = ShardedStore::open(&dir).unwrap().read(spec).expect("intact read");
    let full_doc = Json::parse(&full_payload).expect("payload parses");
    std::fs::remove_dir_all(&dir).unwrap();

    // Seeded sample of interior cut points + every cut within 64 bytes of
    // the end (the footer boundary, where acceptance decisions happen).
    let mut cuts: Vec<usize> = (sealed.len().saturating_sub(64)..sealed.len()).collect();
    let mut x: u64 = 0x1ea_f11c4;
    for _ in 0..100 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        cuts.push((x % sealed.len() as u64) as usize);
    }

    let probe_dir = temp_dir("prop-probe");
    let path = sharded_path(&probe_dir, spec);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    for cut in cuts {
        std::fs::write(&path, &sealed[..cut]).unwrap();
        let store = ShardedStore::open(&probe_dir).unwrap();
        match store.read(spec) {
            // Detected: the prefix was quarantined; put the next one back.
            None => {}
            // Accepted: must be the *complete* document (a cut may only
            // strip the footer and trailing whitespace, never content).
            Some(payload) => {
                let doc = Json::parse(&payload)
                    .unwrap_or_else(|e| panic!("cut at {cut} served unparsable payload: {e}"));
                assert_eq!(doc, full_doc, "cut at {cut} served a different document");
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(probe_dir.join(integrity::CORRUPT_DIR));
    }
    std::fs::remove_dir_all(&probe_dir).unwrap();
}

/// A seeded chaos storm over repeated resumes: with torn writes, disk
/// fulls, and fsync failures all firing, repeatedly resuming the campaign
/// eventually completes every job, and the surviving store is
/// byte-identical to a calm run. (Silent rename corruption is exercised
/// separately above; here every fault is crash-like.)
#[test]
fn repeated_resumes_under_a_seeded_fault_storm_converge() {
    let plan = jobs(&["gzip", "mcf"]);
    let control_dir = temp_dir("storm-control");
    run(&control_dir, &plan);
    let want = artifact_bytes(&control_dir);

    let dir = temp_dir("storm");
    {
        let _serial = CHAOS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut policy = chaos::SeededChaos::new(0xbad_5eed);
        policy.torn_every = 3;
        policy.diskfull_every = 5;
        policy.fsync_every = 4;
        let _guard = chaos::install(Arc::new(policy.scoped(dir.to_string_lossy().into_owned())));
        let mut done = false;
        for _resume in 0..20 {
            let report = run(&dir, &plan);
            if report.failed() == 0 {
                done = true;
                break;
            }
        }
        assert!(done, "20 resumes under a 1-in-3 fault storm must converge");
    }
    assert_eq!(artifact_bytes(&dir), want);
    let final_run = run(&dir, &plan);
    assert_eq!(final_run.cached(), 2);

    std::fs::remove_dir_all(&control_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
