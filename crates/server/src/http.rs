//! A hand-rolled HTTP/1.1 server layer over `std::net`.
//!
//! The build environment is offline (no hyper, no tokio), and the
//! campaign service needs exactly four routes with small JSON bodies, so
//! this implements the minimal subset the `ff-harness` client speaks:
//! `Content-Length` bodies, `Connection: close` per request, a fixed
//! accept-thread + worker-thread model. No keep-alive, no chunked
//! encoding, no TLS — additions the protocol does not need.
//!
//! What it *does* harden against, because a long-running service meets
//! them in practice:
//!
//! * **oversized bodies** — rejected with `413 Payload Too Large` before
//!   the body is read, so a hostile `Content-Length` cannot balloon
//!   memory;
//! * **overload** — accepted connections queue on a *bounded* channel;
//!   when the queue is full the accept thread sheds the connection with
//!   `503 Service Unavailable` plus a `Retry-After` header instead of
//!   letting the backlog grow without bound (the `ff_harness::remote`
//!   client honors the header and retries idempotent requests);
//! * **observability** — every request, shed, and error class ticks a
//!   [`TransportCounters`] field, surfaced on `GET /healthz`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ff_harness::json::Json;

/// Per-connection read/write timeout: a stalled client must never wedge
/// an HTTP worker for good.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Largest accepted request body (a full-grid campaign request is < 2 KiB;
/// anything near this bound is hostile or corrupt).
pub const MAX_BODY: usize = 1 << 20;

/// Default bound on the accept queue: connections beyond
/// `queue_cap + workers` in flight are shed with 503.
const DEFAULT_QUEUE_CAP: usize = 64;

/// The `Retry-After` seconds advertised when shedding load. Campaign
/// submissions are seconds-long operations, so 1 s is enough for the
/// queue to drain without making well-behaved clients laggy.
const SHED_RETRY_AFTER_S: u64 = 1;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Decoded body (empty when absent).
    pub body: String,
}

/// A response: status code, JSON body text, and an optional
/// `Retry-After` hint for 503s.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body text (already-rendered JSON).
    pub body: String,
    /// Seconds to advertise in a `Retry-After` header, when present.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A 200 response with `body`.
    pub fn ok(body: String) -> Response {
        Response { status: 200, body, retry_after: None }
    }

    /// A response with `status` and `body` (no `Retry-After`).
    pub fn with_status(status: u16, body: String) -> Response {
        Response { status, body, retry_after: None }
    }

    /// An error response with a `{"error": msg}` body.
    pub fn error(status: u16, msg: &str) -> Response {
        let body = Json::obj(vec![("error", Json::Str(msg.to_string()))]).render();
        Response { status, body, retry_after: None }
    }

    /// A `503 Service Unavailable` carrying a `Retry-After: seconds`
    /// header, which the retrying client honors as a backoff floor.
    pub fn unavailable(msg: &str, retry_after_s: u64) -> Response {
        Response { retry_after: Some(retry_after_s), ..Response::error(503, msg) }
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Request/error counters for the transport layer, surfaced on
/// `GET /healthz` under `"transport"`.
#[derive(Debug, Default)]
pub struct TransportCounters {
    /// Connections dequeued by a worker (parsed or not).
    pub requests: AtomicU64,
    /// Responses written with a 4xx status (including 413s).
    pub http_4xx: AtomicU64,
    /// Responses written with a 5xx status (excluding sheds).
    pub http_5xx: AtomicU64,
    /// Connections shed by the accept thread with 503 (queue full).
    pub shed: AtomicU64,
    /// Requests rejected with 413 for an oversized body.
    pub oversized: AtomicU64,
}

impl TransportCounters {
    /// The counters as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::U64(self.requests.load(Ordering::Relaxed))),
            ("http_4xx", Json::U64(self.http_4xx.load(Ordering::Relaxed))),
            ("http_5xx", Json::U64(self.http_5xx.load(Ordering::Relaxed))),
            ("shed", Json::U64(self.shed.load(Ordering::Relaxed))),
            ("oversized", Json::U64(self.oversized.load(Ordering::Relaxed))),
        ])
    }

    fn record_status(&self, status: u16) {
        match status {
            400..=499 => self.http_4xx.fetch_add(1, Ordering::Relaxed),
            500..=599 => self.http_5xx.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    }
}

/// Why [`read_request`] rejected a connection; decides the error status.
#[derive(Debug)]
pub enum RequestError {
    /// `Content-Length` exceeded [`MAX_BODY`] → `413`.
    TooLarge(String),
    /// Anything else malformed → `400`.
    Malformed(String),
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// [`RequestError::TooLarge`] when the declared body exceeds
/// [`MAX_BODY`] (answered with 413 before reading the body), and
/// [`RequestError::Malformed`] on a bad request line, bad header, or IO
/// failure (answered with 400).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let bad = |msg: String| RequestError::Malformed(msg);
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(|e| bad(e.to_string()))?;
    stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(|e| bad(e.to_string()))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| bad(e.to_string()))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line".into()))?.to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| bad("request line missing target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| bad(e.to_string()))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| bad("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(RequestError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| bad(e.to_string()))?;
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body".into()))?;
    Ok(Request { method, path, body })
}

/// Writes `response` to `stream` (best effort: a vanished client is not
/// an error worth propagating).
pub fn write_response(stream: &mut TcpStream, response: &Response) {
    let retry_after =
        response.retry_after.map_or(String::new(), |seconds| format!("Retry-After: {seconds}\r\n"));
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.body.len(),
        retry_after,
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

/// Tuning knobs for [`HttpServer::start_with`].
#[derive(Clone, Debug)]
pub struct HttpOptions {
    /// HTTP worker threads.
    pub threads: usize,
    /// Accepted connections that may queue before load-shedding kicks in.
    pub queue_cap: usize,
}

impl Default for HttpOptions {
    fn default() -> Self {
        HttpOptions { threads: 4, queue_cap: DEFAULT_QUEUE_CAP }
    }
}

/// The accept thread plus a fixed pool of HTTP worker threads. Accepted
/// connections queue on a *bounded* channel; each worker reads one
/// request, calls the handler, writes the response, and closes. When the
/// queue is full, the accept thread itself answers `503` with
/// `Retry-After` rather than queueing without bound.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread plus `threads` HTTP workers dispatching to `handler`,
    /// with the default queue bound and throwaway counters.
    ///
    /// # Errors
    ///
    /// On failure to bind.
    pub fn start<H>(addr: &str, threads: usize, handler: H) -> std::io::Result<HttpServer>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let opts = HttpOptions { threads, ..HttpOptions::default() };
        Self::start_with(addr, opts, Arc::new(TransportCounters::default()), handler)
    }

    /// [`HttpServer::start`] with explicit queue bounds and shared
    /// transport counters (the production entry point — `ff-server`
    /// surfaces the counters on `/healthz`).
    ///
    /// # Errors
    ///
    /// On failure to bind.
    pub fn start_with<H>(
        addr: &str,
        opts: HttpOptions,
        counters: Arc<TransportCounters>,
        handler: H,
    ) -> std::io::Result<HttpServer>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(opts.queue_cap.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..opts.threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || loop {
                    // Holding the receiver lock only while dequeuing keeps
                    // workers independent once they own a connection.
                    let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    let Ok(mut stream) = next else { return };
                    counters.requests.fetch_add(1, Ordering::Relaxed);
                    let response = match read_request(&mut stream) {
                        Ok(request) => handler(&request),
                        Err(RequestError::TooLarge(msg)) => {
                            counters.oversized.fetch_add(1, Ordering::Relaxed);
                            Response::error(413, &msg)
                        }
                        Err(RequestError::Malformed(msg)) => Response::error(400, &msg),
                    };
                    counters.record_status(response.status);
                    write_response(&mut stream, &response);
                })
            })
            .collect();
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(mut stream)) => {
                        // Shed from the accept thread: writing the small
                        // 503 is cheap, and blocking here would stall all
                        // accepts behind one slow backlog.
                        accept_counters.shed.fetch_add(1, Ordering::Relaxed);
                        write_response(
                            &mut stream,
                            &Response::unavailable(
                                "server is at capacity; retry shortly",
                                SHED_RETRY_AFTER_S,
                            ),
                        );
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => break,
                }
            }
            // Dropping `tx` lets every idle worker's recv() fail and exit.
        });
        Ok(HttpServer { addr: local, stop, accept: Some(accept), workers })
    }

    /// The bound address (reports the real port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins every thread.
    /// In-flight requests complete; queued connections are dropped.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a throwaway connection to
        // ourselves unblocks it so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
