//! Property tests for the in-flight state containers (DESIGN.md §7e).
//!
//! Two invariants carry the slab migration's correctness argument:
//!
//! * a [`SlotId`] that outlives its value must *never* alias a reused
//!   slot — the generation check has to catch every stale handle, under
//!   any interleaving of inserts and frees;
//! * [`InFlightIndex`] must be observationally identical to the
//!   `BTreeMap<u64, T>` it replaced — same values, same ascending
//!   iteration and squash-walk order — under any interleaving of
//!   inserts, head retirements, and squashes, including span overflows
//!   that force the ring to grow.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ff_engine::{InFlightIndex, Slab, SlotId};

proptest! {
    /// Every handle freed (directly or by removing another path to the
    /// same slot) goes permanently stale: `get`/`get_mut`/`remove` all
    /// refuse it, even after the slot is reused by later inserts.
    #[test]
    fn slab_stale_handles_never_alias_reuse(
        ops in proptest::collection::vec((0u8..3, any::<u64>()), 1..200),
    ) {
        let mut slab: Slab<u64> = Slab::with_capacity(4);
        let mut live: Vec<(SlotId, u64)> = Vec::new();
        let mut stale: Vec<SlotId> = Vec::new();
        for &(op, payload) in &ops {
            match op {
                // Insert: the fresh handle reads back its own value.
                0 => {
                    let id = slab.insert(payload);
                    prop_assert_eq!(slab.get(id), Some(&payload));
                    live.push((id, payload));
                }
                // Remove a random live handle; it joins the stale set.
                1 if !live.is_empty() => {
                    let (id, v) = live.swap_remove(payload as usize % live.len());
                    prop_assert_eq!(slab.remove(id), Some(v));
                    stale.push(id);
                }
                // Probe a random stale handle: every access must refuse.
                _ if !stale.is_empty() => {
                    let id = stale[payload as usize % stale.len()];
                    prop_assert_eq!(slab.get(id), None, "stale get leaked");
                    prop_assert_eq!(slab.get_mut(id), None, "stale get_mut leaked");
                    prop_assert_eq!(slab.remove(id), None, "stale remove (double free)");
                }
                _ => {}
            }
            prop_assert_eq!(slab.len(), live.len());
            // All live handles still read their values (no aliasing).
            for &(id, v) in &live {
                prop_assert_eq!(slab.get(id), Some(&v));
            }
        }
    }

    /// The ring is a drop-in `BTreeMap` replacement: after any mix of
    /// monotonic inserts, head retirements, and squashes, both the live
    /// contents and every ascending walk (iteration, squash callbacks)
    /// match the reference map exactly — even when the live span overruns
    /// the configured ring and forces growth.
    #[test]
    fn index_behaves_like_btreemap_under_random_ops(
        ops in proptest::collection::vec((0u8..4, any::<u64>()), 1..300),
    ) {
        let mut index: InFlightIndex<u64> = InFlightIndex::with_span(8);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut seq = 0u64;
        for &(op, payload) in &ops {
            match op {
                // Allocate the next seq (twice as likely as the others,
                // mirroring a pipeline that mostly fetches).
                0 | 1 => {
                    *index.get_or_default(seq) += payload;
                    *model.entry(seq).or_default() += payload;
                    seq += 1;
                }
                // Retire the oldest live entry (the multipass DEQ path).
                2 => {
                    if let Some((&oldest, _)) = model.iter().next() {
                        prop_assert_eq!(index.remove(oldest), model.remove(&oldest));
                    }
                }
                // Squash from a random point at or above the floor: the
                // callback order must be the BTreeMap range walk.
                _ => {
                    let floor = index.floor();
                    let from = floor + payload % (seq - floor + 1);
                    let mut squashed = Vec::new();
                    index.squash_from(from, |s, v| squashed.push((s, v)));
                    let keys: Vec<u64> = model.range(from..).map(|(&s, _)| s).collect();
                    let expect: Vec<(u64, u64)> =
                        keys.iter().map(|k| (*k, model.remove(k).unwrap())).collect();
                    prop_assert_eq!(squashed, expect, "squash walk diverges");
                    seq = from.max(floor);
                }
            }
            let mut got = Vec::new();
            index.for_each(|s, v| got.push((s, *v)));
            let expect: Vec<(u64, u64)> = model.iter().map(|(&s, &v)| (s, v)).collect();
            prop_assert_eq!(got, expect, "iteration diverges");
            prop_assert_eq!(index.len(), model.len());
        }
    }

    /// Retiring every seq from the floor in ascending order (the only
    /// discipline the multipass core uses) keeps a span-sized ring
    /// allocation-free forever, whatever the interleaving of inserts.
    #[test]
    fn index_sized_to_span_stays_allocation_free(
        gaps in proptest::collection::vec(0u64..4, 1..100),
    ) {
        let mut index: InFlightIndex<u64> = InFlightIndex::with_span(16);
        let start = index.alloc_events();
        let mut seq = 0u64;
        let mut floor = 0u64;
        for &g in &gaps {
            for _ in 0..=g {
                *index.get_or_default(seq) = seq;
                seq += 1;
                // Retire to keep the live span within the ring.
                while seq - floor >= 16 {
                    prop_assert_eq!(index.remove(floor), Some(floor));
                    floor += 1;
                }
            }
        }
        prop_assert_eq!(index.alloc_events(), start, "steady state must not allocate");
    }
}
