//! Property tests for the advance store cache: within one pass, the ASC
//! must either forward exactly what a perfect store map would, or admit
//! information loss (miss-after-replacement) — it may never forward a
//! *wrong* value silently.

use std::collections::HashMap;

use proptest::prelude::*;

use ff_multipass::asc::{AscData, AscLookup};
use ff_multipass::AdvanceStoreCache;

#[derive(Clone, Debug)]
enum AscOp {
    Store { addr: u64, value: u64 },
    Load { addr: u64 },
}

fn arb_op() -> impl Strategy<Value = AscOp> {
    prop_oneof![
        (0u64..0x800, any::<u64>())
            .prop_map(|(addr, value)| AscOp::Store { addr: addr * 8, value }),
        (0u64..0x800).prop_map(|addr| AscOp::Load { addr: addr * 8 }),
    ]
}

proptest! {
    /// ASC forwarding is sound versus a perfect store map.
    #[test]
    fn asc_never_forwards_a_wrong_value(
        ops in proptest::collection::vec(arb_op(), 1..300),
    ) {
        let mut asc = AdvanceStoreCache::new(64, 2);
        let mut perfect: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            match op {
                AscOp::Store { addr, value } => {
                    asc.insert(*addr, AscData::Valid { value: *value, tainted: false, seq: 0 });
                    perfect.insert(*addr, *value);
                }
                AscOp::Load { addr } => match asc.lookup(*addr) {
                    AscLookup::Hit(AscData::Valid { value, .. }) => {
                        // A hit must match the perfect store map exactly.
                        prop_assert_eq!(Some(&value), perfect.get(addr));
                    }
                    AscLookup::Hit(AscData::Invalid) => {
                        // Only possible if an Invalid was inserted — never
                        // in this workload.
                        prop_assert!(false, "unexpected invalid entry");
                    }
                    AscLookup::Miss => {
                        // A clean miss means no store to this word survived
                        // AND the set never lost information, so the word
                        // must be absent from the perfect map too.
                        prop_assert!(
                            !perfect.contains_key(addr),
                            "silent miss hides a forwardable store"
                        );
                    }
                    AscLookup::MissAfterReplacement => {
                        // Information loss is allowed — the pipeline marks
                        // the load data-speculative and verifies later.
                    }
                },
            }
        }
    }

    /// Clearing the ASC erases every entry and every replacement flag.
    #[test]
    fn clear_is_complete(
        stores in proptest::collection::vec(0u64..0x800, 1..200),
    ) {
        let mut asc = AdvanceStoreCache::new(64, 2);
        for &a in &stores {
            asc.insert(a * 8, AscData::Valid { value: a, tainted: false, seq: 0 });
        }
        asc.clear();
        for &a in &stores {
            prop_assert_eq!(asc.lookup(a * 8), AscLookup::Miss);
        }
    }
}
