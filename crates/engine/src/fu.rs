//! Runtime functional-unit arbitration.

use ff_isa::{FuClass, Inst};

use crate::config::MachineConfig;

/// Per-cycle functional-unit slot allocator with persistent busy tracking
/// for unpipelined units (dividers occupy their F port for their full
/// latency).
///
/// Call [`FuPool::new_cycle`] at the start of every simulated cycle, then
/// [`FuPool::try_issue`] for each candidate instruction in issue order.
#[derive(Clone, Debug)]
pub struct FuPool {
    mem_ports: u32,
    int_ports: u32,
    branch_ports: u32,
    width: u32,
    // Remaining slots this cycle.
    mem_free: u32,
    int_free: u32,
    fp_free: u32,
    branch_free: u32,
    width_free: u32,
    /// Busy-until cycle per FP unit (for unpipelined divides).
    fp_busy_until: Vec<u64>,
}

impl FuPool {
    /// Creates a pool from the machine configuration.
    pub fn new(config: &MachineConfig) -> Self {
        FuPool {
            mem_ports: config.mem_ports,
            int_ports: config.int_ports,
            branch_ports: config.branch_ports,
            width: config.issue_width,
            mem_free: 0,
            int_free: 0,
            fp_free: 0,
            branch_free: 0,
            width_free: 0,
            fp_busy_until: vec![0; config.fp_ports as usize],
        }
    }

    /// Resets the per-cycle slot budgets for cycle `now`. FP ports occupied
    /// by an unpipelined op remain unavailable.
    pub fn new_cycle(&mut self, now: u64) {
        self.mem_free = self.mem_ports;
        self.int_free = self.int_ports;
        self.branch_free = self.branch_ports;
        self.width_free = self.width;
        self.fp_free = self.fp_busy_until.iter().filter(|&&b| b <= now).count() as u32;
    }

    /// Attempts to reserve a slot for `inst` issuing at cycle `now`.
    /// Returns whether the reservation succeeded. Unpipelined ops mark one
    /// FP unit busy until `now + latency`.
    pub fn try_issue(&mut self, inst: &Inst, now: u64) -> bool {
        if self.width_free == 0 {
            return false;
        }
        let ok = match inst.op().fu_class() {
            FuClass::Mem => take(&mut self.mem_free),
            FuClass::Branch => take(&mut self.branch_free),
            FuClass::Int => {
                if inst.op().is_a_type() {
                    take(&mut self.int_free) || take(&mut self.mem_free)
                } else {
                    take(&mut self.int_free)
                }
            }
            FuClass::Fp => {
                if take(&mut self.fp_free) {
                    if inst.op().is_unpipelined() {
                        // Occupy the first free FP unit for the op's latency.
                        if let Some(b) = self.fp_busy_until.iter_mut().find(|b| **b <= now) {
                            *b = now + inst.op().latency() as u64;
                        }
                    }
                    true
                } else {
                    false
                }
            }
        };
        if ok {
            self.width_free -= 1;
        }
        ok
    }

    /// Whether `inst` could reserve a slot at the *start* of cycle `now`,
    /// before any issue has consumed a budget. Non-mutating; used by the
    /// event-driven tick to prove a head-of-queue instruction is blocked
    /// purely on an occupied unpipelined FP unit.
    pub fn can_issue_fresh(&self, inst: &Inst, now: u64) -> bool {
        if self.width == 0 {
            return false;
        }
        match inst.op().fu_class() {
            FuClass::Mem => self.mem_ports > 0,
            FuClass::Branch => self.branch_ports > 0,
            FuClass::Int => self.int_ports > 0 || (inst.op().is_a_type() && self.mem_ports > 0),
            FuClass::Fp => self.fp_busy_until.iter().any(|&b| b <= now),
        }
    }

    /// The earliest cycle after `now` at which an occupied unpipelined FP
    /// unit frees, or `u64::MAX` when none is in flight — a wake point for
    /// the event-driven tick.
    pub fn next_fp_release(&self, now: u64) -> u64 {
        self.fp_busy_until.iter().copied().filter(|&b| b > now).min().unwrap_or(u64::MAX)
    }
}

fn take(slot: &mut u32) -> bool {
    if *slot > 0 {
        *slot -= 1;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::{Op, Reg};

    fn pool() -> FuPool {
        FuPool::new(&MachineConfig::default())
    }

    #[test]
    fn width_limits_total_issue() {
        let mut p = pool();
        p.new_cycle(0);
        let add = Inst::new(Op::AddImm).dst(Reg::int(1)).src(Reg::int(0)).imm(1);
        let mut issued = 0;
        while p.try_issue(&add, 0) {
            issued += 1;
        }
        assert_eq!(issued, 6);
    }

    #[test]
    fn mem_ports_limit_loads() {
        let mut p = pool();
        p.new_cycle(0);
        let ld = Inst::new(Op::Load).dst(Reg::int(1)).src(Reg::int(2));
        let mut issued = 0;
        while p.try_issue(&ld, 0) {
            issued += 1;
        }
        assert_eq!(issued, 4);
    }

    #[test]
    fn unpipelined_div_blocks_fp_unit_across_cycles() {
        let mut p = pool();
        let div = Inst::new(Op::Div).dst(Reg::int(1)).src(Reg::int(2)).src(Reg::int(3));
        let fadd = Inst::new(Op::FAdd).dst(Reg::fp(1)).src(Reg::fp(2)).src(Reg::fp(3));
        p.new_cycle(0);
        assert!(p.try_issue(&div, 0));
        assert!(p.try_issue(&div, 0)); // second FP unit
        assert!(!p.try_issue(&fadd, 0)); // both busy this cycle
        p.new_cycle(5);
        assert!(!p.try_issue(&fadd, 5), "divs hold units for 20 cycles");
        p.new_cycle(20);
        assert!(p.try_issue(&fadd, 20));
    }

    #[test]
    fn pipelined_fp_frees_next_cycle() {
        let mut p = pool();
        let fmul = Inst::new(Op::FMul).dst(Reg::fp(1)).src(Reg::fp(2)).src(Reg::fp(3));
        p.new_cycle(0);
        assert!(p.try_issue(&fmul, 0));
        assert!(p.try_issue(&fmul, 0));
        p.new_cycle(1);
        assert!(p.try_issue(&fmul, 1), "pipelined units accept per cycle");
    }

    #[test]
    fn new_cycle_resets_budgets() {
        let mut p = pool();
        p.new_cycle(0);
        let br = Inst::new(Op::Halt);
        assert!(p.try_issue(&br, 0));
        assert!(p.try_issue(&br, 0));
        assert!(p.try_issue(&br, 0));
        assert!(!p.try_issue(&br, 0));
        p.new_cycle(1);
        assert!(p.try_issue(&br, 1));
    }
}
