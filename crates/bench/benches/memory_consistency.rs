//! §4.2's memory-consistency claim: "performance stalls are not
//! significantly impacted by the pipeline flushes caused by the maintenance
//! of semantic memory ordering since conflicts between the loads and stores
//! were rarely observed". This bench reports value-misspeculation flushes
//! per benchmark under multipass and the share of cycles they cost. The
//! report itself lives in `ff_experiments::reports` so `ff-campaign` can
//! regenerate it too.

use ff_bench::scale_from_env;
use ff_experiments::Suite;

fn main() {
    let scale = scale_from_env();
    let mut suite = Suite::new(scale);
    print!("{}", ff_experiments::reports::memory_consistency(&mut suite, scale));
}
