//! Route dispatch: maps the HTTP surface onto the [`Scheduler`].
//!
//! | Route                 | Meaning                                        |
//! |-----------------------|------------------------------------------------|
//! | `POST /campaigns`     | Submit a campaign request; returns `{id, total}` |
//! | `GET /campaigns/{id}` | Campaign status document                       |
//! | `GET /jobs/{hash}`    | The artifact for a 16-hex config hash          |
//! | `GET /healthz`        | Liveness plus memoization counters             |
//! | `POST /shutdown`      | Ask the server to checkpoint and exit          |
//!
//! Every body is JSON; errors are `{"error": "..."}` with a 4xx/5xx
//! status, which `ff_harness::remote` surfaces to the client verbatim.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ff_harness::json::Json;
use ff_harness::remote::CampaignRequest;

use crate::http::{Request, Response};
use crate::scheduler::Scheduler;

/// Shared service state: the scheduler plus the shutdown latch the
/// binary's main loop polls.
pub struct Service {
    scheduler: Arc<Scheduler>,
    wants_shutdown: AtomicBool,
}

impl Service {
    /// Wraps `scheduler` for route dispatch.
    pub fn new(scheduler: Arc<Scheduler>) -> Service {
        Service { scheduler, wants_shutdown: AtomicBool::new(false) }
    }

    /// The scheduler behind this service.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Whether a `POST /shutdown` has been received.
    pub fn wants_shutdown(&self) -> bool {
        self.wants_shutdown.load(Ordering::SeqCst)
    }

    /// Dispatches one request.
    pub fn handle(&self, request: &Request) -> Response {
        let path = request.path.trim_end_matches('/');
        match (request.method.as_str(), path) {
            ("POST", "/campaigns") => self.submit(&request.body),
            ("GET", "/healthz") => Response::ok(self.scheduler.health().render()),
            ("POST", "/shutdown") => {
                self.wants_shutdown.store(true, Ordering::SeqCst);
                Response::ok(Json::obj(vec![("status", Json::Str("stopping".into()))]).render())
            }
            ("GET", _) if path.starts_with("/campaigns/") => {
                self.campaign(&path["/campaigns/".len()..])
            }
            ("GET", _) if path.starts_with("/jobs/") => self.job(&path["/jobs/".len()..]),
            ("GET" | "POST", _) => Response::error(404, "no such route"),
            _ => Response::error(405, "method not allowed"),
        }
    }

    fn submit(&self, body: &str) -> Response {
        let doc = match Json::parse(body) {
            Ok(doc) => doc,
            Err(e) => return Response::error(400, &format!("bad JSON body: {e}")),
        };
        let request = match CampaignRequest::from_json(&doc) {
            Ok(request) => request,
            Err(e) => return Response::error(400, &e),
        };
        match self.scheduler.submit(&request) {
            Ok((id, total)) => Response {
                status: 201,
                body: Json::obj(vec![("id", Json::Str(id)), ("total", Json::U64(total as u64))])
                    .render(),
            },
            Err(e) => Response::error(503, &e),
        }
    }

    fn campaign(&self, id: &str) -> Response {
        match self.scheduler.status(id) {
            Some(doc) => Response::ok(doc.render()),
            None => Response::error(404, &format!("unknown campaign `{id}`")),
        }
    }

    fn job(&self, hash_text: &str) -> Response {
        let Ok(hash) = u64::from_str_radix(hash_text, 16) else {
            return Response::error(400, &format!("`{hash_text}` is not a hex config hash"));
        };
        match self.scheduler.store().read_by_hash(hash) {
            // The artifact is itself a JSON document; serve it verbatim so
            // fetched bytes match the store's bytes exactly.
            Some(text) => Response::ok(text),
            None => Response::error(404, &format!("no artifact for config hash {hash_text}")),
        }
    }
}
