//! Text reports beyond the paper's numbered figures: structure ablations,
//! the loop-unrolling study, the §4.2 memory-consistency claim, and the
//! seed-sensitivity sweep.
//!
//! Each report renders to a `String` so it can be produced identically by
//! the `ff-bench` targets (serial, printed to stdout) and by `ff-campaign`
//! (parallel, checkpointed under `results/campaign/`).

use std::fmt::Write as _;

use ff_baselines::{InOrder, OutOfOrder};
use ff_engine::{ExecutionModel, MachineConfig, SimCase};
use ff_isa::{Inst, MemoryImage, Op, Program, Reg};
use ff_multipass::{Multipass, MultipassConfig};
use ff_workloads::{Scale, Workload};

use crate::suite::{HierKind, ModelKind, ResultSource};

/// The diverse four-benchmark subset the structure ablations sweep.
pub const ABLATION_BENCHES: [&str; 4] = ["mcf", "gap", "art", "twolf"];

fn mean_speedup(machine: MachineConfig, mp_cfg: MultipassConfig, ws: &[Workload]) -> f64 {
    let mut total = 0.0;
    for w in ws {
        let case = SimCase::new(&w.program, w.mem.clone());
        let base = InOrder::new(machine).run(&case).stats.cycles as f64;
        let mp = Multipass::with_config(mp_cfg).run(&case).stats.cycles as f64;
        total += base / mp;
    }
    total / ws.len() as f64
}

/// Design-choice ablations for the multipass structures, beyond the
/// paper's Figure 8: instruction-queue capacity, advance-store-cache
/// geometry, MSHR count (memory-level-parallelism ceiling), the restart
/// mechanism of footnote 1, and the §3.5 WAW policy.
pub fn ablation_structures(scale: Scale) -> String {
    let ws: Vec<Workload> = ABLATION_BENCHES
        .iter()
        .map(|n| Workload::by_name(n, scale).expect("known benchmark"))
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Multipass structure ablations ({scale:?} scale; mcf/gap/art/twolf) ===\n"
    );

    let _ = writeln!(out, "instruction-queue capacity sweep:");
    for iq in [24usize, 64, 128, 256, 512] {
        let mut machine = MachineConfig::itanium2_base();
        machine.multipass_iq = iq;
        let cfg = MultipassConfig::new(machine);
        let _ = writeln!(
            out,
            "  IQ {iq:>4} entries: mean MP speedup {:.3}x",
            mean_speedup(machine, cfg, &ws)
        );
    }

    let _ = writeln!(out, "\nadvance-store-cache sweep:");
    let machine = MachineConfig::itanium2_base();
    for (entries, assoc) in [(16usize, 2usize), (64, 1), (64, 2), (64, 4), (256, 2)] {
        let mut cfg = MultipassConfig::new(machine);
        cfg.asc_entries = entries;
        cfg.asc_assoc = assoc;
        let _ = writeln!(
            out,
            "  ASC {entries:>3} entries / {assoc}-way: mean MP speedup {:.3}x",
            mean_speedup(machine, cfg, &ws)
        );
    }

    let _ = writeln!(out, "\noutstanding-miss (MSHR) sweep:");
    for mshrs in [4u32, 8, 16, 32] {
        let mut machine = MachineConfig::itanium2_base();
        machine.hierarchy.max_outstanding = mshrs;
        let cfg = MultipassConfig::new(machine);
        let _ = writeln!(
            out,
            "  {mshrs:>2} MSHRs: mean MP speedup {:.3}x",
            mean_speedup(machine, cfg, &ws)
        );
    }

    let _ = writeln!(out, "\nrestart mechanism:");
    let machine = MachineConfig::itanium2_base();
    let compiler = MultipassConfig::new(machine);
    let _ =
        writeln!(out, "  compiler RESTART markers : {:.3}x", mean_speedup(machine, compiler, &ws));
    for threshold in [4u32, 8, 16] {
        let hw = MultipassConfig::with_hardware_restart(machine, threshold);
        let _ = writeln!(
            out,
            "  hardware detector (run {threshold:>2}): {:.3}x",
            mean_speedup(machine, hw, &ws)
        );
    }
    let none = MultipassConfig::without_restart(machine);
    let _ = writeln!(out, "  no restart               : {:.3}x", mean_speedup(machine, none, &ws));

    let _ = writeln!(out, "\nWAW policy for advance loads that miss the L1:");
    let paper = MultipassConfig::new(machine);
    let _ = writeln!(out, "  skip SRF (paper, simple) : {:.3}x", mean_speedup(machine, paper, &ws));
    let ideal = MultipassConfig::with_ideal_waw(machine);
    let _ = writeln!(out, "  write SRF (idealized)    : {:.3}x", mean_speedup(machine, ideal, &ws));
    out
}

/// An L1-resident compute loop (wrapped 4 KB window): one load feeding a
/// short dependent chain, pointer bump with wrap — the canonical body whose
/// intra-iteration serial chain leaves an un-unrolled in-order pipe
/// issue-starved while ideal OOO overlaps iterations freely.
fn gather_loop(trips: i64) -> (Program, MemoryImage) {
    const WINDOW_WORDS: u64 = 512; // 4 KB: L1-resident after the first lap
    let mut p = Program::new();
    let b0 = p.add_block();
    let b1 = p.add_block();
    let b2 = p.add_block();
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(1)).imm(0x10_0000));
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(8)).imm(0x10_0000)); // base
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(9)).imm(((WINDOW_WORDS - 1) * 8) as i64));
    p.push(b0, Inst::new(Op::MovImm).dst(Reg::int(2)).imm(trips));
    p.push(b1, Inst::new(Op::Load).dst(Reg::int(4)).src(Reg::int(1)).region(0));
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(3)).src(Reg::int(3)).src(Reg::int(4)));
    p.push(b1, Inst::new(Op::Shl).dst(Reg::int(5)).src(Reg::int(4)).imm(1));
    p.push(b1, Inst::new(Op::Xor).dst(Reg::int(6)).src(Reg::int(5)).src(Reg::int(4)));
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(7)).src(Reg::int(7)).src(Reg::int(6)));
    // Wrapped pointer bump: r1 = base + ((r1 + 8) & mask).
    p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(10)).src(Reg::int(1)).imm(8));
    p.push(b1, Inst::new(Op::And).dst(Reg::int(10)).src(Reg::int(10)).src(Reg::int(9)));
    p.push(b1, Inst::new(Op::Add).dst(Reg::int(1)).src(Reg::int(8)).src(Reg::int(10)));
    p.push(b1, Inst::new(Op::AddImm).dst(Reg::int(2)).src(Reg::int(2)).imm(-1));
    p.push(b1, Inst::new(Op::CmpNe).dst(Reg::pred(1)).src(Reg::int(2)).src(Reg::int(0)));
    p.push(b1, Inst::new(Op::Br { target: b1 }).qp(Reg::pred(1)));
    p.push(b2, Inst::new(Op::Halt));
    let mut mem = MemoryImage::new();
    for i in 0..WINDOW_WORDS {
        mem.store(0x10_0000 + i * 8, i * 37 + 1);
    }
    (p, mem)
}

/// Quantifies the static cross-iteration ILP that compiler loop unrolling
/// buys the in-order pipelines — the effect (together with modulo
/// scheduling) that lets the paper's OpenIMPACT baseline sit much closer
/// to ideal out-of-order execution than naive code does. See
/// EXPERIMENTS.md, deviation 1.
pub fn unroll_effect() -> String {
    let (raw, mem) = gather_loop(20_000);
    let machine = MachineConfig::itanium2_base();
    let mut out = String::new();
    let _ = writeln!(out, "=== Compiler loop unrolling vs the ideal-OOO gap ===\n");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>10} {:>12}",
        "unroll", "inorder", "MP", "OOO", "inorder/OOO"
    );
    let mut golden_mem: Option<ff_isa::MemoryImage> = None;
    for factor in [None, Some(2u32), Some(4), Some(6)] {
        let options = ff_compiler::CompilerOptions {
            unroll: factor,
            ..ff_compiler::CompilerOptions::default()
        };
        let program = ff_compiler::compile(&raw, &options);
        assert!(ff_compiler::verify_schedule(&program).is_ok());
        let case = SimCase::new(&program, mem.clone());
        let base = InOrder::new(machine).run(&case);
        let mp = Multipass::new(machine).run(&case);
        let ooo = OutOfOrder::new(machine).run(&case);
        // Memory semantics must be identical across factors.
        match &golden_mem {
            None => golden_mem = Some(base.final_state.mem.clone()),
            Some(g) => assert!(base.final_state.mem.semantically_eq(g)),
        }
        assert!(mp.final_state.semantically_eq(&base.final_state));
        assert!(ooo.final_state.semantically_eq(&base.final_state));
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>10} {:>11.2}x",
            factor.map_or("none".to_string(), |f| format!("x{f}")),
            base.stats.cycles,
            mp.stats.cycles,
            ooo.stats.cycles,
            base.stats.cycles as f64 / ooo.stats.cycles as f64,
        );
    }
    let _ = writeln!(out, "\nUnrolling shrinks the in-order pipes' execution cycles toward the");
    let _ = writeln!(out, "dataflow limit, narrowing the gap ideal OOO holds over them — the");
    let _ = writeln!(out, "effect the paper's modulo-scheduled binaries enjoyed by default.");
    out
}

/// §4.2's memory-consistency claim: "performance stalls are not
/// significantly impacted by the pipeline flushes caused by the maintenance
/// of semantic memory ordering since conflicts between the loads and stores
/// were rarely observed". Reports value-misspeculation flushes per
/// benchmark under multipass and the share of cycles they cost.
pub fn memory_consistency<S: ResultSource + ?Sized>(src: &mut S, scale: Scale) -> String {
    let machine = MachineConfig::itanium2_base();
    let flush_penalty = MultipassConfig::new(machine).flush_penalty;
    let mut out = String::new();
    let _ =
        writeln!(out, "=== §4.2: value-based memory-consistency flushes ({scale:?} scale) ===\n");
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>8} {:>14} {:>12}",
        "bench", "cycles", "flushes", "flush cycles", "% of cycles"
    );
    let mut total_flushes = 0u64;
    for bench in src.benchmarks() {
        let r = src.result(ModelKind::Multipass, HierKind::Base, bench).clone();
        let flush_cycles = r.stats.value_flushes * flush_penalty;
        total_flushes += r.stats.value_flushes;
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>8} {:>14} {:>11.3}%",
            bench,
            r.stats.cycles,
            r.stats.value_flushes,
            flush_cycles,
            100.0 * flush_cycles as f64 / r.stats.cycles as f64,
        );
    }
    let _ = writeln!(
        out,
        "\ntotal flushes across the suite: {total_flushes} (paper: conflicts \"rarely observed\")"
    );
    out
}

/// Seed-sensitivity study: the headline result (multipass mean speedup
/// over in-order) must not be an artifact of one workload-generator seed.
///
/// `cycles(model, bench, seed)` supplies base-hierarchy cycle counts —
/// from live simulation in the bench target, or from campaign artifacts in
/// `ff-campaign`. Only `ModelKind::InOrder` and `ModelKind::Multipass`
/// are queried.
pub fn seed_sensitivity<F>(scale: Scale, seeds: &[u64], mut cycles: F) -> String
where
    F: FnMut(ModelKind, &'static str, u64) -> u64,
{
    let mut out = String::new();
    let _ = writeln!(out, "=== Seed sensitivity of the Figure 6 headline ({scale:?} scale) ===\n");
    let mut means = Vec::new();
    for &seed in seeds {
        let mut total = 0.0;
        let mut n = 0.0;
        for name in Workload::NAMES {
            let base = cycles(ModelKind::InOrder, name, seed) as f64;
            let mp = cycles(ModelKind::Multipass, name, seed) as f64;
            total += base / mp;
            n += 1.0;
        }
        let mean = total / n;
        let _ = writeln!(out, "seed {seed}: mean MP speedup {mean:.3}x");
        means.push(mean);
    }
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = means.iter().cloned().fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "\nspread across seeds: {lo:.3}x .. {hi:.3}x ({:.1}% relative)",
        100.0 * (hi - lo) / lo
    );
    out
}

/// Simulates one seeded grid point on the base hierarchy — the live
/// backend for [`seed_sensitivity`].
pub fn seeded_cycles(model: ModelKind, bench: &str, scale: Scale, seed: u64) -> u64 {
    let w = Workload::by_name_seeded(bench, scale, seed).expect("known benchmark");
    crate::suite::Suite::execute(model, HierKind::Base, &w).stats.cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Suite;

    #[test]
    fn memory_consistency_reports_all_benchmarks() {
        let mut s = Suite::new(Scale::Test);
        let r = memory_consistency(&mut s, Scale::Test);
        for b in Workload::NAMES {
            assert!(r.contains(b), "missing {b} in report");
        }
        assert!(r.contains("total flushes"));
    }

    #[test]
    fn seed_sensitivity_renders_from_a_closure() {
        // Synthetic cycle counts: MP is 2x faster everywhere.
        let r = seed_sensitivity(Scale::Test, &[0, 1], |m, _, _| match m {
            ModelKind::InOrder => 200,
            _ => 100,
        });
        assert!(r.contains("seed 0: mean MP speedup 2.000x"), "{r}");
        assert!(r.contains("seed 1"));
        assert!(r.contains("spread across seeds: 2.000x .. 2.000x"));
    }

    #[test]
    fn unroll_gather_loop_is_valid() {
        let (p, _) = gather_loop(10);
        assert!(p.validate().is_ok());
    }
}
