//! Regenerates the §5.2 comparison against a realistic out-of-order design
//! with decentralized 16-entry scheduling queues (paper: multipass is
//! 1.05x faster on average).

use std::time::Instant;

use ff_bench::scale_from_env;
use ff_experiments::{realistic_ooo, render, Suite};

fn main() {
    let scale = scale_from_env();
    let t0 = Instant::now();
    let mut suite = Suite::new(scale);
    let r = realistic_ooo(&mut suite);
    println!("=== §5.2: multipass vs realistic out-of-order ({scale:?} scale) ===\n");
    println!("{}", render::realistic_ooo(&r));
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
