//! Regenerates Figure 8: the share of the full multipass speedup retained
//! without issue regrouping and without advance restart.

use std::time::Instant;

use ff_bench::scale_from_env;
use ff_experiments::{figure8, render, Suite};

fn main() {
    let scale = scale_from_env();
    let t0 = Instant::now();
    let mut suite = Suite::new(scale);
    let f = figure8(&mut suite);
    println!("=== Figure 8: regrouping / advance-restart ablation ({scale:?} scale) ===\n");
    println!("{}", render::figure8(&f));
    if let Some(path) = ff_experiments::csv::write_if_configured(
        "figure8_ablation",
        &ff_experiments::csv::figure8(&f),
    ) {
        println!("csv written to {}", path.display());
    }
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
