//! `any::<T>()` for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        u128::arbitrary_value(rng) as i128
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Full-domain strategy for a primitive type, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
