//! Machine configuration (paper Table 2).

use ff_mem::HierarchyConfig;

/// Full experimental machine configuration, defaulting to the paper's
/// Table 2 parameters ("6-issue, Itanium 2 FU distribution").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions issued per cycle (6).
    pub issue_width: u32,
    /// Memory ports (4).
    pub mem_ports: u32,
    /// Integer ports (2); A-type ALU ops may also use memory ports.
    pub int_ports: u32,
    /// Floating-point ports (2), also integer multiply/divide.
    pub fp_ports: u32,
    /// Branch ports (3).
    pub branch_ports: u32,
    /// Instruction-buffer capacity of the baseline in-order pipeline (the
    /// Itanium 2 buffer holds 24 instructions).
    pub inorder_buffer: usize,
    /// Multipass instruction-queue capacity (Table 2: 256 entries).
    pub multipass_iq: usize,
    /// Branch mispredict penalty in cycles (front-end refill of the 8-stage
    /// in-order pipe).
    pub mispredict_penalty: u64,
    /// Extra scheduling/renaming stages of the out-of-order pipeline
    /// (Table 2: 3), added to its mispredict penalty.
    pub ooo_extra_stages: u64,
    /// Out-of-order scheduling-window size (Table 2: 128 entries).
    pub ooo_window: usize,
    /// Out-of-order reorder-buffer size (Table 2: 256 entries).
    pub ooo_rob: usize,
    /// Per-queue capacity of the *realistic* decentralized out-of-order
    /// variant (§5.2: "decentralized scheduling tables for memory, floating
    /// point and integer instructions with 16 entries each").
    pub ooo_decentralized_queue: usize,
    /// Memory hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Branch-predictor table entries (Table 2: 1024-entry gshare).
    pub gshare_entries: usize,
    /// Safety cap on simulated cycles.
    pub max_cycles: u64,
}

impl MachineConfig {
    /// The paper's Table 2 configuration with the base cache hierarchy.
    pub fn itanium2_base() -> Self {
        MachineConfig {
            fetch_width: 6,
            issue_width: 6,
            mem_ports: 4,
            int_ports: 2,
            fp_ports: 2,
            branch_ports: 3,
            inorder_buffer: 24,
            multipass_iq: 256,
            mispredict_penalty: 8,
            ooo_extra_stages: 3,
            ooo_window: 128,
            ooo_rob: 256,
            ooo_decentralized_queue: 16,
            hierarchy: HierarchyConfig::itanium2_base(),
            gshare_entries: 1024,
            max_cycles: 2_000_000_000,
        }
    }

    /// Same machine with a different memory hierarchy (Figure 7 sweeps).
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Renders the configuration as the rows of the paper's Table 2.
    pub fn table2_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "Functional Units".into(),
                format!("{}-issue, Itanium 2 FU distribution", self.issue_width),
            ),
            ("L1I Cache".into(), self.hierarchy.l1i.to_string()),
            ("L1D Cache".into(), self.hierarchy.l1d.to_string()),
            ("L2 Cache".into(), self.hierarchy.l2.to_string()),
            ("L3 Cache".into(), self.hierarchy.l3.to_string()),
            ("Max Outstanding Misses".into(), self.hierarchy.max_outstanding.to_string()),
            ("Main Memory".into(), format!("{} cycles", self.hierarchy.mm_latency)),
            ("Branch Predictor".into(), format!("{}-entry gshare", self.gshare_entries)),
            ("Multipass Instruction Queue".into(), format!("{} entry", self.multipass_iq)),
            ("Out-of-Order Scheduling Window".into(), format!("{} entry", self.ooo_window)),
            ("Out-of-Order Reorder Buffer".into(), format!("{} entry", self.ooo_rob)),
            (
                "Out-of-Order Scheduling and Renaming Stages".into(),
                format!("{} additional stages", self.ooo_extra_stages),
            ),
            ("Out-of-Order Predicated Renaming".into(), "ideal".into()),
        ]
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::itanium2_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = MachineConfig::default();
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.multipass_iq, 256);
        assert_eq!(c.ooo_window, 128);
        assert_eq!(c.ooo_rob, 256);
        assert_eq!(c.ooo_extra_stages, 3);
        assert_eq!(c.gshare_entries, 1024);
        assert_eq!(c.hierarchy.max_outstanding, 16);
    }

    #[test]
    fn table2_rows_render() {
        let rows = MachineConfig::default().table2_rows();
        assert!(rows.iter().any(|(k, v)| k == "L2 Cache" && v.contains("256KB")));
        assert!(rows.iter().any(|(k, v)| k == "Main Memory" && v == "145 cycles"));
    }

    #[test]
    fn with_hierarchy_swaps_caches() {
        let c = MachineConfig::default().with_hierarchy(HierarchyConfig::config1());
        assert_eq!(c.hierarchy.mm_latency, 200);
        assert_eq!(c.issue_width, 6);
    }
}
