//! `ff-campaign` — the campaign runner CLI.
//!
//! ```text
//! ff-campaign run --all --scale test --jobs 4
//! ff-campaign run --filter model=MP --filter bench=mcf
//! ff-campaign resume --all
//! ff-campaign list --all --scale paper
//! ff-campaign status
//! ff-campaign migrate-store --out results/campaign/test
//! ff-campaign submit --server http://127.0.0.1:7878 --scale test --wait
//! ff-campaign status --server http://127.0.0.1:7878 --id c1
//! ff-campaign fetch  --server http://127.0.0.1:7878 --id c1 --out fetched/
//! ff-campaign render --server http://127.0.0.1:7878 --scale test
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ff_engine::TickMode;
use ff_experiments::{HierKind, ModelKind, UnknownBenchmark};
use ff_harness::{
    artifact::{parse_sim_artifact, spec_from_artifact},
    full_grid,
    job::parse_scale,
    job::scale_name,
    json::Json,
    read_manifest,
    remote::{campaign_status, fetch_artifact, submit_campaign},
    render_all, run_campaign,
    store::{find_artifact, migrate_flat, write_artifact},
    write_manifest, ArtifactStore, CampaignOptions, CampaignReport, CampaignRequest, JobFilter,
    JobKind, JobSpec, JobStatus, RemoteSource, ServerUrl,
};
use ff_workloads::{Scale, Workload};

const USAGE: &str = "\
ff-campaign — parallel experiment campaign runner

USAGE:
    ff-campaign run    [OPTIONS]   execute the campaign (resumes from checkpoint)
    ff-campaign resume [OPTIONS]   alias for `run`
    ff-campaign list   [OPTIONS]   print the job plan without running it
    ff-campaign status [--out DIR] summarize the last run's manifest
    ff-campaign migrate-store [--out DIR]
                                   move a legacy flat artifact tree into the
                                   sharded layout (idempotent)
    ff-campaign fsck   [--out DIR] verify every artifact's checksum footer:
                                   corrupt files move to <out>/corrupt/ (with a
                                   ledger line), orphaned .tmp files are swept;
                                   a following `run` re-simulates the quarantined
                                   configs from scratch
    ff-campaign submit --server URL [OPTIONS] [--wait]
                                   submit the plan to a running ff-server
    ff-campaign status --server URL --id ID
                                   poll a submitted campaign's status
    ff-campaign fetch  --server URL (--id ID | --hash H) [--out DIR]
                                   download artifacts into a local sharded store
    ff-campaign render --server URL [--scale S] [--results DIR]
                                   render the results files from a server's store

OPTIONS:
    --all                 the full grid + seed-sensitivity + report jobs (default)
    --filter KEY=VALUE    keep only matching sim jobs; repeatable; keys:
                          model, hier, bench, seed (e.g. --filter model=MP)
    --scale test|paper    workload scale (default: test)
    --jobs N              worker threads (default: available parallelism)
    --retries N           extra attempts per failed job (default: 0)
    --cycle-budget N      per-job watchdog: abort a simulation after N cycles
    --sentinels           run every simulation under the ff-sentinel invariant
                          checkers; a violation fails the job
    --tick polling|event  how models advance simulated time (default: event).
                          Both modes produce byte-identical artifacts; polling
                          is the reference semantics for cross-checking the
                          event-driven fast path
    --quarantine-after N  skip jobs that failed N consecutive prior runs
                          (ledger: <out>/quarantine.json; --force bypasses)
    --out DIR             artifact directory (default: results/campaign/<scale>)
    --results DIR         where `run` renders the results files (default: results)
    --force               re-run jobs even when a valid artifact exists, and
                          retry quarantined jobs
    --no-render           skip rendering the results files after the run
    --quiet               suppress per-job progress lines
    --server URL          campaign service address (http://host:port) for the
                          submit/status/fetch/render client commands
    --id ID               campaign id (from `submit`) for status/fetch
    --hash HEX            16-hex config hash for `fetch`
    --wait                after `submit`, poll until the campaign finishes
    --help                this text

Failed simulations leave a replayable crash bundle under <out>/bundles/;
replay one with `cargo run --release --example compare_divergence -- --bundle <path>`.

`run` exits 0 when every job succeeded (or was cached), 1 when any job
failed or was quarantined, and 2 on usage errors.";

struct Cli {
    cmd: String,
    scale: Scale,
    jobs: usize,
    retries: u32,
    cycle_budget: Option<u64>,
    sentinels: bool,
    tick: TickMode,
    quarantine_after: Option<u32>,
    out: Option<PathBuf>,
    results: PathBuf,
    force: bool,
    render: bool,
    quiet: bool,
    filter: JobFilter,
    server: Option<String>,
    id: Option<String>,
    hash: Option<String>,
    wait: bool,
}

fn usage_err(msg: &str) -> String {
    format!("{msg}\n\n{USAGE}")
}

fn parse_filter(filter: &mut JobFilter, kv: &str) -> Result<(), String> {
    let (key, value) = kv
        .split_once('=')
        .ok_or_else(|| usage_err(&format!("bad --filter `{kv}` (want KEY=VALUE)")))?;
    match key {
        "model" => filter.models.push(ModelKind::parse(value).ok_or_else(|| {
            let names: Vec<&str> = ModelKind::ALL.iter().map(|m| m.name()).collect();
            usage_err(&format!("unknown model {value:?}; valid names: {}", names.join(", ")))
        })?),
        "hier" => filter.hiers.push(HierKind::parse(value).ok_or_else(|| {
            let names: Vec<&str> = HierKind::ALL.iter().map(|h| h.name()).collect();
            usage_err(&format!("unknown hierarchy {value:?}; valid names: {}", names.join(", ")))
        })?),
        "bench" => {
            // Validate up front so a typo fails before hours of simulation.
            if !Workload::NAMES.contains(&value) {
                return Err(usage_err(&UnknownBenchmark { name: value.to_string() }.to_string()));
            }
            filter.benches.push(value.to_string());
        }
        "seed" => {
            filter.seeds.push(value.parse().map_err(|_| usage_err(&format!("bad seed `{value}`")))?)
        }
        other => return Err(usage_err(&format!("unknown filter key `{other}`"))),
    }
    Ok(())
}

fn parse_cli(argv: &[String]) -> Result<Cli, String> {
    let cmd = argv.first().cloned().unwrap_or_default();
    if cmd.is_empty() || cmd == "--help" || cmd == "-h" || cmd == "help" {
        return Err(USAGE.to_string());
    }
    if !matches!(
        cmd.as_str(),
        "run"
            | "resume"
            | "list"
            | "status"
            | "migrate-store"
            | "fsck"
            | "submit"
            | "fetch"
            | "render"
    ) {
        return Err(usage_err(&format!("unknown command `{cmd}`")));
    }
    let mut cli = Cli {
        cmd,
        scale: Scale::Test,
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        retries: 0,
        cycle_budget: None,
        sentinels: false,
        tick: TickMode::default(),
        quarantine_after: None,
        out: None,
        results: PathBuf::from("results"),
        force: false,
        render: true,
        quiet: false,
        filter: JobFilter::default(),
        server: None,
        id: None,
        hash: None,
        wait: false,
    };
    let mut it = argv[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| usage_err(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--all" => {} // the default plan; accepted for explicitness
            "--filter" => parse_filter(&mut cli.filter, &value("--filter")?)?,
            "--scale" => {
                let v = value("--scale")?;
                cli.scale = parse_scale(&v)
                    .ok_or_else(|| usage_err(&format!("bad --scale `{v}` (want test|paper)")))?;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                cli.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| usage_err(&format!("bad --jobs `{v}`")))?;
            }
            "--retries" => {
                let v = value("--retries")?;
                cli.retries = v.parse().map_err(|_| usage_err(&format!("bad --retries `{v}`")))?;
            }
            "--cycle-budget" => {
                let v = value("--cycle-budget")?;
                cli.cycle_budget =
                    Some(v.parse().map_err(|_| usage_err(&format!("bad --cycle-budget `{v}`")))?);
            }
            "--sentinels" => cli.sentinels = true,
            "--tick" => {
                let v = value("--tick")?;
                cli.tick = match v.as_str() {
                    "polling" => TickMode::Polling,
                    "event" => TickMode::EventDriven,
                    _ => return Err(usage_err(&format!("bad --tick `{v}` (want polling|event)"))),
                };
            }
            "--quarantine-after" => {
                let v = value("--quarantine-after")?;
                cli.quarantine_after = Some(
                    v.parse::<u32>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| usage_err(&format!("bad --quarantine-after `{v}`")))?,
                );
            }
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--results" => cli.results = PathBuf::from(value("--results")?),
            "--force" => cli.force = true,
            "--no-render" => cli.render = false,
            "--quiet" => cli.quiet = true,
            "--server" => cli.server = Some(value("--server")?),
            "--id" => cli.id = Some(value("--id")?),
            "--hash" => cli.hash = Some(value("--hash")?),
            "--wait" => cli.wait = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(usage_err(&format!("unknown option `{other}`"))),
        }
    }
    Ok(cli)
}

fn plan(cli: &Cli) -> Vec<JobSpec> {
    full_grid(cli.scale).into_iter().filter(|j| cli.filter.matches(j)).collect()
}

fn out_dir(cli: &Cli) -> PathBuf {
    cli.out.clone().unwrap_or_else(|| PathBuf::from("results/campaign").join(scale_name(cli.scale)))
}

fn cmd_list(cli: &Cli) -> ExitCode {
    let jobs = plan(cli);
    for j in &jobs {
        println!("{}  {:016x}", j.id(), j.config_hash());
    }
    eprintln!("{} jobs at {} scale", jobs.len(), scale_name(cli.scale));
    ExitCode::SUCCESS
}

fn parse_server(cli: &Cli) -> Result<ServerUrl, String> {
    let raw = cli
        .server
        .as_deref()
        .ok_or_else(|| usage_err("this command needs --server http://host:port"))?;
    ServerUrl::parse(raw).map_err(|e| usage_err(&e))
}

fn cmd_migrate_store(cli: &Cli) -> ExitCode {
    let dir = out_dir(cli);
    match migrate_flat(&dir) {
        Ok(moved) => {
            eprintln!("ff-campaign: moved {moved} artifacts into shards under {}", dir.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ff-campaign: migrate-store {}: {e}", dir.display());
            ExitCode::FAILURE
        }
    }
}

fn cmd_fsck(cli: &Cli) -> ExitCode {
    let dir = out_dir(cli);
    match ff_harness::integrity::fsck(&dir) {
        Ok(report) => {
            eprintln!("ff-campaign: fsck {}: {}", dir.display(), report.summary());
            for (file, reason) in &report.corrupt {
                eprintln!("  corrupt: {file} ({reason})");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ff-campaign: fsck {}: {e}", dir.display());
            ExitCode::FAILURE
        }
    }
}

fn print_remote_status(status: &ff_harness::CampaignStatus) {
    let counts: Vec<String> = status.counts.iter().map(|(k, v)| format!("{v} {k}")).collect();
    eprintln!(
        "campaign {} ({} scale): {}{}",
        status.id,
        status.scale,
        if counts.is_empty() { "no jobs".to_string() } else { counts.join(", ") },
        if status.done { " [done]" } else { "" },
    );
    for j in status.failed() {
        eprintln!("  failed: {} ({})", j.id, j.error.as_deref().unwrap_or("unknown"));
    }
}

fn cmd_submit(cli: &Cli) -> ExitCode {
    let url = match parse_server(cli) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // Mirror `run`: report jobs ride along only with an unconstrained
    // filter, so a submitted plan matches a local `run` plan exactly.
    let req = CampaignRequest {
        scale: cli.scale,
        filter: cli.filter.clone(),
        reports: cli.filter.is_empty(),
    };
    let (id, total) = match submit_campaign(&url, &req) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ff-campaign: submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{id}");
    eprintln!("ff-campaign: submitted campaign {id} ({total} jobs) to {url}");
    if !cli.wait {
        return ExitCode::SUCCESS;
    }
    loop {
        match campaign_status(&url, &id) {
            Ok(status) if status.done => {
                print_remote_status(&status);
                let failed = status.counts.get("failed").copied().unwrap_or(0)
                    + status.counts.get("quarantined").copied().unwrap_or(0);
                return if failed > 0 { ExitCode::FAILURE } else { ExitCode::SUCCESS };
            }
            Ok(_) => std::thread::sleep(std::time::Duration::from_millis(200)),
            Err(e) => {
                eprintln!("ff-campaign: status {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}

fn cmd_remote_status(cli: &Cli) -> ExitCode {
    let url = match parse_server(cli) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let Some(id) = cli.id.as_deref() else {
        eprintln!("{}", usage_err("status --server needs --id"));
        return ExitCode::from(2);
    };
    match campaign_status(&url, id) {
        Ok(status) => {
            print_remote_status(&status);
            if status.done && status.failed().is_empty() {
                ExitCode::SUCCESS
            } else if status.done {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("ff-campaign: status {id}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Downloads one artifact and files it into the local sharded store under
/// its proper content-addressed name (reconstructed from the embedded job
/// descriptor).
fn fetch_one(url: &ServerUrl, dir: &std::path::Path, hash: &str) -> Result<PathBuf, String> {
    let text = fetch_artifact(url, hash)?;
    let spec = spec_from_artifact(&text).map_err(|e| format!("artifact {hash}: {e}"))?;
    write_artifact(dir, &spec, &text).map_err(|e| format!("write artifact {hash}: {e}"))
}

fn cmd_fetch(cli: &Cli) -> ExitCode {
    let url = match parse_server(cli) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let dir = out_dir(cli);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("ff-campaign: create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let hashes: Vec<String> = if let Some(hash) = cli.hash.as_deref() {
        // Validate the shape locally so a typo is a usage error here, not
        // a server-side 400 (the hash becomes a URL path component).
        if ff_harness::parse_hash16(hash).is_none() {
            eprintln!(
                "{}",
                usage_err(&format!(
                    "bad --hash `{hash}` (want exactly 16 lowercase hex characters)"
                ))
            );
            return ExitCode::from(2);
        }
        vec![hash.to_string()]
    } else if let Some(id) = cli.id.as_deref() {
        match campaign_status(&url, id) {
            Ok(status) => status
                .jobs
                .iter()
                .filter(|j| matches!(j.status.as_str(), "ok" | "hit" | "dedup" | "cached"))
                .map(|j| j.hash.clone())
                .collect(),
            Err(e) => {
                eprintln!("ff-campaign: status {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("{}", usage_err("fetch needs --hash HEX or --id ID"));
        return ExitCode::from(2);
    };
    let mut fetched = 0usize;
    for hash in &hashes {
        match fetch_one(&url, &dir, hash) {
            Ok(path) => {
                fetched += 1;
                if !cli.quiet {
                    eprintln!("fetched {hash} -> {}", path.display());
                }
            }
            Err(e) => {
                eprintln!("ff-campaign: fetch: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("ff-campaign: fetched {fetched} artifacts into {}", dir.display());
    ExitCode::SUCCESS
}

fn cmd_remote_render(cli: &Cli) -> ExitCode {
    let url = match parse_server(cli) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut source = RemoteSource::new(url, cli.scale);
    match render_all(&mut source, cli.scale, &cli.results, 0.0) {
        Ok(written) => {
            eprintln!("ff-campaign: rendered {} results files from the server", written.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ff-campaign: rendering from server: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_status(cli: &Cli) -> ExitCode {
    let dir = out_dir(cli);
    match read_manifest(&dir) {
        Ok(m) => {
            println!(
                "campaign at {}: scale {}, {} workers, git {}, wall {:.1}s",
                dir.display(),
                m.scale,
                m.workers,
                m.git,
                m.wall_s
            );
            println!(
                "jobs: {} ok, {} cached, {} failed, {} quarantined",
                m.ok, m.cached, m.failed, m.quarantined
            );
            for id in &m.failed_ids {
                println!("  failed: {id}");
            }
            if m.failed + m.quarantined > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("ff-campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `model` name a `BENCH_*.json` baseline uses for a campaign model,
/// when the perf trajectory tracks it.
fn bench_model_name(model: &str) -> Option<&'static str> {
    match model {
        "inorder" => Some("inorder"),
        "runahead" => Some("runahead"),
        "ooo" => Some("ooo"),
        "MP" => Some("multipass"),
        _ => None,
    }
}

/// Per-model event-tick cycles/sec geomeans from a `BENCH_*.json`
/// document. Parsed locally (ff-harness does not depend on ff-bench);
/// tolerant of either format version since only three fields are read.
fn bench_baseline_geomeans(text: &str) -> Option<Vec<(String, f64)>> {
    let doc = Json::parse(text).ok()?;
    let entries = doc.get("entries").and_then(Json::as_arr)?;
    let mut sums: Vec<(String, f64, u32)> = Vec::new();
    for e in entries {
        let tick = e.get("tick").and_then(Json::as_str)?;
        if tick != "event" {
            continue;
        }
        let model = e.get("model").and_then(Json::as_str)?;
        let cps = e.get("cycles_per_sec").and_then(Json::as_f64)?;
        match sums.iter_mut().find(|(m, _, _)| m == model) {
            Some((_, log_sum, n)) => {
                *log_sum += cps.ln();
                *n += 1;
            }
            None => sums.push((model.to_string(), cps.ln(), 1)),
        }
    }
    Some(sums.into_iter().map(|(m, s, n)| (m, (s / n as f64).exp())).collect())
}

/// Prints this run's per-model simulator throughput next to the committed
/// `BENCH_main.json` baseline: simulated cycles (read back from each
/// executed sim artifact) over the wall time the campaign spent on that
/// model. Cached jobs cost no wall time and are excluded. Silent when the
/// run executed no sim jobs or no baseline file exists.
fn print_throughput_deltas(report: &CampaignReport, dir: &std::path::Path) {
    // (model name, simulated cycles, wall ms)
    let mut per_model: Vec<(String, u64, u64)> = Vec::new();
    for o in &report.outcomes {
        let JobKind::Sim { model, .. } = &o.spec.kind else { continue };
        if o.status != JobStatus::Ok || o.wall_ms == 0 {
            continue;
        }
        let Some(path) = find_artifact(dir, &o.spec) else { continue };
        // Verified read: strips the checksum footer (parse_sim_artifact
        // wants the bare JSON payload) and skips corrupt files.
        let Ok((text, _)) = ff_harness::integrity::read_verified(&path) else { continue };
        let Ok(result) = parse_sim_artifact(&o.spec, &text) else { continue };
        let name = model.name();
        match per_model.iter_mut().find(|(m, _, _)| m == name) {
            Some((_, cycles, ms)) => {
                *cycles += result.stats.cycles;
                *ms += o.wall_ms;
            }
            None => per_model.push((name.to_string(), result.stats.cycles, o.wall_ms)),
        }
    }
    if per_model.is_empty() {
        return;
    }
    let baseline = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_main.json"),
    )
    .ok()
    .and_then(|t| bench_baseline_geomeans(&t));
    eprintln!("ff-campaign: simulator throughput this run (vs BENCH_main.json geomean):");
    for (model, cycles, ms) in per_model {
        let cps = cycles as f64 / (ms as f64 / 1_000.0).max(1e-9);
        let vs = bench_model_name(&model)
            .and_then(|b| baseline.as_ref()?.iter().find(|(m, _)| m == b).cloned())
            .map(|(_, base)| format!(" (baseline {base:.2e}, {:+.0}%)", (cps / base - 1.0) * 100.0))
            .unwrap_or_default();
        eprintln!("  {model:<14} {cps:.2e} cycles/sec{vs}");
    }
}

fn cmd_run(cli: &Cli) -> ExitCode {
    let jobs = plan(cli);
    if jobs.is_empty() {
        eprintln!("ff-campaign: the filter matches no jobs");
        return ExitCode::from(2);
    }
    let dir = out_dir(cli);
    let mut opts = CampaignOptions::new(cli.scale, &dir);
    opts.workers = cli.jobs;
    opts.attempts = cli.retries + 1;
    opts.cycle_budget = cli.cycle_budget;
    opts.force = cli.force;
    opts.progress = !cli.quiet;
    opts.sentinels = cli.sentinels;
    opts.tick = cli.tick;
    opts.quarantine_after = cli.quarantine_after;
    if !cli.quiet {
        eprintln!(
            "ff-campaign: {} jobs at {} scale on {} workers -> {}",
            jobs.len(),
            scale_name(cli.scale),
            opts.workers,
            dir.display()
        );
    }
    let report = match run_campaign(&jobs, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ff-campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_manifest(&dir, &report) {
        eprintln!("ff-campaign: writing manifest: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "ff-campaign: {} ok, {} cached, {} failed, {} quarantined in {:.1}s",
        report.ok(),
        report.cached(),
        report.failed(),
        report.quarantined(),
        report.wall_s
    );
    for f in report.failures() {
        let err = f.error.as_ref().map_or_else(|| "unknown".to_string(), |e| e.to_string());
        eprintln!("  failed: {} ({err})", f.spec.id());
    }
    for q in report.quarantined_jobs() {
        eprintln!("  quarantined: {}", q.spec.id());
    }
    if !cli.quiet {
        print_throughput_deltas(&report, &dir);
    }
    if report.failed() + report.quarantined() > 0 {
        return ExitCode::FAILURE;
    }
    // Rendering needs the complete artifact set; a filtered run keeps its
    // artifacts but cannot regenerate the aggregate results files.
    if cli.render && cli.filter.is_empty() {
        let mut store = ArtifactStore::new(&dir, cli.scale);
        match render_all(&mut store, cli.scale, &cli.results, report.wall_s) {
            Ok(written) => {
                if !cli.quiet {
                    eprintln!("ff-campaign: rendered {} results files", written.len());
                }
            }
            Err(e) => {
                eprintln!("ff-campaign: rendering results: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if cli.render && !cli.quiet {
        eprintln!("ff-campaign: filtered run; skipping results rendering");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Deterministic fault injection for the chaos suite: honored only
    // when FF_CHAOS is set (see `ff_harness::chaos`); the guard keeps the
    // policy installed for the process lifetime.
    let _chaos = ff_harness::chaos::install_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&argv) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match cli.cmd.as_str() {
        "run" | "resume" => cmd_run(&cli),
        "list" => cmd_list(&cli),
        "status" if cli.server.is_some() => cmd_remote_status(&cli),
        "status" => cmd_status(&cli),
        "migrate-store" => cmd_migrate_store(&cli),
        "fsck" => cmd_fsck(&cli),
        "submit" => cmd_submit(&cli),
        "fetch" => cmd_fetch(&cli),
        "render" => cmd_remote_render(&cli),
        _ => unreachable!("parse_cli validated the command"),
    }
}
